"""Tests for the synthetic traffic workload registry (repro.routing.traffic).

The seeding-determinism tests assert the property the parallel routing
sweeps rely on: every registered workload generates bit-identical endpoint
batches from the same seed, in the parent process and in worker processes.
"""

import multiprocessing

import numpy as np
import pytest

from repro.mesh.topology import Mesh2D, Torus2D
from repro.routing.traffic import (
    ArrivalOptions,
    BurstyArrivalOptions,
    HotspotOptions,
    NearestNeighbourOptions,
    PoissonArrivalOptions,
    TrafficBatch,
    TrafficContext,
    TrafficSpec,
    get_traffic,
    register_traffic,
    traffic_keys,
)

ALL_KEYS = ("uniform", "transpose", "bit-reversal", "hotspot", "nearest-neighbour", "permutation")
ARRIVAL_KEYS = ("poisson", "bursty")


def _context(width=16, height=None, disabled=(), torus=False):
    height = width if height is None else height
    topology = Torus2D(width, height) if torus else Mesh2D(width, height)
    return TrafficContext.from_topology(topology, disabled)


def _fingerprint(batch: TrafficBatch) -> bytes:
    arrays = [a.astype(np.int64) for a in batch.as_arrays()]
    if batch.inject_time is not None:
        arrays.append(batch.inject_time.astype(np.int64))
    return np.stack(arrays).tobytes()


def _generate_fingerprint(args) -> bytes:
    """Worker entry point of the cross-process determinism test."""
    key, width, disabled, count, seed = args
    batch = get_traffic(key).generate(_context(width, disabled=disabled), count, seed=seed)
    return _fingerprint(batch)


class TestRegistry:
    def test_six_workloads_registered(self):
        assert set(ALL_KEYS) <= set(traffic_keys())
        assert len(traffic_keys()) >= 6

    def test_aliases_and_case_insensitive_lookup(self):
        assert get_traffic("NEAREST_NEIGHBOUR") is get_traffic("nn")
        assert get_traffic("random") is get_traffic("uniform")
        assert get_traffic("bitrev") is get_traffic("bit-reversal")

    def test_unknown_key_lists_registered(self):
        with pytest.raises(KeyError, match="uniform"):
            get_traffic("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_traffic("uniform")
        with pytest.raises(ValueError, match="already registered"):
            register_traffic(
                TrafficSpec(
                    key="uniform",
                    label="UR2",
                    description="clash",
                    generator=spec.generator,
                )
            )

    def test_option_type_mismatch_raises(self):
        with pytest.raises(TypeError, match="HotspotOptions"):
            get_traffic("hotspot").generate(
                _context(8), 5, options=NearestNeighbourOptions()
            )

    def test_option_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            HotspotOptions(fraction=1.5)
        with pytest.raises(ValueError, match="radius"):
            NearestNeighbourOptions(radius=0)


class TestSeedingDeterminism:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_same_seed_same_batch(self, key):
        disabled = {(2, 2), (2, 3), (3, 3), (9, 9)}
        context = _context(16, disabled=disabled)
        a = get_traffic(key).generate(context, 200, seed=42)
        b = get_traffic(key).generate(context, 200, seed=42)
        assert _fingerprint(a) == _fingerprint(b)
        different = get_traffic(key).generate(context, 200, seed=43)
        # Seeds must actually matter (not a constant batch) for the random
        # workloads; fixed-partner ones still reshuffle their sources.
        assert _fingerprint(different) != _fingerprint(a)

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_same_seed_across_processes(self, key):
        """The derive_trial_seed property extended to traffic generation:
        a worker process reproduces the parent's batch bit for bit."""
        args = (key, 16, ((2, 2), (5, 5)), 120, 7)
        local = _generate_fingerprint(args)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=2) as pool:
            remote = pool.map(_generate_fingerprint, [args, args])
        assert remote == [local, local]

    def test_stateful_rng_advances(self):
        context = _context(12)
        rng = np.random.default_rng(3)
        first = get_traffic("uniform").generate(context, 50, rng=rng)
        second = get_traffic("uniform").generate(context, 50, rng=rng)
        assert _fingerprint(first) != _fingerprint(second)


class TestEndpointValidity:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_endpoints_are_enabled_and_distinct(self, key):
        disabled = {(0, 0), (7, 7), (7, 8), (8, 7), (3, 12)}
        context = _context(16, disabled=disabled)
        batch = get_traffic(key).generate(context, 300, seed=5)
        assert len(batch) == 300
        for source, destination in batch.pairs():
            assert source != destination
            assert context.enabled_mask[source]
            assert context.enabled_mask[destination]

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_tiny_mesh_returns_empty_batch(self, key):
        # Fewer than two enabled endpoints: nothing to route.
        context = _context(2, disabled={(0, 0), (0, 1), (1, 0)})
        batch = get_traffic(key).generate(context, 10, seed=1)
        assert len(batch) == 0
        assert list(batch.pairs()) == []


class TestPatternShapes:
    def test_transpose_partners(self):
        context = _context(9)
        batch = get_traffic("transpose").generate(context, 100, seed=2)
        for (sx, sy), (dx, dy) in batch.pairs():
            assert (dx, dy) == (sy, sx)

    def test_transpose_skips_disabled_partners(self):
        disabled = {(4, 6)}
        context = _context(9, disabled=disabled)
        batch = get_traffic("transpose").generate(context, 200, seed=2)
        assert len(batch) == 200
        for (sx, sy), _ in batch.pairs():
            assert (sy, sx) not in disabled

    def test_bit_reversal_on_power_of_two_mesh(self):
        def reverse(value, bits):
            out = 0
            for _ in range(bits):
                out = (out << 1) | (value & 1)
                value >>= 1
            return out

        context = _context(8)
        batch = get_traffic("bit-reversal").generate(context, 100, seed=4)
        for (sx, sy), (dx, dy) in batch.pairs():
            assert (dx, dy) == (reverse(sx, 3), reverse(sy, 3))

    def test_hotspot_concentrates_traffic(self):
        context = _context(16)
        batch = get_traffic("hotspot").generate(
            context, 2000, seed=6, num_hotspots=2, fraction=0.9
        )
        destinations = list(zip(batch.dst_x.tolist(), batch.dst_y.tolist()))
        top_two = sum(
            count
            for _, count in sorted(
                ((d, destinations.count(d)) for d in set(destinations)),
                key=lambda item: -item[1],
            )[:2]
        )
        assert top_two / len(destinations) > 0.7

    def test_nearest_neighbour_radius(self):
        context = _context(12)
        batch = get_traffic("nearest-neighbour").generate(context, 300, seed=8, radius=2)
        for (sx, sy), (dx, dy) in batch.pairs():
            assert 0 < abs(sx - dx) + abs(sy - dy) <= 2

    def test_nearest_neighbour_wraps_on_torus(self):
        # A torus ring of enabled border nodes: offsets wrap around.
        context = _context(6, torus=True)
        batch = get_traffic("nearest-neighbour").generate(context, 400, seed=8)
        wrapped = [
            (s, d)
            for s, d in batch.pairs()
            if abs(s[0] - d[0]) == 5 or abs(s[1] - d[1]) == 5
        ]
        assert wrapped, "expected some wrap-around neighbour pairs on the torus"
        for (sx, sy), (dx, dy) in batch.pairs():
            assert min(abs(sx - dx), 6 - abs(sx - dx)) + min(
                abs(sy - dy), 6 - abs(sy - dy)
            ) <= 1

    def test_nearest_neighbour_never_crosses_regions(self):
        # Destinations adjacent to the source are never on the other side
        # of a fault region, so the pattern is always fully deliverable.
        disabled = {(x, 5) for x in range(12)} - {(6, 5)}
        context = _context(12, disabled=disabled)
        batch = get_traffic("nearest-neighbour").generate(context, 200, seed=3)
        for source, destination in batch.pairs():
            assert context.enabled_mask[source] and context.enabled_mask[destination]

    def test_permutation_is_functional_within_batch(self):
        context = _context(10)
        batch = get_traffic("permutation").generate(context, 500, seed=11)
        mapping = {}
        for source, destination in batch.pairs():
            assert mapping.setdefault(source, destination) == destination

    def test_uniform_matches_legacy_draw(self):
        # The exact (count, 2) draw with same-index bump the legacy
        # RoutingSimulator.random_pairs used -- the contract behind the
        # legacy-vs-session equivalence.
        context = _context(7)
        num = context.num_enabled
        rng = np.random.default_rng(13)
        indices = rng.integers(0, num, size=(60, 2))
        src, dst = indices[:, 0], indices[:, 1]
        dst = np.where(src == dst, (dst + 1) % num, dst)
        expected = list(
            zip(
                zip(context.enabled_xs[src].tolist(), context.enabled_ys[src].tolist()),
                zip(context.enabled_xs[dst].tolist(), context.enabled_ys[dst].tolist()),
            )
        )
        batch = get_traffic("uniform").generate(context, 60, seed=13)
        assert list(batch.pairs()) == expected


class TestArrivalProcesses:
    """The open-loop arrival workloads (poisson / bursty) of repro.netsim."""

    def test_registered_with_aliases(self):
        assert set(ARRIVAL_KEYS) <= set(traffic_keys())
        assert get_traffic("open-loop") is get_traffic("poisson")
        assert get_traffic("on-off") is get_traffic("bursty")

    @pytest.mark.parametrize("key", ARRIVAL_KEYS)
    def test_same_seed_same_batch(self, key):
        context = _context(16, disabled={(2, 2), (9, 9)})
        a = get_traffic(key).generate(context, 200, seed=42)
        b = get_traffic(key).generate(context, 200, seed=42)
        assert _fingerprint(a) == _fingerprint(b)
        assert _fingerprint(get_traffic(key).generate(context, 200, seed=43)) != _fingerprint(a)

    @pytest.mark.parametrize("key", ARRIVAL_KEYS)
    def test_same_seed_across_processes(self, key):
        args = (key, 16, ((2, 2), (5, 5)), 120, 7)
        local = _generate_fingerprint(args)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=2) as pool:
            remote = pool.map(_generate_fingerprint, [args, args])
        assert remote == [local, local]

    @pytest.mark.parametrize("key", ARRIVAL_KEYS)
    def test_inject_times_are_nondecreasing_int64(self, key):
        context = _context(12)
        batch = get_traffic(key).generate(context, 300, seed=5, rate=2.0)
        assert batch.inject_time is not None
        assert batch.inject_time.dtype == np.int64
        assert len(batch.inject_time) == len(batch)
        assert np.all(np.diff(batch.inject_time) >= 0)
        assert np.all(batch.inject_time >= 0)

    @pytest.mark.parametrize("key", ARRIVAL_KEYS)
    def test_endpoints_match_wrapped_spatial_pattern(self, key):
        # The arrival process delegates its endpoint draw to the spatial
        # pattern with the same generator, so the endpoint arrays are
        # bit-identical to the plain pattern's batch under the same seed.
        context = _context(12, disabled={(3, 3)})
        timed = get_traffic(key).generate(
            context, 150, seed=9, pattern="transpose", rate=0.5
        )
        plain = get_traffic("transpose").generate(context, 150, seed=9)
        assert _fingerprint(plain) == np.stack(
            [a.astype(np.int64) for a in timed.as_arrays()]
        ).tobytes()

    @pytest.mark.parametrize("key", ARRIVAL_KEYS)
    def test_endpoints_are_enabled_and_distinct(self, key):
        disabled = {(0, 0), (7, 7), (7, 8), (8, 7)}
        context = _context(16, disabled=disabled)
        batch = get_traffic(key).generate(context, 200, seed=5)
        for source, destination in batch.pairs():
            assert source != destination
            assert context.enabled_mask[source]
            assert context.enabled_mask[destination]

    def test_bursty_back_to_back_within_burst(self):
        context = _context(12)
        batch = get_traffic("bursty").generate(context, 64, seed=1, rate=0.5, burst=4)
        times = batch.inject_time
        # Consecutive messages of one burst land on consecutive cycles.
        for start in range(0, 64, 4):
            chunk = times[start : start + 4]
            assert np.all(np.diff(chunk) == 1)

    def test_poisson_rate_scales_spacing(self):
        context = _context(16)
        slow = get_traffic("poisson").generate(context, 400, seed=3, rate=0.5)
        fast = get_traffic("poisson").generate(context, 400, seed=3, rate=4.0)
        assert slow.inject_time[-1] > fast.inject_time[-1]

    def test_empty_batch_has_no_times(self):
        context = _context(2, disabled={(0, 0), (0, 1), (1, 0)})
        batch = get_traffic("poisson").generate(context, 10, seed=1)
        assert len(batch) == 0
        assert batch.inject_time is None

    def test_option_validation(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivalOptions(rate=0.0)
        with pytest.raises(ValueError, match="burst"):
            BurstyArrivalOptions(burst=0)
        assert issubclass(BurstyArrivalOptions, ArrivalOptions)

    def test_nested_arrival_rejected(self):
        context = _context(8)
        with pytest.raises(ValueError, match="nest"):
            get_traffic("poisson").generate(context, 10, seed=1, pattern="bursty")

    def test_spatial_options_forwarded(self):
        context = _context(16)
        batch = get_traffic("poisson").generate(
            context,
            500,
            seed=6,
            pattern="nearest-neighbour",
            pattern_options=NearestNeighbourOptions(radius=2),
        )
        for (sx, sy), (dx, dy) in batch.pairs():
            assert 0 < abs(sx - dx) + abs(sy - dy) <= 2
