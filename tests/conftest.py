"""Shared fixtures: canonical fault patterns used across the test suite.

Several fixtures encode the paper's running examples so that the same
shapes exercise the geometry, the constructions and the distributed
protocol:

* ``figure2_region`` -- the L-shaped orthogonal convex polygon
  ``{(2,4), (3,4), (4,3)}`` used by the routing example of Figure 2.
* ``figure3_faults`` -- a ten-fault pattern in the spirit of Figure 3: one
  tight cluster that stays a single polygon plus a sparse diagonal cluster
  whose faulty block contains many non-faulty nodes.
* ``figure4_faults`` -- two nearby components that labelling scheme 1 would
  merge into one faulty block but that the component-based construction
  keeps separate (the situation of Figure 4).
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

import pytest

from repro.mesh.topology import Mesh2D, Torus2D


Coord = Tuple[int, int]


@pytest.fixture
def mesh10() -> Mesh2D:
    """A small 10x10 mesh used by most unit tests."""
    return Mesh2D(10, 10)


@pytest.fixture
def mesh20() -> Mesh2D:
    """A 20x20 mesh for tests that need a bit more room."""
    return Mesh2D(20, 20)


@pytest.fixture
def torus10() -> Torus2D:
    """A 10x10 torus."""
    return Torus2D(10, 10)


@pytest.fixture
def figure2_region() -> Set[Coord]:
    """The L-shaped fault polygon of the paper's Figure 2."""
    return {(2, 4), (3, 4), (4, 3)}


@pytest.fixture
def u_shape() -> Set[Coord]:
    """A U-shaped component (opens north): not orthogonal convex."""
    return {(0, 0), (1, 0), (2, 0), (0, 1), (2, 1), (0, 2), (2, 2)}


@pytest.fixture
def plus_shape() -> Set[Coord]:
    """A +-shaped component: orthogonal convex."""
    return {(1, 0), (0, 1), (1, 1), (2, 1), (1, 2)}


@pytest.fixture
def o_shape() -> Set[Coord]:
    """A ring-shaped component with a closed concave region (a hole)."""
    return {
        (0, 0), (1, 0), (2, 0), (3, 0),
        (0, 1), (3, 1),
        (0, 2), (3, 2),
        (0, 3), (1, 3), (2, 3), (3, 3),
    }


@pytest.fixture
def staircase() -> Set[Coord]:
    """A diagonal staircase: 8-connected, orthogonal convex as-is."""
    return {(0, 0), (1, 1), (2, 2), (3, 3)}


@pytest.fixture
def figure3_faults() -> List[Coord]:
    """Ten faults: one dense cluster plus one sparse diagonal cluster."""
    return [
        # dense cluster (already nearly convex)
        (2, 2), (3, 2), (2, 3), (3, 3), (4, 3),
        # sparse diagonal cluster: its faulty block wastes many nodes
        (7, 6), (8, 7), (9, 8), (8, 8), (7, 8),
    ]


@pytest.fixture
def figure4_faults() -> List[Coord]:
    """Two nearby components that labelling scheme 1 merges into one block.

    Component A is an L-shape, component B a vertical domino one knight's
    move away.  They are not 8-adjacent (two components), but labelling
    scheme 1 turns the nodes between them unsafe, so the faulty block model
    produces a single rectangular block spanning both -- the situation of
    the paper's Figure 4.  Both components are orthogonal convex on their
    own, so the minimum construction disables no extra node at all.
    """
    return [
        (2, 2), (3, 2), (2, 3), (2, 4),  # component A (L-shape)
        (4, 4), (4, 5),                  # component B (vertical domino)
    ]


def region_disabled_set(construction) -> FrozenSet[Coord]:
    """Helper: the full disabled node set of a construction result."""
    return frozenset(construction.grid.disabled_set())
