"""Tests of the resilience layer: retries, journaling, admission, chaos.

The acceptance bar of the robustness ISSUE: a retrying client driven
through the seeded fault-injecting proxy converges to *bit-identical*
route outcomes and session fingerprints versus a fault-free run; a
daemon killed mid-churn and recovered from its journal serves a session
whose fingerprint matches an uninterrupted oracle's; admission control
sheds with ``overloaded``/``retry_after`` instead of queueing without
bound; expired buffered routes never reach the engine; and a batch-engine
failure degrades a flush to the scalar router rather than failing it.
Tests drive the event loop through ``asyncio.run`` inside synchronous
test functions (no pytest-asyncio in the toolchain).
"""

import asyncio
import json

import pytest

from repro.api import MeshSession
from repro.faults.scenario import generate_scenario
from repro.serve import (
    ChaosConfig,
    ChaosTransport,
    InProcessClient,
    Journal,
    JournalError,
    RetryPolicy,
    RouteDaemon,
    ServeClient,
    encode,
    load_journal,
    replay_events,
)
from repro.serve.protocol import E_BAD_REQUEST, E_DEADLINE, E_OVERLOADED

SCENARIO = dict(num_faults=10, width=12, height=12, seed=3)


def fresh_daemon(**kwargs):
    kwargs.setdefault("scenario", generate_scenario(**SCENARIO))
    return RouteDaemon(**kwargs)


async def churn(client, rounds=30):
    """One deterministic query/mutate workload; returns (outcomes, status)."""
    outcomes = []
    for i in range(rounds):
        route = await client.route_one((0, 0), (11, 11))
        outcomes.append((route["delivered"], route["hops"], route["reason"]))
        if i % 7 == 3:
            await client.add_faults([(i % 12, (i * 5) % 12)])
        if i % 11 == 5:
            await client.repair([(i % 12, (i * 5) % 12)])
        if i % 13 == 8:
            await client.add_link_faults([((1, 1), (1, 2))])
    return outcomes, await client.status()


# -- retry policy --------------------------------------------------------------------


class TestRetryPolicy:
    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5, seed=42)
        delays_a = [policy.schedule().next_delay() for _ in range(1)]
        schedule_a, schedule_b = policy.schedule(), policy.schedule()
        seq_a = [schedule_a.next_delay() for _ in range(5)]
        seq_b = [schedule_b.next_delay() for _ in range(5)]
        assert seq_a == seq_b
        assert delays_a[0] == seq_a[0]

    def test_backoff_shape_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        schedule = policy.schedule()
        delays = [schedule.next_delay() for _ in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, None]

    def test_jitter_only_shortens(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=0.1, multiplier=1.0, jitter=0.9, seed=7
        )
        schedule = policy.schedule()
        for _ in range(49):
            delay = schedule.next_delay()
            assert 0.0 < delay <= 0.1

    def test_deadline_caps_and_exhausts(self):
        clock = {"now": 0.0}
        policy = RetryPolicy(
            max_attempts=None,
            base_delay=10.0,
            max_delay=10.0,
            jitter=0.0,
            deadline=1.0,
        )
        schedule = policy.schedule(clock=lambda: clock["now"])
        assert schedule.next_delay() == 1.0  # capped to the remaining deadline
        clock["now"] = 2.0
        assert schedule.next_delay() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=None)  # unbounded needs a deadline
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# -- journal -------------------------------------------------------------------------


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path)
        journal.append_snapshot({"width": 8, "version": 0}, {"k": {"v": 1}})
        journal.append_event("add_faults", {"added": [[1, 1]], "version": 1}, "idem-0")
        journal.close()
        loaded = load_journal(path)
        assert loaded.state == {"width": 8, "version": 0}
        assert [e["op"] for e in loaded.events] == ["add_faults"]
        assert loaded.idem["idem-0"] == {"added": [[1, 1]], "version": 1}
        assert loaded.idem["k"] == {"v": 1}
        assert loaded.seq == 2 and loaded.records == 2

    def test_newest_snapshot_wins(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path)
        journal.append_snapshot({"version": 0})
        journal.append_event("add_faults", {"added": [[1, 1]], "version": 1})
        journal.append_snapshot({"version": 1})
        journal.append_event("repair", {"removed": [[1, 1]], "version": 2})
        journal.close()
        loaded = load_journal(path)
        assert loaded.state == {"version": 1}
        assert [e["op"] for e in loaded.events] == ["repair"]

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path)
        journal.append_snapshot({"version": 0})
        journal.append_event("add_faults", {"added": [[2, 2]], "version": 1})
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"t": "event", "seq": 3, "op"')  # kill -9 mid-write
        loaded = load_journal(path)
        assert loaded.truncated_lines == 1
        assert len(loaded.events) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path)
        journal.append_snapshot({"version": 0})
        journal.close()
        record = encode({"t": "event", "seq": 2, "op": "repair", "payload": {}})
        path.write_bytes(path.read_bytes() + b"garbage\n" + record)
        with pytest.raises(JournalError):
            load_journal(path)

    def test_empty_and_snapshotless_journals_rejected(self, tmp_path):
        empty = tmp_path / "empty.ndjson"
        empty.write_bytes(b"")
        with pytest.raises(JournalError):
            load_journal(empty)
        eventful = tmp_path / "events.ndjson"
        eventful.write_bytes(
            encode({"t": "event", "seq": 1, "op": "repair", "payload": {}})
        )
        with pytest.raises(JournalError):
            load_journal(eventful)

    def test_replay_verifies_versions(self):
        session = MeshSession(width=8)
        events = [
            {
                "seq": 2,
                "op": "add_faults",
                "payload": {"added": [[1, 1]], "version": 99},
            }
        ]
        with pytest.raises(JournalError):
            replay_events(session, events)

    def test_replay_applies_adds_and_removes(self):
        session = MeshSession(width=8)
        oracle = MeshSession(width=8)
        oracle.add_faults([(1, 1), (2, 2)])
        oracle.remove_faults([(1, 1)])
        events = [
            {"op": "add_faults", "payload": {"added": [[1, 1], [2, 2]], "version": 1}},
            {"op": "repair", "payload": {"removed": [[1, 1]], "version": 2}},
        ]
        assert replay_events(session, events) == 2
        assert session.fingerprint() == oracle.fingerprint()


class TestJournalRotation:
    def test_compact_caps_file_size(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path, max_bytes=2000)
        journal.append_snapshot({"version": 0})
        state = {"version": 0}
        for i in range(200):
            state = {"version": i + 1}
            journal.append_event("add_faults", {"added": [[1, 1]], "version": i + 1})
            if journal.should_compact():
                journal.compact(state)
        assert journal.rotations >= 1
        assert journal.size_bytes() <= 2000 + 200  # one snapshot past the cap
        final_seq = journal.seq
        journal.close()
        loaded = load_journal(path)
        # The file holds the last compaction snapshot plus the tail of
        # events appended after it; together they reach the final state.
        assert loaded.state["version"] + len(loaded.events) == 200
        assert loaded.events[-1]["payload"]["version"] == 200
        assert loaded.seq == final_seq  # seq survives the swap monotonically

    def test_compact_preserves_idempotency_cache(self, tmp_path):
        path = tmp_path / "j.ndjson"
        journal = Journal(path)
        journal.append_snapshot({"version": 0})
        journal.append_event("add_faults", {"added": [[3, 3]], "version": 1}, "idem-a")
        journal.compact({"version": 1}, {"idem-a": {"added": [[3, 3]], "version": 1}})
        journal.close()
        loaded = load_journal(path)
        assert loaded.events == []
        assert loaded.idem["idem-a"]["version"] == 1

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            Journal(tmp_path / "j.ndjson", max_bytes=0)

    def test_info_reports_rotation_counters(self, tmp_path):
        journal = Journal(tmp_path / "j.ndjson", max_bytes=10_000)
        journal.append_snapshot({"version": 0})
        info = journal.info()
        assert info["max_bytes"] == 10_000
        assert info["rotations"] == 0
        assert info["size_bytes"] > 0
        journal.close()

    def test_daemon_rotation_recovers_bit_identical(self, tmp_path):
        path = tmp_path / "daemon.ndjson"

        async def run():
            daemon = fresh_daemon(
                journal=path, snapshot_every=10_000, journal_max_bytes=1000
            )
            client = InProcessClient(daemon)
            await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "rotate-me"}
            )
            _, status = await churn(client, rounds=60)
            return status["fingerprint"], daemon.journal.rotations

        fingerprint, rotations = asyncio.run(run())
        assert rotations >= 1  # the cap actually triggered mid-run
        assert path.stat().st_size < 20_000
        recovered = RouteDaemon.recover(path)
        assert recovered.session.fingerprint() == fingerprint

        async def replay():
            client = InProcessClient(recovered)
            response = await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "rotate-me"}
            )
            assert response["idempotent_replay"] is True

        asyncio.run(replay())
        recovered.journal.close()


# -- session state / fingerprint -----------------------------------------------------


class TestSessionState:
    def test_state_round_trip_is_bit_identical(self):
        session = MeshSession.from_scenario(generate_scenario(**SCENARIO))
        session.add_faults([(0, 5), (7, 7)])
        session.remove_faults([(0, 5)])
        clone = MeshSession.from_state(session.state())
        assert clone.fingerprint() == session.fingerprint()
        assert clone.version == session.version

    def test_fingerprint_tracks_fault_history(self):
        a = MeshSession(width=8)
        b = MeshSession(width=8)
        assert a.fingerprint() == b.fingerprint()
        a.add_faults([(3, 3)])
        assert a.fingerprint() != b.fingerprint()


# -- idempotent mutations ------------------------------------------------------------


class TestIdempotency:
    def test_duplicate_idem_applies_once(self):
        daemon = fresh_daemon()
        client = InProcessClient(daemon)

        async def main():
            first = await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "alpha"}
            )
            replay = await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "alpha"}
            )
            assert first["ok"] and replay["ok"]
            assert "idempotent_replay" not in first
            assert replay["idempotent_replay"] is True
            assert replay["version"] == first["version"]
            assert daemon.session.version == first["version"]

        asyncio.run(main())

    def test_distinct_idem_applies_twice(self):
        daemon = fresh_daemon()
        client = InProcessClient(daemon)

        async def main():
            await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "a"}
            )
            second = await client.request(
                {"op": "add_faults", "nodes": [[3, 3]], "idem": "b"}
            )
            assert "idempotent_replay" not in second
            assert daemon.session.version == second["version"]

        asyncio.run(main())


# -- crash recovery ------------------------------------------------------------------


class TestRecovery:
    def test_kill_then_recover_matches_oracle(self, tmp_path):
        path = tmp_path / "daemon.ndjson"

        async def crashed_run():
            daemon = fresh_daemon(journal=path, snapshot_every=4)
            client = InProcessClient(daemon)
            _, status = await churn(client)
            # No daemon.stop(): simulate a crash by abandoning the daemon
            # with its journal file handle unflushed-but-per-record-synced.
            return status["fingerprint"]

        crashed_fp = asyncio.run(crashed_run())

        async def oracle_run():
            daemon = fresh_daemon()
            client = InProcessClient(daemon)
            _, status = await churn(client)
            return status["fingerprint"], daemon.session.version

        oracle_fp, oracle_version = asyncio.run(oracle_run())
        assert crashed_fp == oracle_fp

        recovered = RouteDaemon.recover(path)
        assert recovered.session.fingerprint() == oracle_fp
        assert recovered.session.version == oracle_version
        assert recovered.recovered["events_replayed"] >= 1
        assert recovered.recovered["truncated_lines"] == 0
        recovered.journal.close()

    def test_recover_after_torn_tail(self, tmp_path):
        path = tmp_path / "daemon.ndjson"

        async def run():
            daemon = fresh_daemon(journal=path, snapshot_every=100)
            client = InProcessClient(daemon)
            await client.add_faults([(2, 2)])
            return daemon.session.fingerprint()

        fingerprint = asyncio.run(run())
        with open(path, "ab") as handle:
            handle.write(b'{"t": "ev')  # torn final write
        recovered = RouteDaemon.recover(path)
        assert recovered.session.fingerprint() == fingerprint
        assert recovered.recovered["truncated_lines"] == 1
        recovered.journal.close()

    def test_idempotency_cache_survives_recovery(self, tmp_path):
        path = tmp_path / "daemon.ndjson"

        async def run():
            daemon = fresh_daemon(journal=path)
            client = InProcessClient(daemon)
            response = await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "retry-me"}
            )
            return response["version"]

        version = asyncio.run(run())
        recovered = RouteDaemon.recover(path)

        async def replay():
            client = InProcessClient(recovered)
            response = await client.request(
                {"op": "add_faults", "nodes": [[2, 2]], "idem": "retry-me"}
            )
            assert response["idempotent_replay"] is True
            assert response["version"] == version
            assert recovered.session.version == version

        asyncio.run(replay())
        recovered.journal.close()

    def test_constructor_refuses_populated_journal(self, tmp_path):
        path = tmp_path / "daemon.ndjson"
        asyncio.run(
            InProcessClient(fresh_daemon(journal=path)).add_faults([(1, 1)])
        )
        with pytest.raises(ValueError, match="recover"):
            fresh_daemon(journal=path)

    def test_recover_owns_session_kwargs(self, tmp_path):
        path = tmp_path / "daemon.ndjson"
        fresh_daemon(journal=path).journal.close()
        with pytest.raises(TypeError):
            RouteDaemon.recover(path, scenario=generate_scenario(**SCENARIO))


# -- admission control ---------------------------------------------------------------


class TestAdmissionControl:
    def test_overload_sheds_with_retry_after(self):
        daemon = fresh_daemon(window=60.0, max_batch=10_000, max_pending=4)
        client = InProcessClient(daemon)

        async def main():
            buffered = [
                asyncio.ensure_future(
                    client.request({"op": "route", "pairs": [[0, 0, 1, 1]]})
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            assert daemon.coalescer.queue_depth == 4
            shed = await client.request({"op": "route", "pairs": [[0, 0, 1, 1]]})
            assert shed["ok"] is False
            assert shed["error"]["code"] == E_OVERLOADED
            assert shed["error"]["retry_after"] > 0
            daemon.coalescer.flush_now()
            responses = await asyncio.gather(*buffered)
            assert all(r["ok"] for r in responses)
            status = await client.status()
            assert status["admission"]["shed_requests"] == 1

        asyncio.run(main())

    def test_shed_then_retry_converges(self):
        daemon = fresh_daemon(window=0.002, max_batch=10_000, max_pending=4)
        client = InProcessClient(daemon)

        async def retrying(pair):
            policy = RetryPolicy(
                max_attempts=None, base_delay=0.002, jitter=0.0, deadline=20.0
            )
            schedule = policy.schedule()
            while True:
                response = await client.request({"op": "route", "pairs": [pair]})
                if response["ok"]:
                    return response["routes"][0]
                assert response["error"]["code"] == E_OVERLOADED
                delay = schedule.next_delay()
                assert delay is not None
                await asyncio.sleep(max(delay, response["error"]["retry_after"]))

        async def main():
            pairs = [[i % 12, 0, 11, 11] for i in range(64)]
            routes = await asyncio.gather(*(retrying(p) for p in pairs))
            assert len(routes) == 64
            status = await client.status()
            # The tiny queue guarantees genuine sheds happened.
            assert status["admission"]["shed_requests"] > 0
            oracle = InProcessClient(fresh_daemon())
            for pair, route in zip(pairs, routes):
                expected = (
                    await oracle.route([pair])
                )["routes"][0]
                assert route == expected

        asyncio.run(main())

    def test_expired_deadline_skips_engine(self):
        daemon = fresh_daemon(window=0.01, max_batch=10_000)
        client = InProcessClient(daemon)

        async def main():
            response = await client.request(
                {"op": "route", "pairs": [[0, 0, 1, 1]], "deadline_ms": 0}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == E_DEADLINE
            assert daemon.expired_routes == 1
            assert daemon._last_engine == ""  # the engine never ran

        asyncio.run(main())

    def test_bad_deadline_rejected(self):
        client = InProcessClient(fresh_daemon())

        async def main():
            response = await client.request(
                {"op": "route", "pairs": [[0, 0, 1, 1]], "deadline_ms": "soon"}
            )
            assert response["ok"] is False
            assert response["error"]["code"] == E_BAD_REQUEST

        asyncio.run(main())

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            fresh_daemon(max_pending=0)
        with pytest.raises(ValueError):
            fresh_daemon(max_inflight=0)
        with pytest.raises(ValueError):
            fresh_daemon(snapshot_every=0)


# -- graceful degradation ------------------------------------------------------------


class TestDegradedFlush:
    def test_batch_engine_failure_degrades_to_scalar(self, monkeypatch):
        daemon = fresh_daemon()
        client = InProcessClient(daemon)
        oracle = InProcessClient(fresh_daemon(engine="scalar"))

        def boom(router_obj, batch):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr("repro.serve.daemon.route_batch", boom)

        async def main():
            response = await client.route([[0, 0, 11, 11]])
            assert response["engine"] == "scalar"
            expected = await oracle.route([[0, 0, 11, 11]])
            assert response["routes"] == expected["routes"]
            status = await client.status()
            assert status["degraded_flushes"] == 1

        asyncio.run(main())


# -- TCP client resilience -----------------------------------------------------------


class TestClientResilience:
    def test_timeout_poisons_connection(self):
        async def main():
            async def mute(reader, writer):
                await reader.readline()  # swallow the request, never answer

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServeClient("127.0.0.1", port)
            await client.connect()
            with pytest.raises(asyncio.TimeoutError):
                await client.request({"op": "ping"}, timeout=0.05)
            assert client.connected is False
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_overlong_response_poisons_connection(self, monkeypatch):
        monkeypatch.setattr("repro.serve.client.MAX_LINE_BYTES", 128)

        async def main():
            async def chatty(reader, writer):
                await reader.readline()
                writer.write(b"x" * 4096 + b"\n")
                await writer.drain()

            server = await asyncio.start_server(chatty, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServeClient("127.0.0.1", port)
            await client.connect()
            with pytest.raises(ValueError):
                await client.request({"op": "ping"})
            assert client.connected is False
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_truncated_response_raises_connection_error(self):
        async def main():
            async def cutoff(reader, writer):
                await reader.readline()
                writer.write(b'{"ok": tr')  # no newline, then EOF
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(cutoff, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = ServeClient("127.0.0.1", port)
            await client.connect()
            with pytest.raises(ConnectionError):
                await client.request({"op": "ping"})
            assert client.connected is False
            await client.close()
            server.close()
            await server.wait_closed()

        asyncio.run(main())

    def test_overlong_request_line_rejected_by_daemon(self, monkeypatch):
        monkeypatch.setattr("repro.serve.daemon.MAX_LINE_BYTES", 1024)

        async def main():
            daemon = fresh_daemon()
            host, port = await daemon.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"[" + b"1," * 2048 + b"1]\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == E_BAD_REQUEST
            writer.close()
            await daemon.stop()

        asyncio.run(main())

    def test_reconnect_after_daemon_restart(self):
        async def main():
            daemon = fresh_daemon()
            host, port = await daemon.start()
            client = ServeClient(
                host,
                port,
                retry=RetryPolicy(
                    max_attempts=None,
                    base_delay=0.01,
                    max_delay=0.1,
                    jitter=0.0,
                    deadline=10.0,
                ),
                timeout=2.0,
            )
            await client.connect()
            assert (await client.ping())["pong"] is True
            fingerprint = (await client.status())["fingerprint"]
            await daemon.stop()

            restart = fresh_daemon(host=host, port=port)

            async def bring_back():
                await asyncio.sleep(0.05)
                await restart.start()

            bringer = asyncio.ensure_future(bring_back())
            # The old connection is dead; the retrying request reconnects
            # to the restarted daemon on the same port.
            status = await client.status()
            assert status["fingerprint"] == fingerprint
            await bringer
            await client.close()
            await restart.stop()

        asyncio.run(main())

    def test_close_tolerates_dead_transport(self):
        async def main():
            daemon = fresh_daemon()
            host, port = await daemon.start()
            client = await ServeClient(host, port).connect()
            await daemon.stop()
            await client.close()  # must not raise on the dead socket
            await client.close()  # double close is a no-op

        asyncio.run(main())

    def test_concurrent_clients_during_graceful_drain(self):
        async def main():
            daemon = fresh_daemon(window=0.002)
            host, port = await daemon.start()
            clients = [await ServeClient(host, port).connect() for _ in range(4)]

            async def hammer(client):
                results = []
                try:
                    for _ in range(10):
                        response = await client.request(
                            {"op": "route", "pairs": [[0, 0, 11, 11]]}
                        )
                        results.append(response)
                        await asyncio.sleep(0.001)
                except (ConnectionError, OSError):
                    pass  # the listener went away mid-hammer: expected
                return results

            hammers = [asyncio.ensure_future(hammer(c)) for c in clients]
            await asyncio.sleep(0.05)
            await daemon.stop()
            all_responses = await asyncio.gather(*hammers)
            saw_ok = False
            for batch in all_responses:
                for response in batch:
                    if response["ok"]:
                        saw_ok = True
                        assert response["routes"][0]["hops"] >= 0
                    else:
                        assert response["error"]["code"] == "shutting-down"
            assert saw_ok  # requests before the drain completed normally
            for client in clients:
                await client.close()

        asyncio.run(main())


# -- chaos differential --------------------------------------------------------------


class TestChaosDifferential:
    def test_chaos_run_is_bit_identical_to_fault_free(self, tmp_path):
        """The tentpole differential: the same workload through a hostile
        proxy (drops, delays, partial writes, disconnects) and over a
        clean socket produces identical route outcomes and an identical
        final session fingerprint -- and the journal written under chaos
        recovers to that same fingerprint."""
        path = tmp_path / "chaos.ndjson"

        async def chaotic_run():
            daemon = fresh_daemon(journal=path, snapshot_every=4, window=0.0005)
            host, port = await daemon.start()
            chaos = ChaosTransport(
                host,
                port,
                ChaosConfig(
                    drop_rate=0.15,
                    delay_rate=0.2,
                    max_delay=0.002,
                    partial_write_rate=0.05,
                    disconnect_rate=0.05,
                    seed=99,
                ),
            )
            await chaos.start()
            client = ServeClient(
                *chaos.address,
                retry=RetryPolicy(
                    max_attempts=None,
                    base_delay=0.01,
                    max_delay=0.1,
                    jitter=0.25,
                    seed=5,
                    deadline=60.0,
                ),
                timeout=0.25,
            )
            await client.connect()
            outcomes, status = await churn(client)
            await client.close()
            await chaos.stop()
            await daemon.stop()
            return outcomes, status["fingerprint"], dict(chaos.injected)

        async def clean_run():
            daemon = fresh_daemon(window=0.0005)
            host, port = await daemon.start()
            client = await ServeClient(host, port).connect()
            outcomes, status = await churn(client)
            await client.close()
            await daemon.stop()
            return outcomes, status["fingerprint"]

        chaos_outcomes, chaos_fp, injected = asyncio.run(chaotic_run())
        clean_outcomes, clean_fp = asyncio.run(clean_run())
        assert chaos_outcomes == clean_outcomes
        assert chaos_fp == clean_fp
        # The run must have been genuinely hostile, not accidentally clean.
        assert injected["drops"] > 0
        assert injected["disconnects"] + injected["partial_writes"] > 0

        recovered = RouteDaemon.recover(path)
        assert recovered.session.fingerprint() == clean_fp
        recovered.journal.close()

    def test_chaos_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(max_delay=-1.0)


# -- CLI wiring ----------------------------------------------------------------------


class TestCliWiring:
    def test_resilience_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        serve = parser.parse_args(
            [
                "serve",
                "--journal",
                "j.ndjson",
                "--snapshot-every",
                "16",
                "--max-pending",
                "512",
                "--max-inflight",
                "8",
            ]
        )
        assert serve.journal == "j.ndjson"
        assert serve.snapshot_every == 16
        assert serve.max_pending == 512 and serve.max_inflight == 8
        query = parser.parse_args(
            ["query", "--timeout", "2.5", "--retries", "3", "--wait", "5"]
        )
        assert query.timeout == 2.5
        assert query.retries == 3
        assert query.wait == 5.0
