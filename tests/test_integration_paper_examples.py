"""Integration tests that encode the paper's running examples end to end."""


from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.routing.extended_ecube import ExtendedECubeRouter
from repro.sim.experiments import compare_constructions


class TestSection21Shapes:
    """Section 2.1: which shapes are orthogonal convex polygons."""

    def test_tlplus_shapes_are_convex_ush_shapes_are_not(self):
        from repro.geometry.orthogonal import is_orthogonal_convex

        t_shape = {(0, 1), (1, 1), (2, 1), (1, 0)}
        l_shape = {(2, 4), (3, 4), (4, 3)}
        plus_shape = {(1, 0), (0, 1), (1, 1), (2, 1), (1, 2)}
        u_shape = {(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)}
        h_shape = {(0, 0), (0, 1), (0, 2), (2, 0), (2, 1), (2, 2), (1, 1)}
        assert is_orthogonal_convex(t_shape)
        assert is_orthogonal_convex(l_shape)
        assert is_orthogonal_convex(plus_shape)
        assert not is_orthogonal_convex(u_shape)
        assert not is_orthogonal_convex(h_shape)


class TestSection22RoutingExample:
    """Section 2.2 / Figure 2: routing from (1,3) to (6,4) around the polygon."""

    def test_route_follows_the_narrative(self, figure2_region):
        router = ExtendedECubeRouter(Mesh2D(10, 10), [figure2_region])
        result = router.route((1, 3), (6, 4))
        assert result.delivered
        path = list(result.path)
        # WE-bound row travel eastwards first.
        assert path[:2] == [(1, 3), (2, 3)]
        # The message becomes normal again at (5,2) and passes through (6,2).
        assert (5, 2) in path and (6, 2) in path
        assert path.index((5, 2)) < path.index((6, 2))
        assert path[-1] == (6, 4)

    def test_fault_free_route_matches_base_ecube(self):
        router = ExtendedECubeRouter(Mesh2D(10, 10), [])
        result = router.route((1, 3), (6, 4))
        assert result.is_minimal
        assert (6, 3) in result.path


class TestFigure3Pipeline:
    """Figure 3: FB -> FP -> MFP on a ten-fault pattern, strictly improving."""

    def test_monotone_improvement(self, figure3_faults):
        topology = Mesh2D(15, 15)
        fb = build_faulty_blocks(figure3_faults, topology=topology)
        fp = build_sub_minimum_polygons(figure3_faults, topology=topology)
        mfp = build_minimum_polygons(figure3_faults, topology=topology)
        assert (
            mfp.num_disabled_nonfaulty
            <= fp.num_disabled_nonfaulty
            <= fb.num_disabled_nonfaulty
        )
        assert fb.num_disabled_nonfaulty > 0
        assert fp.all_orthogonal_convex()
        assert mfp.all_orthogonal_convex()

    def test_every_model_covers_every_fault(self, figure3_faults):
        topology = Mesh2D(15, 15)
        for result in (
            build_faulty_blocks(figure3_faults, topology=topology),
            build_sub_minimum_polygons(figure3_faults, topology=topology),
            build_minimum_polygons(figure3_faults, topology=topology),
        ):
            disabled = result.grid.disabled_set()
            assert set(figure3_faults) <= disabled


class TestFigure4Situation:
    """Figure 4: per-component polygons beat the per-block polygon."""

    def test_fp_keeps_extra_nodes_mfp_does_not(self, figure4_faults):
        topology = Mesh2D(10, 10)
        fb = build_faulty_blocks(figure4_faults, topology=topology)
        fp = build_sub_minimum_polygons(figure4_faults, topology=topology)
        mfp = build_minimum_polygons(figure4_faults, topology=topology)

        # Scheme 1 merges the two components into one rectangular block.
        assert len(fb.regions) == 1
        assert fb.num_disabled_nonfaulty >= 4
        # The sub-minimum polygon still wastes at least one node, the
        # minimum construction wastes none (both components are convex).
        assert mfp.num_disabled_nonfaulty == 0
        assert fp.num_disabled_nonfaulty >= mfp.num_disabled_nonfaulty
        assert len(mfp.regions) == 2

    def test_distributed_solution_agrees(self, figure4_faults):
        topology = Mesh2D(10, 10)
        mfp = build_minimum_polygons(figure4_faults, topology=topology)
        dmfp = build_minimum_polygons_distributed(figure4_faults, topology=topology)
        assert dmfp.grid.disabled_set() == mfp.grid.disabled_set()


class TestSection4HeadlineClaims:
    """Section 4: the qualitative claims of the evaluation, at reduced scale."""

    def test_fp_and_mfp_savings(self):
        # "Under the sub-minimum faulty polygon model, 50% of non-faulty
        #  nodes contained in the faulty blocks can be enabled.  Under the
        #  minimum faulty polygon model, 90% ... can be enabled."
        savings_fp = []
        savings_mfp = []
        for seed in range(3):
            scenario = generate_scenario(
                num_faults=500, width=100, model="random", seed=seed
            )
            metrics = compare_constructions(scenario, include_distributed=False,
                                            include_rounds=False)
            savings_fp.append(metrics.saving_vs_fb("FP"))
            savings_mfp.append(metrics.saving_vs_fb("MFP"))
        assert sum(savings_fp) / len(savings_fp) >= 0.40
        assert sum(savings_mfp) / len(savings_mfp) >= 0.80
        assert sum(savings_mfp) > sum(savings_fp)

    def test_average_region_size_ordering(self):
        # "The average size of MFP is the least of the three."
        scenario = generate_scenario(num_faults=600, width=100, model="clustered", seed=5)
        metrics = compare_constructions(scenario, include_distributed=False,
                                        include_rounds=False)
        assert (
            metrics.mean_region_size("MFP")
            <= metrics.mean_region_size("FP")
            <= metrics.mean_region_size("FB")
        )

    def test_clustered_blocks_grow_faster_than_minimum_polygons(self):
        # "the size of each faulty block becomes large ... However, the
        #  average size of minimum faulty polygons does not increase much."
        random_metrics = compare_constructions(
            generate_scenario(num_faults=700, width=100, model="random", seed=1),
            include_distributed=False, include_rounds=False,
        )
        clustered_metrics = compare_constructions(
            generate_scenario(num_faults=700, width=100, model="clustered", seed=1),
            include_distributed=False, include_rounds=False,
        )
        fb_growth = clustered_metrics.mean_region_size("FB") / random_metrics.mean_region_size("FB")
        mfp_growth = clustered_metrics.mean_region_size("MFP") / random_metrics.mean_region_size("MFP")
        assert fb_growth > mfp_growth

    def test_rounds_ordering(self):
        # "the number of rounds ... under FP is more than that of FB",
        # "the number of rounds needed under the CMFP is much less than FB".
        scenario = generate_scenario(num_faults=700, width=100, model="random", seed=2)
        metrics = compare_constructions(scenario)
        assert metrics.rounds("FP") >= metrics.rounds("FB")
        assert metrics.rounds("CMFP") < metrics.rounds("FB")
        assert metrics.rounds("DMFP") >= metrics.rounds("CMFP")
