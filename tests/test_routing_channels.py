"""Unit tests for virtual-channel assignment and deadlock-freedom checks."""

import pytest

from repro.mesh.topology import Mesh2D
from repro.routing.channels import (
    ABNORMAL_CHANNEL,
    BASE_CHANNEL,
    assign_channels,
    channel_dependency_graph,
    has_cyclic_dependency,
)
from repro.routing.extended_ecube import ExtendedECubeRouter
from repro.types import MessageType


@pytest.fixture
def router(figure2_region):
    return ExtendedECubeRouter(Mesh2D(10, 10), [figure2_region])


class TestAssignChannels:
    def test_fault_free_route_uses_only_base_channels(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [])
        assignment = assign_channels(router.route((0, 0), (5, 5)))
        assert not assignment.uses_abnormal_channels
        assert all(channel[2] == BASE_CHANNEL for channel in assignment.channels)

    def test_one_channel_per_hop(self, router):
        result = router.route((1, 3), (6, 4))
        assignment = assign_channels(result)
        assert len(assignment.channels) == result.hops

    def test_abnormal_hops_use_the_class_channel(self, router):
        result = router.route((1, 3), (6, 4))
        assignment = assign_channels(result)
        abnormal = [c for c in assignment.channels if c[2] != BASE_CHANNEL]
        assert abnormal, "the Figure 2 route must traverse the region"
        # The message is WE-bound while circling the region.
        assert all(c[2] == ABNORMAL_CHANNEL[MessageType.WE] for c in abnormal)

    def test_channel_indices_are_distinct_per_class(self):
        assert len(set(ABNORMAL_CHANNEL.values())) == 4
        assert BASE_CHANNEL not in ABNORMAL_CHANNEL.values()


class TestDependencyGraph:
    def test_empty_graph_has_no_cycle(self):
        assert not has_cyclic_dependency({})

    def test_simple_cycle_detected(self):
        a, b = ((0, 0), (1, 0), 0), ((1, 0), (0, 0), 0)
        assert has_cyclic_dependency({a: {b}, b: {a}})

    def test_chain_is_acyclic(self):
        a, b, c = ((0, 0), (1, 0), 0), ((1, 0), (2, 0), 0), ((2, 0), (3, 0), 0)
        assert not has_cyclic_dependency({a: {b}, b: {c}, c: set()})

    def test_graph_from_routes_contains_consecutive_edges(self, router):
        assignment = assign_channels(router.route((0, 3), (6, 3)))
        graph = channel_dependency_graph([assignment])
        assert len(graph) == len(set(assignment.channels))
        first, second = assignment.channels[0], assignment.channels[1]
        assert second in graph[first]

    def test_extended_ecube_traffic_is_deadlock_free(self, router):
        # Route a dense all-pairs sample around the Figure 2 polygon and
        # check the channel dependency graph stays acyclic.
        assignments = []
        endpoints = [(0, 0), (9, 9), (0, 9), (9, 0), (1, 3), (6, 4), (5, 0), (0, 6)]
        for source in endpoints:
            for destination in endpoints:
                if source == destination:
                    continue
                result = router.route(source, destination)
                if result.delivered:
                    assignments.append(assign_channels(result))
        graph = channel_dependency_graph(assignments)
        assert not has_cyclic_dependency(graph)
