"""Unit tests for virtual-channel assignment and deadlock-freedom checks."""

import pytest

from repro.mesh.topology import Mesh2D, Torus2D
from repro.routing.channels import (
    ABNORMAL_CHANNEL,
    BASE_CHANNEL,
    assign_channels,
    channel_dependency_graph,
    has_cyclic_dependency,
    hop_direction,
)
from repro.routing.extended_ecube import ExtendedECubeRouter, RouteResult
from repro.types import MessageType


@pytest.fixture
def router(figure2_region):
    return ExtendedECubeRouter(Mesh2D(10, 10), [figure2_region])


class TestAssignChannels:
    def test_fault_free_route_uses_only_base_channels(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [])
        assignment = assign_channels(router.route((0, 0), (5, 5)))
        assert not assignment.uses_abnormal_channels
        assert all(channel[2] == BASE_CHANNEL for channel in assignment.channels)

    def test_one_channel_per_hop(self, router):
        result = router.route((1, 3), (6, 4))
        assignment = assign_channels(result)
        assert len(assignment.channels) == result.hops

    def test_abnormal_hops_use_the_class_channel(self, router):
        result = router.route((1, 3), (6, 4))
        assignment = assign_channels(result)
        abnormal = [c for c in assignment.channels if c[2] != BASE_CHANNEL]
        assert abnormal, "the Figure 2 route must traverse the region"
        # The message is WE-bound while circling the region.
        assert all(c[2] == ABNORMAL_CHANNEL[MessageType.WE] for c in abnormal)

    def test_channel_indices_are_distinct_per_class(self):
        assert len(set(ABNORMAL_CHANNEL.values())) == 4
        assert BASE_CHANNEL not in ABNORMAL_CHANNEL.values()


class TestDependencyGraph:
    def test_empty_graph_has_no_cycle(self):
        assert not has_cyclic_dependency({})

    def test_simple_cycle_detected(self):
        a, b = ((0, 0), (1, 0), 0), ((1, 0), (0, 0), 0)
        assert has_cyclic_dependency({a: {b}, b: {a}})

    def test_chain_is_acyclic(self):
        a, b, c = ((0, 0), (1, 0), 0), ((1, 0), (2, 0), 0), ((2, 0), (3, 0), 0)
        assert not has_cyclic_dependency({a: {b}, b: {c}, c: set()})

    def test_graph_from_routes_contains_consecutive_edges(self, router):
        assignment = assign_channels(router.route((0, 3), (6, 3)))
        graph = channel_dependency_graph([assignment])
        assert len(graph) == len(set(assignment.channels))
        first, second = assignment.channels[0], assignment.channels[1]
        assert second in graph[first]

    def test_extended_ecube_traffic_is_deadlock_free(self, router):
        # Route a dense all-pairs sample around the Figure 2 polygon and
        # check the channel dependency graph stays acyclic.
        assignments = []
        endpoints = [(0, 0), (9, 9), (0, 9), (9, 0), (1, 3), (6, 4), (5, 0), (0, 6)]
        for source in endpoints:
            for destination in endpoints:
                if source == destination:
                    continue
                result = router.route(source, destination)
                if result.delivered:
                    assignments.append(assign_channels(result))
        graph = channel_dependency_graph(assignments)
        assert not has_cyclic_dependency(graph)


def _torus_path(source, destination, width, height):
    """Dimension-ordered minimal path on a torus (x first, then y)."""

    def step(current, target, size):
        delta = (target - current) % size
        if delta == 0:
            return 0
        return 1 if delta <= size - delta else -1

    path = [source]
    x, y = source
    while x != destination[0]:
        x = (x + step(x, destination[0], width)) % width
        path.append((x, y))
    while y != destination[1]:
        y = (y + step(y, destination[1], height)) % height
        path.append((x, y))
    return tuple(path)


def _torus_result(source, destination, width, height):
    return RouteResult(
        source=source,
        destination=destination,
        delivered=True,
        path=_torus_path(source, destination, width, height),
        abnormal_hops=0,
    )


class TestTorusWrapChannels:
    def test_hop_direction_normalises_wrap_jumps(self):
        torus = Torus2D(8, 6)
        # East wrap 7 -> 0 is a +1 hop; west wrap 0 -> 7 is a -1 hop.
        assert hop_direction((7, 2), (0, 2), torus) == (1, 0)
        assert hop_direction((0, 2), (7, 2), torus) == (-1, 0)
        assert hop_direction((3, 5), (3, 0), torus) == (0, 1)
        assert hop_direction((3, 0), (3, 5), torus) == (0, -1)
        # Interior unit hops are untouched, with or without the topology.
        assert hop_direction((2, 2), (3, 2), torus) == (1, 0)
        assert hop_direction((2, 2), (3, 2)) == (1, 0)

    def test_wrap_hops_classify_as_abnormal(self):
        torus = Torus2D(8, 8)
        # (6,0) -> (1,0): minimal route wraps east across the 7 -> 0 seam.
        assignment = assign_channels(_torus_result((6, 0), (1, 0), 8, 8), topology=torus)
        by_hop = {(c[0], c[1]): c[2] for c in assignment.channels}
        assert by_hop[((7, 0), (0, 0))] != BASE_CHANNEL
        # Once past the seam the message is east-bound on its e-cube path.
        assert by_hop[((0, 0), (1, 0))] == BASE_CHANNEL

    def test_wrap_channels_keyed_by_physical_link(self):
        torus = Torus2D(8, 8)
        assignment = assign_channels(_torus_result((6, 0), (1, 0), 8, 8), topology=torus)
        froms = [c[0] for c in assignment.channels]
        tos = [c[1] for c in assignment.channels]
        assert ((7, 0) in froms) and ((0, 0) in tos)

    @pytest.mark.parametrize("width", [4, 5, 6])
    def test_all_pairs_minimal_torus_traffic_is_deadlock_free(self, width):
        # Property: the vc0-vc3 discipline (every wrap hop abnormal) keeps
        # the channel-dependency graph acyclic for the full all-pairs
        # population of dimension-ordered minimal torus routes -- the
        # torus extension of the mesh deadlock-freedom argument.
        torus = Torus2D(width, width)
        assignments = []
        wrap_hops = 0
        for source in torus.nodes():
            for destination in torus.nodes():
                if source == destination:
                    continue
                result = _torus_result(source, destination, width, width)
                for a, b in zip(result.path, result.path[1:]):
                    if abs(a[0] - b[0]) > 1 or abs(a[1] - b[1]) > 1:
                        wrap_hops += 1
                assignments.append(assign_channels(result, topology=torus))
        assert wrap_hops > 0, "the population must exercise wrap links"
        graph = channel_dependency_graph(assignments)
        assert not has_cyclic_dependency(graph)

    def test_router_on_torus_stays_acyclic(self):
        # The built-in routers take mesh-style x-y paths even on a torus;
        # the assignment with topology passed must agree with the plain
        # mesh classification for them.
        router = ExtendedECubeRouter(Torus2D(8, 8), [])
        result = router.route((1, 1), (6, 5))
        with_topo = assign_channels(result, topology=Torus2D(8, 8))
        without = assign_channels(result)
        assert with_topo.channels == without.channels
