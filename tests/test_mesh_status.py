"""Unit tests for repro.mesh.status.StatusGrid."""

import pytest

from repro.mesh.status import StatusGrid
from repro.types import ActivityLabel, NodeKind, SafetyLabel


class TestStatusGridBasics:
    def test_fresh_grid_has_no_marks(self, mesh10):
        grid = StatusGrid(mesh10)
        assert grid.num_faulty == 0
        assert grid.num_unsafe == 0
        assert grid.num_disabled == 0
        assert grid.num_enabled == 100

    def test_constructor_faults(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(1, 1), (2, 2)])
        assert grid.num_faulty == 2
        assert grid.is_faulty((1, 1))
        assert grid.is_unsafe((1, 1))
        assert grid.is_disabled((1, 1))

    def test_mark_faulty_outside_topology_raises(self, mesh10):
        grid = StatusGrid(mesh10)
        with pytest.raises(ValueError):
            grid.mark_faulty((10, 0))

    def test_faulty_node_cannot_be_enabled(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(3, 3)])
        with pytest.raises(ValueError):
            grid.mark_enabled((3, 3))

    def test_mark_and_unmark_disabled(self, mesh10):
        grid = StatusGrid(mesh10)
        grid.mark_disabled((4, 4))
        assert grid.is_disabled((4, 4))
        grid.mark_enabled((4, 4))
        assert not grid.is_disabled((4, 4))

    def test_reset_labels_keeps_faults(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(1, 1)])
        grid.mark_unsafe((2, 1))
        grid.mark_disabled((2, 1))
        grid.reset_labels()
        assert grid.is_unsafe((1, 1))
        assert not grid.is_unsafe((2, 1))
        assert not grid.is_disabled((2, 1))


class TestLabelsAndKinds:
    def test_labels(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(0, 0)])
        grid.mark_unsafe((1, 0))
        assert grid.safety_label((1, 0)) is SafetyLabel.UNSAFE
        assert grid.safety_label((5, 5)) is SafetyLabel.SAFE
        assert grid.activity_label((0, 0)) is ActivityLabel.DISABLED
        assert grid.activity_label((5, 5)) is ActivityLabel.ENABLED

    def test_kind_colours(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(0, 0)])
        grid.mark_disabled((1, 0))
        assert grid.kind((0, 0)) is NodeKind.FAULTY
        assert grid.kind((1, 0)) is NodeKind.DISABLED
        assert grid.kind((5, 5)) is NodeKind.ENABLED


class TestSetsAndCounters:
    def test_sets(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(1, 1)])
        grid.mark_unsafe((1, 2))
        grid.mark_disabled((1, 2))
        assert grid.fault_set() == {(1, 1)}
        assert grid.unsafe_set() == {(1, 1), (1, 2)}
        assert grid.disabled_set() == {(1, 1), (1, 2)}
        assert grid.disabled_nonfaulty_set() == {(1, 2)}

    def test_counters_consistent_with_sets(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(0, 0), (5, 5)])
        grid.mark_disabled((0, 1))
        assert grid.num_disabled == 3
        assert grid.num_disabled_nonfaulty == 1
        assert grid.num_enabled == 97

    def test_copy_is_independent(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(2, 2)])
        clone = grid.copy()
        clone.mark_disabled((3, 3))
        assert not grid.is_disabled((3, 3))
        assert clone.is_faulty((2, 2))


class TestRendering:
    def test_render_symbols(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(0, 0)])
        grid.mark_unsafe((1, 0))
        grid.mark_disabled((1, 0))
        grid.mark_unsafe((2, 0))
        picture = grid.render(bounds=(0, 0, 2, 0))
        assert picture == "# o +"

    def test_render_rows_are_north_to_south(self, mesh10):
        grid = StatusGrid(mesh10, faults=[(0, 1)])
        picture = grid.render(bounds=(0, 0, 0, 1))
        assert picture.splitlines() == ["#", "."]

    def test_full_render_shape(self, mesh10):
        grid = StatusGrid(mesh10)
        lines = grid.render().splitlines()
        assert len(lines) == 10
        assert all(len(line.split()) == 10 for line in lines)
