"""Differential tests: the array-backend ops against each other and oracles.

Every primitive of the :mod:`repro._array_ops` facade (component
labelling, span fills, hull fixpoints, non-convexity detection, jump
tables, lane scans, netsim arbitration) is asserted bit-identical across
every *runnable* backend -- ``numpy``, the uncompiled ``loops`` kernels
(the exact code the numba backend JITs), and ``numba`` itself when it is
installed -- and against independent set-based oracles on
Hypothesis-generated inputs.  The registry / toggle machinery
(``REPRO_ARRAY_BACKEND``, :func:`use_backend`, fallback semantics, stats
provenance labels) is tested in the same style as the mask-kernel and
engine toggles.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import _array_loops, _array_ops
from repro.api.session import MeshSession
from repro.core.components import find_components_bfs
from repro.core.labelling import faults_to_mask
from repro.geometry.orthogonal import (
    is_orthogonal_convex_sets,
    orthogonal_convex_hull_sets,
)

WIDTH = 15

coords = st.tuples(st.integers(0, WIDTH - 1), st.integers(0, WIDTH - 1))
fault_sets = st.sets(coords, min_size=0, max_size=40)

#: Backends whose own implementation can run here.  ``numba`` joins the
#: list only when it is importable; ``loops`` always runs the identical
#: source, so the JIT path is pinned even on numba-less environments.
RUNNABLE = ["numpy", "loops"] + (
    ["numba"] if _array_ops.get_backend("numba").available() else []
)
DIFFERENTIAL = [key for key in RUNNABLE if key != "numpy"]

NUMPY_OPS = _array_ops.get_backend("numpy").ops()


def _mask(faults: set) -> np.ndarray:
    return faults_to_mask(sorted(faults), WIDTH, WIDTH)


# -- primitive equivalence: every backend vs numpy vs a set-based oracle --------------


@pytest.mark.parametrize("backend", DIFFERENTIAL)
class TestPrimitiveDifferential:
    @settings(max_examples=60, deadline=None)
    @given(faults=fault_sets, connectivity=st.sampled_from([4, 8]))
    def test_label_components(self, backend, faults, connectivity):
        mask = _mask(faults)
        ops = _array_ops.get_backend(backend).ops()
        labels, count = ops.label_components(mask, connectivity)
        base_labels, base_count = NUMPY_OPS.label_components(mask, connectivity)
        assert count == base_count
        assert np.array_equal(labels, base_labels)
        components = find_components_bfs(sorted(faults), diagonal=connectivity == 8)
        assert count == len(components)
        for index, component in enumerate(components):
            for node in component.nodes:
                assert labels[node] == index + 1

    @settings(max_examples=60, deadline=None)
    @given(faults=fault_sets)
    def test_span_fill(self, backend, faults):
        mask = _mask(faults)
        ops = _array_ops.get_backend(backend).ops()
        filled = ops.span_fill(mask)
        assert np.array_equal(filled, NUMPY_OPS.span_fill(mask))
        expected = set()
        for x in range(WIDTH):
            ys = [y for (fx, y) in faults if fx == x]
            if ys:
                expected |= {(x, y) for y in range(min(ys), max(ys) + 1)}
        for y in range(WIDTH):
            xs = [x for (x, fy) in faults if fy == y]
            if xs:
                expected |= {(x, y) for x in range(min(xs), max(xs) + 1)}
        assert {tuple(c) for c in np.argwhere(filled)} == expected

    @settings(max_examples=60, deadline=None)
    @given(faults=fault_sets)
    def test_hull_fixpoint(self, backend, faults):
        mask = _mask(faults)
        ops = _array_ops.get_backend(backend).ops()
        hull = ops.hull_fixpoint(mask)
        assert np.array_equal(hull, NUMPY_OPS.hull_fixpoint(mask))
        expected = set(orthogonal_convex_hull_sets(faults))
        assert {tuple(c) for c in np.argwhere(hull)} == expected

    @settings(max_examples=60, deadline=None)
    @given(faults=fault_sets)
    def test_nonconvex_labels(self, backend, faults):
        mask = _mask(faults)
        labels, count = NUMPY_OPS.label_components(mask, 4)
        ops = _array_ops.get_backend(backend).ops()
        flagged = ops.nonconvex_labels(labels, count)
        base = NUMPY_OPS.nonconvex_labels(labels, count)
        # Values (not dtypes) are the contract: the loop kernel returns
        # int64, numpy's ``unique`` keeps the label dtype.
        assert flagged.tolist() == base.tolist()
        assert flagged.tolist() == sorted(flagged.tolist())
        flagged_set = set(flagged.tolist())
        for label in range(1, count + 1):
            region = {tuple(c) for c in np.argwhere(labels == label)}
            assert (label in flagged_set) == (not is_orthogonal_convex_sets(region))

    @settings(max_examples=60, deadline=None)
    @given(faults=fault_sets)
    def test_jump_tables(self, backend, faults):
        disabled = _mask(faults)
        ops = _array_ops.get_backend(backend).ops()
        tables = ops.jump_tables(disabled)
        base = NUMPY_OPS.jump_tables(disabled)
        for table, expected in zip(tables, base):
            assert table.dtype == np.int64
            assert np.array_equal(table, expected)
        east, west, north, south = tables
        for x in range(WIDTH):
            for y in range(WIDTH):
                blocked_east = [bx for (bx, by) in faults if by == y and bx > x]
                assert east[x, y] == (min(blocked_east) if blocked_east else WIDTH)
                blocked_west = [bx for (bx, by) in faults if by == y and bx < x]
                assert west[x, y] == (max(blocked_west) if blocked_west else -1)
                blocked_north = [by for (bx, by) in faults if bx == x and by > y]
                assert north[x, y] == (min(blocked_north) if blocked_north else WIDTH)
                blocked_south = [by for (bx, by) in faults if bx == x and by < y]
                assert south[x, y] == (max(blocked_south) if blocked_south else -1)

    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_grant_messages(self, backend, data):
        channels = 20
        active = np.array(
            sorted(data.draw(st.sets(st.integers(0, 99), max_size=30))),
            dtype=np.int64,
        )
        requested = np.array(
            data.draw(
                st.lists(
                    st.integers(0, channels - 1),
                    min_size=active.size,
                    max_size=active.size,
                )
            ),
            dtype=np.int64,
        )
        occupied = np.array(
            data.draw(
                st.lists(st.booleans(), min_size=channels, max_size=channels)
            ),
            dtype=bool,
        )
        ops = _array_ops.get_backend(backend).ops()
        granted = ops.grant_messages(requested, active, occupied)
        base = NUMPY_OPS.grant_messages(requested, active, occupied)
        assert granted.tolist() == base.tolist()
        lowest_bidder = {}
        for message, channel in zip(active.tolist(), requested.tolist()):
            if channel not in lowest_bidder or message < lowest_bidder[channel]:
                lowest_bidder[channel] = message
        expected = [
            lowest_bidder[channel]
            for channel in sorted(lowest_bidder)
            if not occupied[channel]
        ]
        assert granted.tolist() == expected


# -- end-to-end equivalence: routed batches and contention runs per backend -----------


class TestEndToEndEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(faults=fault_sets)
    def test_route_stats_identical_across_backends(self, faults):
        session = MeshSession(width=WIDTH, faults=sorted(faults))
        records = {}
        for backend in RUNNABLE:
            stats = session.route(
                "mfp",
                traffic="transpose",
                messages=150,
                seed=3,
                engine="batch",
                backend=backend,
            )
            records[backend] = (
                stats.attempted,
                stats.delivered,
                stats.failed,
                stats.total_hops,
                stats.total_detour,
                stats.minimal_routes,
                stats.abnormal_routes,
            )
        assert len(set(records.values())) == 1, records

    def test_simulate_fingerprint_identical_across_backends(self):
        from repro.faults.scenario import generate_scenario

        scenario = generate_scenario(num_faults=20, width=16, seed=4)
        session = MeshSession.from_scenario(scenario)
        fingerprints = set()
        for backend in RUNNABLE:
            stats = session.simulate(
                "mfp", load=0.05, cycles=48, seed=2, backend=backend
            )
            assert stats.backend == backend
            fingerprints.add(
                (
                    stats.delivery_fingerprint,
                    stats.attempted,
                    stats.delivered,
                    stats.total_latency,
                    stats.cycles_run,
                )
            )
        assert len(fingerprints) == 1


# -- registry / toggle machinery ------------------------------------------------------


class TestBackendRegistry:
    def test_registered_keys(self):
        assert set(_array_ops.backend_keys()) >= {"numpy", "numba", "loops", "cupy"}

    def test_status_reports_unconditional_backends(self):
        status = _array_ops.backend_status()
        assert status["numpy"] is True
        assert status["loops"] is True
        assert isinstance(status["numba"], bool)
        assert isinstance(status["cupy"], bool)

    def test_aliases_resolve(self):
        assert _array_ops.get_backend("np") is _array_ops.get_backend("numpy")
        assert _array_ops.get_backend("JIT") is _array_ops.get_backend("numba")
        assert _array_ops.get_backend("reference") is _array_ops.get_backend("loops")
        assert _array_ops.get_backend("gpu") is _array_ops.get_backend("cupy")

    def test_unknown_backend_raises_with_known_keys(self):
        with pytest.raises(KeyError, match="array backend"):
            _array_ops.get_backend("fortran")
        with pytest.raises(KeyError, match="numpy"):
            _array_ops.set_default_backend("fortran")

    def test_collision_rejected(self):
        spec = _array_ops.BackendSpec(
            key="numpy",
            label="dup",
            description="collides",
            loader=_array_ops._numpy_ops,
            probe=_array_ops._always(True),
        )
        with pytest.raises(ValueError, match="already registered"):
            _array_ops.register_backend(spec)

    def test_register_custom_backend(self):
        spec = _array_ops.BackendSpec(
            key="custom-test-backend",
            label="CT",
            description="registration smoke test",
            loader=_array_ops._loops_ops,
            probe=_array_ops._always(True),
            aliases=("ctb",),
        )
        _array_ops.register_backend(spec)
        try:
            assert _array_ops.get_backend("ctb") is spec
            with _array_ops.use_backend("custom-test-backend"):
                # The loader's key wins: provenance reports what ran.
                assert _array_ops.active_backend_key() == "loops"
        finally:
            del _array_ops._BACKENDS.specs["custom-test-backend"]
            del _array_ops._BACKENDS.aliases["ctb"]
            _array_ops._OPS_CACHE.pop("custom-test-backend", None)
            _array_ops._invalidate_active()

    def test_ops_are_memoised(self):
        spec = _array_ops.get_backend("loops")
        assert spec.ops() is spec.ops()


class TestBackendSwitch:
    def test_use_backend_restores_previous_state(self):
        initial = _array_ops.default_backend()
        with _array_ops.use_backend("loops"):
            assert _array_ops.default_backend() == "loops"
            assert _array_ops.active_backend_key() == "loops"
            with _array_ops.use_backend("numpy"):
                assert _array_ops.active_backend_key() == "numpy"
            assert _array_ops.default_backend() == "loops"
        assert _array_ops.default_backend() == initial

    def test_set_default_backend_returns_previous_and_canonicalises(self):
        previous = _array_ops.set_default_backend("reference")
        try:
            assert _array_ops.default_backend() == "loops"
        finally:
            assert _array_ops.set_default_backend(previous) == "loops"

    def test_auto_resolves_to_numpy(self):
        with _array_ops.use_backend("auto"):
            assert _array_ops.resolve_backend(None).key == "numpy"
            assert _array_ops.active_backend_key() == "numpy"

    def test_unavailable_backend_falls_back_to_numpy_ops(self):
        for key in ("numba", "cupy"):
            spec = _array_ops.get_backend(key)
            with _array_ops.use_backend(key):
                effective = _array_ops.active_backend_key()
                if spec.available() and key == "numba":
                    assert effective == "numba"
                else:
                    # cupy is a stub and numba may be missing: both resolve
                    # to the numpy ops, and stats say so.
                    assert effective == "numpy"
                    assert _array_ops.active_ops() is NUMPY_OPS

    def test_environment_variable_selects_backend(self):
        script = (
            "from repro import _array_ops\n"
            "assert _array_ops.default_backend() == 'loops'\n"
            "assert _array_ops.active_backend_key() == 'loops'\n"
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env={**_subprocess_env(), "REPRO_ARRAY_BACKEND": "loops"},
        )

    def test_import_repro_does_not_import_optional_backends(self):
        script = (
            "import sys\n"
            "import repro\n"
            "assert 'numba' not in sys.modules\n"
            "assert 'cupy' not in sys.modules\n"
            "status = repro.array_backends()\n"
            "assert status['numpy'] and status['loops']\n"
        )
        subprocess.run(
            [sys.executable, "-c", script], check=True, env=_subprocess_env()
        )


class TestStatsProvenance:
    def test_route_records_effective_backend(self):
        # The ambient default may itself be forced (CI runs this suite
        # under REPRO_ARRAY_BACKEND=loops), so derive the expectation
        # from the registry rather than hard-coding numpy.
        ambient = _array_ops.active_ops().key
        session = MeshSession(width=10, faults=[(2, 2), (2, 3), (7, 7)])
        stats = session.route("mfp", messages=50, seed=0, backend="loops")
        assert stats.backend == "loops"
        assert session.cache_info["array_backend"] == "loops"
        stats = session.route("mfp", messages=50, seed=0)
        assert stats.backend == ambient
        assert session.cache_info["array_backend"] == ambient

    def test_numba_selection_reports_what_actually_ran(self):
        session = MeshSession(width=10, faults=[(4, 4), (4, 5)])
        stats = session.route("mfp", messages=40, seed=1, backend="numba")
        expected = (
            "numba" if _array_ops.get_backend("numba").available() else "numpy"
        )
        assert stats.backend == expected

    def test_session_cache_info_seeds_ambient_backend(self):
        session = MeshSession(width=8)
        assert (
            session.routing.session.cache_info["array_backend"]
            == _array_ops.active_backend_key()
        )


def _subprocess_env():
    import os

    env = dict(os.environ)
    env.pop("REPRO_ARRAY_BACKEND", None)
    src = str(__import__("pathlib").Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env
