"""Differential tests of incremental engine deltas and fault repair.

``apply_fault_delta`` / ``transplant_engine_state`` re-derive only the
rows, columns and regions a fault update touched; the full rebuild is the
oracle.  The Hypothesis suites here assert the two are bit-identical --
at the jump-table level on random mask edits, and end-to-end through
``MeshSession`` routing stats for random fault/repair sequences on mesh
and torus, both engines, numpy and loops backends.  The repair path
(``remove_faults``) is itself differential-tested against one-shot
component discovery and fresh-session builds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    MeshSession,
    engine_deltas_enabled,
    set_engine_deltas,
    use_backend,
    use_engine_deltas,
)
from repro.core.components import find_components
from repro.faults.scenario import FaultScenario, generate_scenario
from repro.mesh.topology import Mesh2D
from repro.routing.engine import JumpTables, PackedRings, transplant_engine_state
from repro.routing.extended_ecube import ExtendedECubeRouter

STATS_FIELDS = (
    "attempted",
    "delivered",
    "failed",
    "total_hops",
    "total_detour",
    "minimal_routes",
    "abnormal_routes",
)

coords10 = st.tuples(st.integers(0, 9), st.integers(0, 9))


def fingerprint(stats):
    return tuple(getattr(stats, field) for field in STATS_FIELDS)


class TestDeltaToggle:
    def test_default_follows_environment(self):
        import os

        expected = os.environ.get("REPRO_ENGINE_DELTAS", "1").strip().lower() not in (
            "0",
            "false",
            "off",
            "no",
        )
        assert engine_deltas_enabled() == expected

    def test_set_returns_previous(self):
        original = engine_deltas_enabled()
        previous = set_engine_deltas(False)
        try:
            assert previous == original
            assert not engine_deltas_enabled()
        finally:
            set_engine_deltas(original)

    def test_context_manager_restores(self):
        original = engine_deltas_enabled()
        with use_engine_deltas(False):
            assert not engine_deltas_enabled()
        with use_engine_deltas(True):
            assert engine_deltas_enabled()
        assert engine_deltas_enabled() == original


class TestJumpTableDelta:
    @given(
        st.integers(3, 16),
        st.integers(3, 16),
        st.sets(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=24),
        st.sets(st.tuples(st.integers(0, 15), st.integers(0, 15)), min_size=1, max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_delta_matches_full_rebuild(self, width, height, disabled, flips):
        before = np.zeros((width, height), dtype=bool)
        for x, y in disabled:
            before[x % width, y % height] = True
        after = before.copy()
        for x, y in flips:
            after[x % width, y % height] ^= True
        changed_x, changed_y = np.nonzero(before != after)
        patched = JumpTables.from_disabled(before).apply_fault_delta(
            after, changed_x, changed_y
        )
        full = JumpTables.from_disabled(after)
        for field in ("east", "west", "north", "south"):
            assert np.array_equal(getattr(patched, field), getattr(full, field))

    def test_empty_delta_is_identity(self):
        disabled = np.zeros((5, 5), dtype=bool)
        disabled[2, 2] = True
        tables = JumpTables.from_disabled(disabled)
        patched = tables.apply_fault_delta(
            disabled, np.empty(0, np.int64), np.empty(0, np.int64)
        )
        for field in ("east", "west", "north", "south"):
            assert np.array_equal(getattr(patched, field), getattr(tables, field))


class TestTransplant:
    def test_unchanged_mask_reuses_tables(self):
        # (3, 2) is the concave fill of the {(2, 2), (4, 2), (3, 3)}
        # component's MFP polygon: faulting it changes the fault set but
        # not the disabled mask, so the transplant reuses the tables
        # object as-is.
        with use_engine_deltas(True):
            session = MeshSession(width=12, faults=[(2, 2), (4, 2), (3, 3)])
            router_a = session.router("extended-ecube", "mfp")
            tables = router_a.jump_tables()
            assert (3, 2) in session.build("mfp").disabled_set()
            session.add_faults([(3, 2)])
            router_b = session.router("extended-ecube", "mfp")
            assert router_b is not router_a
            assert router_b.jump_tables() is tables

    def test_transplant_counts_in_cache_info(self):
        with use_engine_deltas(True):
            session = MeshSession(width=16, faults=[(2, 2), (2, 3), (10, 10)])
            session.route("mfp", messages=50, seed=0, engine="batch")
            before = dict(session.cache_info)
            session.add_faults([(12, 12)])
            session.route("mfp", messages=50, seed=0, engine="batch")
            after = session.cache_info
            assert after["delta_applies"] == before["delta_applies"] + 1
            assert after["jump_rebuilds"] == before["jump_rebuilds"]

    def test_disabled_toggle_rebuilds_fully(self):
        session = MeshSession(width=16, faults=[(2, 2), (2, 3), (10, 10)])
        with use_engine_deltas(False):
            session.route("mfp", messages=50, seed=0, engine="batch")
            session.add_faults([(12, 12)])
            session.route("mfp", messages=50, seed=0, engine="batch")
        assert session.cache_info["delta_applies"] == 0
        assert session.cache_info["jump_rebuilds"] == 2

    def test_mismatched_shapes_not_transplanted(self):
        small = MeshSession(width=8, faults=[(1, 1)]).router("extended-ecube", "mfp")
        large = MeshSession(width=9, faults=[(1, 1)]).router("extended-ecube", "mfp")
        small.jump_tables()
        assert transplant_engine_state(small, large) is False


def _churn_stats(scenario, events, *, torus, engine, deltas):
    """Route after every churn event; return the stats fingerprints."""
    with use_engine_deltas(deltas):
        session = MeshSession.from_scenario(scenario)
        fingerprints = []
        for index, (kind, nodes) in enumerate(events):
            if kind == "add":
                session.add_faults(nodes)
            else:
                session.remove_faults(nodes)
            stats = session.route(
                "mfp",
                traffic="uniform",
                messages=80,
                seed=100 + index,
                router="extended-ecube",
                engine=engine,
            )
            fingerprints.append(fingerprint(stats))
        return fingerprints, dict(session.cache_info)


churn_events = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.lists(coords10, min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=4,
)


class TestSessionDeltaDifferential:
    @pytest.mark.parametrize("torus", [False, True])
    @pytest.mark.parametrize("engine", ["batch", "scalar"])
    @given(seed=st.integers(0, 10_000), events=churn_events)
    @settings(max_examples=15, deadline=None)
    def test_delta_equals_rebuild(self, torus, engine, seed, events):
        scenario = generate_scenario(
            num_faults=8, width=10, model="clustered", seed=seed, torus=torus
        )
        with_deltas, info_deltas = _churn_stats(
            scenario, events, torus=torus, engine=engine, deltas=True
        )
        without, info_rebuild = _churn_stats(
            scenario, events, torus=torus, engine=engine, deltas=False
        )
        assert with_deltas == without
        assert info_rebuild["delta_applies"] == 0

    @pytest.mark.parametrize("backend", ["numpy", "loops"])
    def test_delta_equals_rebuild_across_backends(self, backend):
        scenario = generate_scenario(num_faults=10, width=10, model="clustered", seed=3)
        events = [
            ("add", [(2, 2), (2, 3)]),
            ("remove", [(2, 2)]),
            ("add", [(7, 7)]),
        ]
        with use_backend(backend):
            with_deltas, _ = _churn_stats(
                scenario, events, torus=False, engine="batch", deltas=True
            )
            without, _ = _churn_stats(
                scenario, events, torus=False, engine="batch", deltas=False
            )
        assert with_deltas == without


class TestRemoveFaults:
    @given(
        seed=st.integers(0, 10_000),
        events=st.lists(
            st.tuples(
                st.sampled_from(["add", "remove"]),
                st.lists(coords10, min_size=1, max_size=5),
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_matches_one_shot_discovery(self, seed, events):
        session = MeshSession(width=10)
        current = set()
        for kind, nodes in events:
            if kind == "add":
                session.add_faults(nodes)
                current |= set(nodes)
            else:
                session.remove_faults(nodes)
                current -= set(nodes)
            assert set(session.faults) == current
            ours = sorted(component.nodes for component in session.components())
            reference = sorted(
                component.nodes for component in find_components(sorted(current))
            )
            assert ours == reference

    def test_split_component_rebuilds_matching_fresh(self):
        # A bridge node whose removal splits one component into two.
        session = MeshSession(width=12, faults=[(2, 2), (3, 3), (4, 4)])
        assert len(session.components()) == 1
        session.remove_faults([(3, 3)])
        assert len(session.components()) == 2
        fresh = MeshSession(width=12, faults=[(2, 2), (4, 4)])
        assert session.build("mfp").disabled_set() == fresh.build("mfp").disabled_set()
        assert session.build("dmfp").disabled_set() == fresh.build("dmfp").disabled_set()

    def test_remove_unknown_returns_empty(self):
        session = MeshSession(width=8, faults=[(1, 1)])
        version = session.version
        assert session.remove_faults([(5, 5)]) == []
        assert session.version == version

    def test_remove_validates_bounds(self):
        session = MeshSession(width=8)
        with pytest.raises(ValueError):
            session.remove_faults([(99, 0)])


class TestLinkFaultWiring:
    def test_add_link_faults_maps_to_lower_endpoint(self):
        session = MeshSession(width=8)
        added = session.add_link_faults([((2, 2), (2, 3)), ((5, 5), (6, 5))])
        assert added == [(2, 2), (5, 5)]
        assert session.fault_set() == {(2, 2), (5, 5)}

    def test_existing_fault_absorbs_link(self):
        session = MeshSession(width=8, faults=[(4, 4)])
        assert session.add_link_faults([((4, 4), (4, 5))]) == []

    def test_prefer_upper_endpoint(self):
        session = MeshSession(width=8)
        assert session.add_link_faults([((2, 2), (2, 3))], prefer_lower=False) == [
            (2, 3)
        ]

    def test_non_adjacent_link_rejected(self):
        session = MeshSession(width=8)
        with pytest.raises(ValueError):
            session.add_link_faults([((0, 0), (3, 0))])

    def test_scenario_link_faults_applied(self):
        base = generate_scenario(num_faults=4, width=10, seed=2)
        scenario = FaultScenario(
            width=base.width,
            height=base.height,
            model=base.model,
            seed=base.seed,
            faults=base.faults,
            link_faults=(((0, 0), (0, 1)), ((6, 6), (7, 6))),
        )
        session = MeshSession.from_scenario(scenario)
        manual = MeshSession(width=10, faults=base.faults)
        manual.add_link_faults(scenario.link_faults)
        assert session.fault_set() == manual.fault_set()
        assert "link faults" in scenario.describe()


class TestPackedRingsAppend:
    """The incremental append path must be bit-identical to a rebuild."""

    ARRAYS = (
        "ring_x",
        "ring_y",
        "valid",
        "off_mesh",
        "geo_bits",
        "entry_keys",
        "entry_positions",
    )

    @staticmethod
    def _router(width=16, count=10, seed=7):
        rng = np.random.default_rng(seed)
        regions, used = [], set()
        while len(regions) < count:
            x = int(rng.integers(1, width - 2))
            y = int(rng.integers(1, width - 1))
            cells = {(x, y), (x + 1, y)}
            if cells & used:
                continue
            used |= cells
            regions.append(sorted(cells))
        return ExtendedECubeRouter(Mesh2D(width, width), regions)

    def _encounter(self, router, batches, force_rebuild=False):
        rings = PackedRings(router)
        for batch in batches:
            if force_rebuild:
                rings._dirty = True
            rings.ensure(router, np.asarray(batch))
        return rings

    def _assert_identical(self, left, right):
        for name in self.ARRAYS:
            assert np.array_equal(getattr(left, name), getattr(right, name)), name

    def test_progressive_append_matches_full_rebuild(self):
        router = self._router()
        batches = [[index] for index in range(10)]
        appended = self._encounter(router, batches)
        rebuilt = self._encounter(router, batches, force_rebuild=True)
        self._assert_identical(appended, rebuilt)

    def test_multi_region_batches_match(self):
        router = self._router()
        batches = [[0, 3], [1], [2, 4, 5], [6], [7, 8, 9], [3, 0]]
        appended = self._encounter(router, batches)
        rebuilt = self._encounter(router, batches, force_rebuild=True)
        self._assert_identical(appended, rebuilt)

    def test_append_after_fault_delta_rebuild(self):
        router = self._router()
        rings = self._encounter(router, [[index] for index in range(6)])
        rings._dirty = True  # what apply_fault_delta leaves behind
        rings.ensure(router, np.asarray([6]))
        rings.ensure(router, np.asarray([7]))  # back on the append path
        oracle = self._encounter(
            router, [[index] for index in range(8)], force_rebuild=True
        )
        self._assert_identical(rings, oracle)
