"""Unit tests for the link-fault model (repro.faults.links)."""

import pytest

from repro.core.faulty_block import build_faulty_blocks
from repro.faults.links import (
    canonical_link,
    isolated_by_link_faults,
    links_to_node_faults,
    make_link_fault_set,
)
from repro.mesh.topology import Mesh2D


@pytest.fixture
def mesh():
    return Mesh2D(6, 6)


class TestLinkFaultSet:
    def test_canonical_link_is_order_independent(self):
        assert canonical_link((1, 1), (1, 2)) == canonical_link((1, 2), (1, 1))

    def test_non_adjacent_link_rejected(self, mesh):
        with pytest.raises(ValueError):
            make_link_fault_set(mesh, [((0, 0), (2, 0))])

    def test_is_faulty_and_counts(self, mesh):
        faults = make_link_fault_set(mesh, [((1, 1), (1, 2)), ((3, 3), (4, 3))])
        assert faults.num_links == 2
        assert faults.is_faulty((1, 2), (1, 1))
        assert not faults.is_faulty((0, 0), (0, 1))

    def test_degraded_degree(self, mesh):
        faults = make_link_fault_set(mesh, [((2, 2), (2, 3)), ((2, 2), (3, 2))])
        assert faults.degraded_degree((2, 2)) == 2
        assert faults.degraded_degree((5, 5)) == 2  # corner, both links healthy


class TestIsolation:
    def test_fully_cut_off_node_is_isolated(self, mesh):
        links = [((0, 0), (1, 0)), ((0, 0), (0, 1))]
        faults = make_link_fault_set(mesh, links)
        assert isolated_by_link_faults(faults) == {(0, 0)}

    def test_partially_cut_node_is_not_isolated(self, mesh):
        faults = make_link_fault_set(mesh, [((0, 0), (1, 0))])
        assert isolated_by_link_faults(faults) == set()


class TestMapping:
    def test_one_endpoint_per_link(self, mesh):
        faults = make_link_fault_set(mesh, [((2, 2), (2, 3))])
        assert links_to_node_faults(faults) == [(2, 2)]
        assert links_to_node_faults(faults, prefer_lower=False) == [(2, 3)]

    def test_existing_faults_absorb_links(self, mesh):
        faults = make_link_fault_set(mesh, [((2, 2), (2, 3))])
        mapped = links_to_node_faults(faults, existing_node_faults=[(2, 3)])
        assert mapped == [(2, 3)]

    def test_every_faulty_link_has_a_faulty_endpoint(self, mesh):
        links = [((2, 2), (2, 3)), ((2, 2), (3, 2)), ((2, 2), (1, 2))]
        faults = make_link_fault_set(mesh, links)
        mapped = set(links_to_node_faults(faults))
        # The greedy mapping always produces a cover of the faulty links and
        # never needs more nodes than there are links.
        assert all(a in mapped or b in mapped for a, b in faults.links)
        assert len(mapped) <= faults.num_links

    def test_isolated_nodes_always_included(self, mesh):
        links = [((0, 0), (1, 0)), ((0, 0), (0, 1))]
        faults = make_link_fault_set(mesh, links)
        assert (0, 0) in links_to_node_faults(faults)

    def test_mapped_faults_feed_the_constructions(self, mesh):
        links = [((2, 2), (2, 3)), ((3, 3), (3, 4)), ((4, 2), (5, 2))]
        node_faults = links_to_node_faults(make_link_fault_set(mesh, links))
        construction = build_faulty_blocks(node_faults, topology=mesh)
        assert set(node_faults) <= construction.grid.disabled_set()
        assert construction.all_rectangular()
