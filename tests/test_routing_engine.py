"""Differential and property tests of the batch routing engine.

The batch engine of :mod:`repro.routing.engine` must be *bit-identical*
to the scalar router: same per-message delivered flag, hop count,
abnormal-hop count and failure reason, and therefore identical
:class:`~repro.routing.stats.RoutingStats` aggregates, for every traffic
pattern, topology and fault scenario.  The Hypothesis suites here assert
exactly that, on both mask-kernel paths; deterministic regressions pin
the border-hugging / opposite-orientation-retry traversals and the
engine-selection rules.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import MeshSession, SweepExecutor
from repro.core.mfp import build_minimum_polygons
from repro.faults.scenario import generate_scenario
from repro.geometry import masks
from repro.mesh.topology import Mesh2D, Torus2D
from repro.routing.engine import (
    DELIVERED,
    REASONS,
    JumpTables,
    RegionRingCache,
    available_engines,
    default_engine,
    engine_keys,
    get_engine,
    route_batch,
    set_default_engine,
    supports_router,
    use_engine,
)
from repro.routing.extended_ecube import ExtendedECubeRouter
from repro.routing.registry import get_router
from repro.routing.traffic import TrafficBatch, TrafficContext, get_traffic, traffic_keys

coords12 = st.tuples(st.integers(0, 11), st.integers(0, 11))
fault_sets = st.sets(coords12, min_size=0, max_size=16)

STATS_FIELDS = (
    "attempted",
    "delivered",
    "failed",
    "total_hops",
    "total_detour",
    "minimal_routes",
    "abnormal_routes",
)


def stats_fingerprint(stats):
    return tuple(getattr(stats, field) for field in STATS_FIELDS)


def assert_batch_matches_scalar(router, batch, **route_batch_kwargs):
    """Per-message differential: kernel outcome == scalar route outcome."""
    outcome = route_batch(router, batch, **route_batch_kwargs)
    scalar_reasons = Counter()
    for index, (source, destination) in enumerate(batch.pairs()):
        result = router.route(source, destination)
        delivered = bool(outcome.status[index] == DELIVERED)
        assert result.delivered == delivered, (source, destination)
        if result.delivered:
            assert result.hops == outcome.hops[index], (source, destination)
            assert result.abnormal_hops == outcome.abnormal_hops[index], (
                source,
                destination,
            )
        else:
            scalar_reasons[result.reason] += 1
            assert result.reason == REASONS[int(outcome.status[index])], (
                source,
                destination,
            )
        counts = router.route_counts(source, destination)
        assert counts == (
            result.delivered,
            result.hops,
            result.abnormal_hops,
            result.reason,
        ), (source, destination)
    assert outcome.reason_counts() == dict(scalar_reasons)
    return outcome


class TestEngineRegistry:
    def test_builtin_keys_and_aliases(self):
        assert engine_keys() == ("scalar", "batch")
        assert get_engine("batch") is get_engine("vectorized")
        assert get_engine("SCALAR").key == "scalar"
        assert [spec.key for spec in available_engines()] == ["scalar", "batch"]

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            get_engine("quantum")

    def test_supports_router_is_exact_type(self):
        session = MeshSession(width=8, faults=[(3, 3)])
        assert supports_router(session.router())
        assert supports_router(session.router("ecube"))

        class Custom(ExtendedECubeRouter):
            def route(self, source, destination):  # pragma: no cover
                raise NotImplementedError

        assert not supports_router(Custom(Mesh2D(8, 8), []))


class TestEngineSwitch:
    def test_default_honours_environment(self):
        import os

        configured = os.environ.get("REPRO_ROUTE_ENGINE", "auto")
        assert default_engine() == configured.strip().lower().replace("_", "-")

    def test_use_engine_forces_scalar(self):
        session = MeshSession(width=10, faults=[(4, 4), (4, 5)])
        with use_engine("auto"):
            assert session.route("mfp", messages=20).engine == "batch"
            with use_engine("scalar"):
                assert session.route("mfp", messages=20, seed=1).engine == "scalar"
            assert session.route("mfp", messages=20, seed=2).engine == "batch"

    def test_ambient_batch_falls_back_for_deadlock_check(self):
        session = MeshSession(width=10, faults=[(4, 4)])
        with use_engine("batch"):
            stats = session.route("mfp", messages=15, check_deadlock=True)
        assert stats.engine == "scalar"
        assert stats.deadlock_free() in (True, False)

    def test_set_default_engine_validates(self):
        with pytest.raises(KeyError):
            set_default_engine("warp")
        previous = set_default_engine("lockstep")  # batch alias
        try:
            assert default_engine() == "batch"
        finally:
            set_default_engine(previous)

    def test_env_switch_mirrors_mask_kernel(self):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["REPRO_ROUTE_ENGINE"] = "scalar"
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.routing.engine import default_engine; "
            "print(default_engine())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=env
        )
        assert out.stdout.strip() == "scalar"


class TestEngineSelection:
    @pytest.fixture
    def session(self):
        scenario = generate_scenario(
            num_faults=30, width=14, model="clustered", seed=3
        )
        return MeshSession.from_scenario(scenario)

    def test_auto_picks_batch_without_results(self, session):
        with use_engine("auto"):
            assert session.route("mfp", messages=40).engine == "batch"

    def test_collect_results_forces_scalar(self, session):
        stats = session.route("mfp", messages=40, collect_results=True)
        assert stats.engine == "scalar"
        assert len(stats.results) == stats.attempted

    def test_explicit_batch_with_results_raises(self, session):
        with pytest.raises(ValueError, match="engine 'batch'"):
            session.route("mfp", messages=10, engine="batch", collect_results=True)

    def test_explicit_engines_are_bit_identical(self, session):
        scalar = session.route("mfp", messages=300, seed=9, engine="scalar")
        batch = session.route("mfp", messages=300, seed=9, engine="batch")
        assert scalar.engine == "scalar" and batch.engine == "batch"
        assert stats_fingerprint(scalar) == stats_fingerprint(batch)
        assert scalar.enabled == batch.enabled

    def test_custom_router_falls_back_to_scalar(self, session):
        from repro.routing.registry import RouterSpec, register_router

        class Custom(ExtendedECubeRouter):
            pass

        spec = RouterSpec(
            key="custom-engine-test",
            label="CT",
            description="subclassed router for engine fallback test",
            builder=lambda topology, regions, region_index, options: Custom(
                topology, regions, region_index=region_index
            ),
        )
        register_router(spec, replace=True)
        stats = session.route("mfp", messages=20, router="custom-engine-test")
        assert stats.engine == "scalar"
        with pytest.raises(ValueError, match="cannot serve"):
            session.route(
                "mfp", messages=20, router="custom-engine-test", engine="batch"
            )


class TestJumpTables:
    @settings(max_examples=25, deadline=None)
    @given(fault_sets)
    def test_tables_match_bruteforce(self, faults):
        disabled = np.zeros((12, 12), dtype=bool)
        for x, y in faults:
            disabled[x, y] = True
        tables = JumpTables.from_disabled(disabled)
        for x in range(12):
            for y in range(12):
                east = next((i for i in range(x + 1, 12) if disabled[i, y]), 12)
                west = next((i for i in range(x - 1, -1, -1) if disabled[i, y]), -1)
                north = next((j for j in range(y + 1, 12) if disabled[x, j]), 12)
                south = next((j for j in range(y - 1, -1, -1) if disabled[x, j]), -1)
                assert tables.east[x, y] == east
                assert tables.west[x, y] == west
                assert tables.north[x, y] == north
                assert tables.south[x, y] == south


class TestBatchDifferential:
    """The heart of the suite: batch == scalar on randomized scenarios."""

    @settings(max_examples=15, deadline=None)
    @given(fault_sets, st.integers(0, 2**31 - 1), st.booleans())
    @pytest.mark.parametrize("traffic", sorted(traffic_keys()))
    def test_patterns_mesh_and_torus(self, traffic, faults, seed, torus):
        topology = Torus2D(12, 12) if torus else Mesh2D(12, 12)
        construction = build_minimum_polygons(
            sorted(faults), topology=topology, compute_rounds=False
        )
        router = get_router("extended-ecube").build(construction)
        context = TrafficContext.from_router(router)
        batch = get_traffic(traffic).generate(context, 50, seed=seed)
        # scalar_finish=0 keeps the whole batch on the lockstep kernel, so
        # small Hypothesis batches exercise it rather than the scalar tail.
        assert_batch_matches_scalar(router, batch, scalar_finish=0)

    @settings(max_examples=20, deadline=None)
    @given(fault_sets, st.integers(0, 2**31 - 1))
    def test_default_hybrid_and_ecube(self, faults, seed):
        construction = build_minimum_polygons(
            sorted(faults), topology=Mesh2D(12, 12), compute_rounds=False
        )
        for key in ("extended-ecube", "ecube"):
            router = get_router(key).build(construction)
            context = TrafficContext.from_router(router)
            batch = get_traffic("uniform").generate(context, 40, seed=seed)
            assert_batch_matches_scalar(router, batch)

    @settings(max_examples=10, deadline=None)
    @given(fault_sets, st.integers(1, 40), st.integers(0, 2**31 - 1))
    def test_tight_hop_budgets(self, faults, max_hops, seed):
        construction = build_minimum_polygons(
            sorted(faults), topology=Mesh2D(12, 12), compute_rounds=False
        )
        router = get_router("extended-ecube").build(construction, max_hops=max_hops)
        context = TrafficContext.from_router(router)
        batch = get_traffic("uniform").generate(context, 40, seed=seed)
        assert_batch_matches_scalar(router, batch, scalar_finish=0)

    @settings(max_examples=10, deadline=None)
    @given(fault_sets, st.integers(0, 2**31 - 1))
    def test_mask_kernel_off_path(self, faults, seed):
        with masks.use_kernel(False):
            construction = build_minimum_polygons(
                sorted(faults), topology=Mesh2D(12, 12), compute_rounds=False
            )
            router = get_router("extended-ecube").build(construction)
            context = TrafficContext.from_router(router)
            batch = get_traffic("uniform").generate(context, 40, seed=seed)
            assert_batch_matches_scalar(router, batch, scalar_finish=0)

    def test_session_stats_identical_across_engines_all_patterns(self):
        scenario = generate_scenario(
            num_faults=45, width=16, model="clustered", seed=5
        )
        for torus in (False, True):
            scenario = generate_scenario(
                num_faults=45, width=16, model="clustered", seed=5, torus=torus
            )
            session = MeshSession.from_scenario(scenario)
            for traffic in traffic_keys():
                scalar = session.route(
                    "mfp", traffic=traffic, messages=200, seed=11, engine="scalar"
                )
                batch = session.route(
                    "mfp", traffic=traffic, messages=200, seed=11, engine="batch"
                )
                assert stats_fingerprint(scalar) == stats_fingerprint(batch), traffic


class TestTraversalRegressions:
    def test_border_hugging_region_retries_opposite_orientation(self):
        # A region glued to the west border: the clockwise walk of an
        # NS/SN-bound message steps off the mesh at x=-1, so the scalar
        # retries counter-clockwise -- the batch kernel must do the same.
        region = [(0, 4), (0, 5), (1, 4), (1, 5)]
        router = ExtendedECubeRouter(Mesh2D(10, 10), [region])
        batch = TrafficBatch(
            np.array([0, 0]), np.array([1, 8]), np.array([0, 0]), np.array([8, 1])
        )
        outcome = assert_batch_matches_scalar(router, batch, scalar_finish=0)
        assert outcome.delivered.all()
        assert (outcome.abnormal_hops > 0).any()

    def test_all_four_borders(self):
        topology = Mesh2D(9, 9)
        for region in (
            [(0, 4)],  # west border
            [(8, 4)],  # east border
            [(4, 0)],  # south border
            [(4, 8)],  # north border
        ):
            router = ExtendedECubeRouter(topology, [region])
            context = TrafficContext.from_router(router)
            batch = get_traffic("uniform").generate(context, 120, seed=0)
            assert_batch_matches_scalar(router, batch, scalar_finish=0)

    def test_obstructed_traversal_reason_matches(self):
        # Two regions one lane apart: circling the first runs into the
        # second, so both orientations fail and the scalar reports the
        # second traversal's reason.
        regions = [[(4, 3), (4, 4), (4, 5)], [(6, 3), (6, 4), (6, 5)]]
        router = ExtendedECubeRouter(Mesh2D(11, 11), regions)
        batch = TrafficBatch(
            np.array([3, 0]), np.array([4, 4]), np.array([5, 10]), np.array([4, 4])
        )
        assert_batch_matches_scalar(router, batch, scalar_finish=0)

    def test_empty_batch_and_self_messages(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [[(3, 3)]])
        empty = TrafficBatch.empty()
        assert len(route_batch(router, empty)) == 0
        loops = TrafficBatch(
            np.array([1, 5]), np.array([1, 5]), np.array([1, 5]), np.array([1, 5])
        )
        outcome = assert_batch_matches_scalar(router, loops, scalar_finish=0)
        assert outcome.delivered.all()
        assert (outcome.hops == 0).all()

    def test_disabled_endpoints(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [[(3, 3), (5, 5)]])
        batch = TrafficBatch(
            np.array([3, 0, 3]),
            np.array([3, 0, 3]),
            np.array([0, 5, 5]),
            np.array([0, 5, 5]),
        )
        outcome = assert_batch_matches_scalar(router, batch, scalar_finish=0)
        assert outcome.reason_counts() == {
            "source disabled": 2,
            "destination disabled": 1,
        }


class TestRegionRingCache:
    def test_rings_reused_across_rebuilds(self):
        session = MeshSession(width=24, faults=[(3, 3), (3, 4), (18, 18)])
        session.route("mfp", messages=150, seed=0)
        misses = session.cache_info["ring_misses"]
        assert misses > 0
        # A far-away fault leaves the existing regions' node sets intact:
        # the rebuilt router must reuse their ring geometry.
        session.add_faults([(10, 20)])
        session.route("mfp", messages=150, seed=0)
        assert session.cache_info["ring_hits"] > 0
        cache = session.routing.ring_cache
        assert len(cache) >= misses

    def test_geometry_identity_shared(self):
        session = MeshSession(width=16, faults=[(5, 5), (5, 6)])
        router_a = session.router()
        router_a.route((4, 2), (4, 9))  # resolve the ring lazily
        before = router_a.region_geometry(0)
        session.add_faults([(12, 12)])
        router_b = session.router()
        router_b.route((4, 2), (4, 9))
        index = router_b.region_of((5, 5))
        assert router_b.region_geometry(index) is before

    def test_lru_eviction_bounds_entries(self):
        cache = RegionRingCache(max_entries=2)
        for nodes in ([(0, 0)], [(1, 1)], [(2, 2)]):
            cache.geometry(frozenset(nodes))
        assert len(cache) == 2
        assert cache.misses == 3


class TestSweepAndCLI:
    def test_routing_sweep_engine_choice_is_bit_identical(self):
        kwargs = dict(
            fault_counts=[12, 25],
            trials=2,
            width=14,
            distribution="clustered",
            traffic="transpose",
            messages=60,
        )
        executor = SweepExecutor(models=("fb", "mfp"))
        scalar_points = executor.run_routing(engine="scalar", **kwargs)
        batch_points = executor.run_routing(engine="batch", **kwargs)
        for scalar_point, batch_point in zip(scalar_points, batch_points):
            assert scalar_point.models() == batch_point.models()
            for model in scalar_point.models():
                for metric in ("delivery_rate", "mean_hops", "mean_detour"):
                    assert scalar_point.mean(model, metric) == batch_point.mean(
                        model, metric
                    )

    def test_plan_routing_validates_and_carries_engine(self):
        import pickle

        executor = SweepExecutor(models=("mfp",))
        with pytest.raises(KeyError):
            executor.plan_routing([10], 1, engine="warpdrive")
        specs = executor.plan_routing([10], 1, engine="lockstep")
        assert specs[0].engine == "batch"
        # The resolved spec rides along (like router/traffic specs) so
        # spawn-started workers can re-register custom engines -- which
        # requires the trial spec to survive pickling.
        assert specs[0].engine_spec is get_engine("batch")
        assert pickle.loads(pickle.dumps(specs[0])).engine == "batch"
        default = executor.plan_routing([10], 1)[0]
        assert default.engine is None and default.engine_spec is None

    def test_cli_route_engine_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "route",
                    "--faults", "15", "--width", "12", "--messages", "40",
                    "--engine", "batch",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine: batch" in out

    def test_cli_sweep_routing_engine_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "sweep",
                    "--width", "12", "--fault-counts", "6", "--trials", "1",
                    "--routing", "--messages", "30", "--engine", "scalar",
                ]
            )
            == 0
        )
        assert "delivery_rate" in capsys.readouterr().out
