"""Integration tests for the distributed MFP construction (DMFP)."""


from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import (
    build_distributed_for_scenario,
    build_minimum_polygons_distributed,
)
from repro.faults.scenario import generate_scenario
from repro.types import FaultRegionModel


class TestDistributedConstruction:
    def test_no_faults(self):
        result = build_minimum_polygons_distributed([], width=10)
        assert result.regions == []
        assert result.rounds == 0

    def test_model_tag(self):
        result = build_minimum_polygons_distributed([(1, 1)], width=8)
        assert result.model is FaultRegionModel.MINIMUM_FAULTY_POLYGON

    def test_matches_centralized_construction(self):
        for seed in range(6):
            scenario = generate_scenario(
                num_faults=90, width=25, model="clustered", seed=seed
            )
            topology = scenario.topology()
            centralized = build_minimum_polygons(
                scenario.faults, topology=topology, compute_rounds=False
            )
            distributed = build_distributed_for_scenario(scenario)
            assert distributed.grid.disabled_set() == centralized.grid.disabled_set()

    def test_matches_centralized_on_random_distribution(self):
        for seed in range(4):
            scenario = generate_scenario(num_faults=60, width=20, seed=seed)
            topology = scenario.topology()
            centralized = build_minimum_polygons(
                scenario.faults, topology=topology, compute_rounds=False
            )
            distributed = build_distributed_for_scenario(scenario)
            assert distributed.grid.disabled_set() == centralized.grid.disabled_set()

    def test_regions_are_orthogonal_convex(self):
        scenario = generate_scenario(num_faults=110, width=30, model="clustered", seed=3)
        result = build_distributed_for_scenario(scenario)
        assert result.all_orthogonal_convex()

    def test_rounds_exceed_centralized_but_track_component_size(self):
        # The boundary ring has to circle every component, so DMFP always
        # needs at least as many rounds as the per-component labelling
        # emulation; both are independent of the whole-network block size.
        for seed in range(3):
            scenario = generate_scenario(
                num_faults=80, width=25, model="clustered", seed=seed
            )
            topology = scenario.topology()
            centralized = build_minimum_polygons(scenario.faults, topology=topology)
            distributed = build_distributed_for_scenario(scenario)
            assert distributed.rounds >= centralized.rounds

    def test_rounds_smaller_than_fp_at_paper_scale(self):
        # The headline claim of Figure 11: at the paper's scale (100x100
        # mesh, 800 random faults) the distributed MFP construction needs
        # fewer rounds on average than the whole-network FP labelling,
        # because its rings only circle the small components while FP's
        # labelling spans the large merged faulty blocks.
        fp_rounds, dmfp_rounds = [], []
        for seed in range(3):
            scenario = generate_scenario(num_faults=800, width=100, seed=seed)
            topology = scenario.topology()
            fp_rounds.append(
                build_sub_minimum_polygons(scenario.faults, topology=topology).rounds
            )
            dmfp_rounds.append(build_distributed_for_scenario(scenario).rounds)
        assert sum(dmfp_rounds) / 3 < sum(fp_rounds) / 3

    def test_per_component_records(self, figure4_faults):
        result = build_minimum_polygons_distributed(figure4_faults, width=10)
        assert len(result.per_component) == 2
        for entry in result.per_component:
            assert entry.rounds >= 1 + entry.ring.rounds
            assert entry.polygon >= set(entry.component.nodes)

    def test_total_messages_accounting(self, figure4_faults):
        result = build_minimum_polygons_distributed(figure4_faults, width=10)
        assert result.total_messages >= sum(
            entry.ring.rounds for entry in result.per_component
        )

    def test_num_disabled_nonfaulty_never_exceeds_fb(self):
        scenario = generate_scenario(num_faults=100, width=25, model="clustered", seed=7)
        topology = scenario.topology()
        fb = build_faulty_blocks(scenario.faults, topology=topology)
        dmfp = build_distributed_for_scenario(scenario)
        assert dmfp.num_disabled_nonfaulty <= fb.num_disabled_nonfaulty

    def test_mean_region_size_zero_without_regions(self):
        result = build_minimum_polygons_distributed([], width=6)
        assert result.mean_region_size == 0.0
