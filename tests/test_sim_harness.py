"""Tests for the evaluation harness (metrics, experiments, figure series)."""

import math

import pytest

from repro.faults.scenario import generate_scenario
from repro.sim.experiments import compare_constructions, run_sweep
from repro.sim.figures import (
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
)
from repro.sim.metrics import ConstructionMetrics, ScenarioMetrics, SweepPoint


class TestMetrics:
    def test_construction_metrics_totals(self):
        metrics = ConstructionMetrics(
            model="FB",
            num_faults=10,
            num_regions=3,
            disabled_nonfaulty=7,
            mean_region_size=5.0,
            rounds=4,
        )
        assert metrics.disabled_total == 17

    def test_scenario_metrics_accessors(self):
        scenario = ScenarioMetrics(num_faults=10, distribution="random", seed=0)
        scenario.add(ConstructionMetrics("FB", 10, 2, 20, 15.0, 5))
        scenario.add(ConstructionMetrics("MFP", 10, 4, 2, 3.0, 2))
        assert scenario.disabled_nonfaulty("FB") == 20
        assert scenario.mean_region_size("MFP") == 3.0
        assert scenario.rounds("FB") == 5
        assert scenario.saving_vs_fb("MFP") == pytest.approx(0.9)

    def test_saving_vs_fb_with_zero_baseline(self):
        scenario = ScenarioMetrics(num_faults=1, distribution="random", seed=0)
        scenario.add(ConstructionMetrics("FB", 1, 1, 0, 1.0, 0))
        scenario.add(ConstructionMetrics("MFP", 1, 1, 0, 1.0, 0))
        assert scenario.saving_vs_fb("MFP") == 0.0

    def test_sweep_point_averages(self):
        point = SweepPoint(num_faults=10, distribution="random")
        for disabled in (10, 20):
            scenario = ScenarioMetrics(num_faults=10, distribution="random", seed=0)
            scenario.add(ConstructionMetrics("FB", 10, 1, disabled, 4.0, 3))
            point.add(scenario)
        assert point.mean_disabled_nonfaulty("FB") == 15.0
        assert point.mean_region_size("FB") == 4.0
        assert point.mean_rounds("FB") == 3.0

    def test_sweep_point_empty(self):
        point = SweepPoint(num_faults=10, distribution="random")
        assert point.mean_disabled_nonfaulty("FB") == 0.0


class TestCompareConstructions:
    def test_all_models_present(self):
        scenario = generate_scenario(num_faults=30, width=20, seed=0)
        metrics = compare_constructions(scenario)
        assert set(metrics.per_model) == {"FB", "FP", "MFP", "CMFP", "DMFP"}

    def test_distributed_can_be_skipped(self):
        scenario = generate_scenario(num_faults=30, width=20, seed=0)
        metrics = compare_constructions(scenario, include_distributed=False)
        assert "DMFP" not in metrics.per_model

    def test_monotone_disabled_counts(self):
        scenario = generate_scenario(num_faults=50, width=20, model="clustered", seed=1)
        metrics = compare_constructions(scenario, include_distributed=False)
        assert (
            metrics.disabled_nonfaulty("MFP")
            <= metrics.disabled_nonfaulty("FP")
            <= metrics.disabled_nonfaulty("FB")
        )

    def test_dmfp_and_mfp_disable_the_same_nodes(self):
        scenario = generate_scenario(num_faults=40, width=20, model="clustered", seed=2)
        metrics = compare_constructions(scenario)
        assert metrics.disabled_nonfaulty("DMFP") == metrics.disabled_nonfaulty("MFP")


class TestRunSweep:
    def test_sweep_shape(self):
        points = run_sweep(
            [10, 20], trials=2, width=15, include_distributed=False,
            include_rounds=False,
        )
        assert [p.num_faults for p in points] == [10, 20]
        assert all(len(p.scenarios) == 2 for p in points)

    def test_sweep_is_reproducible(self):
        a = run_sweep([15], trials=2, width=15, include_distributed=False)
        b = run_sweep([15], trials=2, width=15, include_distributed=False)
        assert a[0].mean_disabled_nonfaulty("FB") == b[0].mean_disabled_nonfaulty("FB")


class TestFigureSeries:
    @pytest.fixture(scope="class")
    def small_points(self):
        # One small sweep shared by the three figure tests (keeps CI fast).
        return run_sweep(
            [20, 40, 60], trials=2, width=25, distribution="random",
            include_distributed=True, include_rounds=True,
        )

    def test_figure9_series(self, small_points):
        figure = figure9_series(points=small_points, log10=False)
        assert figure.x_values == [20, 40, 60]
        assert set(figure.series) == {"FB", "FP", "MFP"}
        for index in range(3):
            assert (
                figure.series["MFP"][index]
                <= figure.series["FP"][index]
                <= figure.series["FB"][index]
            )

    def test_figure9_log_scale(self, small_points):
        linear = figure9_series(points=small_points, log10=False)
        logged = figure9_series(points=small_points, log10=True)
        for model in ("FB", "FP", "MFP"):
            for raw, log_value in zip(linear.series[model], logged.series[model]):
                if raw > 0:
                    assert log_value == pytest.approx(math.log10(raw))
                else:
                    assert log_value == -1.0

    def test_figure10_series(self, small_points):
        figure = figure10_series(points=small_points)
        assert set(figure.series) == {"FB", "FP", "MFP"}
        for index in range(3):
            assert figure.series["MFP"][index] <= figure.series["FB"][index]

    def test_figure11_series(self, small_points):
        figure = figure11_series(points=small_points)
        assert set(figure.series) == {"FB", "FP", "CMFP", "DMFP"}
        for index in range(3):
            assert figure.series["FP"][index] >= figure.series["FB"][index]
            assert figure.series["CMFP"][index] <= figure.series["DMFP"][index]

    def test_value_lookup_and_rows(self, small_points):
        figure = figure10_series(points=small_points)
        assert figure.value("FB", 40) == figure.series["FB"][1]
        rows = figure.as_rows()
        assert rows[0][0] == "faults"
        assert len(rows) == 4

    def test_format_series_table(self, small_points):
        text = format_series_table(figure9_series(points=small_points))
        assert "Figure 9a" in text
        assert "FB" in text and "MFP" in text
        assert len(text.splitlines()) >= 6
