"""Property-based tests (hypothesis) for the core invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.components import find_components
from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons, component_minimum_polygon
from repro.core.regions import extract_regions
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.geometry.boundary import boundary_ring, region_perimeter
from repro.geometry.orthogonal import is_orthogonal_convex, orthogonal_convex_hull
from repro.geometry.rectangle import bounding_rectangle
from repro.geometry.sections import concave_sections, section_nodes
from repro.mesh.topology import Mesh2D

#: Strategy: a small set of distinct fault coordinates on a 12x12 grid.
fault_sets = st.sets(
    st.tuples(st.integers(0, 11), st.integers(0, 11)), min_size=1, max_size=24
)

#: Strategy: a connected-ish blob grown from a seed (used for hull checks).
coords = st.tuples(st.integers(0, 11), st.integers(0, 11))


@settings(max_examples=60, deadline=None)
@given(fault_sets)
def test_hull_is_minimal_orthogonal_convex_superset(region):
    hull = orthogonal_convex_hull(region)
    assert set(region) <= hull
    assert is_orthogonal_convex(hull)
    # Minimality: the hull fits inside the bounding box, which is itself an
    # orthogonal convex superset.
    box = bounding_rectangle(region)
    assert all(node in box for node in hull)
    # Idempotence.
    assert orthogonal_convex_hull(hull) == hull


@settings(max_examples=60, deadline=None)
@given(fault_sets)
def test_single_pass_section_fill_equals_hull_for_components(region):
    # For every 8-connected component, one pass of concave row/column
    # filling is already the minimum orthogonal convex hull -- the invariant
    # the distributed notification phase relies on.
    for component in find_components(region):
        union = set(component.nodes) | section_nodes(concave_sections(component.nodes))
        assert union == set(orthogonal_convex_hull(component.nodes))


@settings(max_examples=60, deadline=None)
@given(fault_sets)
def test_components_partition_faults_and_are_adjacent_closed(region):
    components = find_components(region)
    seen = set()
    for component in components:
        assert component.nodes, "components are never empty"
        assert not (seen & component.nodes)
        seen |= component.nodes
    assert seen == set(region)


@settings(max_examples=40, deadline=None)
@given(fault_sets)
def test_boundary_ring_never_enters_the_region(region):
    for component in find_components(region):
        ring = boundary_ring(component.nodes)
        assert not (set(ring) & component.nodes)
        assert len(ring) >= region_perimeter(component.nodes) // 2


@settings(max_examples=30, deadline=None)
@given(fault_sets)
def test_construction_hierarchy_invariants(region):
    faults = sorted(region)
    topology = Mesh2D(12, 12)
    fb = build_faulty_blocks(faults, topology=topology)
    fp = build_sub_minimum_polygons(faults, topology=topology)
    mfp = build_minimum_polygons(faults, topology=topology, compute_rounds=False)

    fb_disabled = fb.grid.disabled_set()
    fp_disabled = fp.grid.disabled_set()
    mfp_disabled = mfp.grid.disabled_set()

    # Every construction covers all faults.
    assert set(faults) <= mfp_disabled <= fp_disabled <= fb_disabled
    # Region shapes.
    assert all(r.is_rectangle for r in fb.regions)
    assert all(r.is_orthogonal_convex for r in fp.regions)
    assert all(r.is_orthogonal_convex for r in mfp.regions)
    # Counts are consistent with the sets.
    assert fb.num_disabled_nonfaulty == len(fb_disabled) - len(set(faults))
    assert mfp.num_disabled_nonfaulty <= fp.num_disabled_nonfaulty


@settings(max_examples=25, deadline=None)
@given(fault_sets)
def test_distributed_equals_centralized(region):
    faults = sorted(region)
    topology = Mesh2D(12, 12)
    centralized = build_minimum_polygons(faults, topology=topology, compute_rounds=False)
    distributed = build_minimum_polygons_distributed(faults, topology=topology)
    assert distributed.grid.disabled_set() == centralized.grid.disabled_set()
    assert distributed.rounds >= 0


@settings(max_examples=40, deadline=None)
@given(fault_sets)
def test_mfp_per_component_is_exactly_the_hull(region):
    for component in find_components(region):
        polygon = component_minimum_polygon(component).polygon
        assert polygon == orthogonal_convex_hull(component.nodes)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
def test_region_extraction_partitions_disabled_nodes(disabled):
    regions = extract_regions(disabled, set())
    union = set()
    for fault_region in regions:
        assert not (union & fault_region.nodes)
        union |= fault_region.nodes
    assert union == set(disabled)
