"""Tests for the parallel sweep executor (repro.api.executor)."""

import pytest

from repro.api import (
    DEFAULT_MODELS,
    SweepExecutor,
    TrialSpec,
    collect_scenario_metrics,
    run_trial,
)
from repro.faults.scenario import (
    TRIAL_SEED_STRIDE,
    derive_trial_seed,
    generate_scenario,
    sweep_scenarios,
)
from repro.sim.experiments import run_sweep

ALL_LABELS = ("FB", "FP", "MFP", "CMFP", "DMFP")


def _point_fingerprint(point):
    return tuple(
        (point.mean_disabled_nonfaulty(m), point.mean_region_size(m), point.mean_rounds(m))
        for m in ALL_LABELS
    )


class TestSeeding:
    def test_trial_seeds_are_spaced_and_unique(self):
        seeds = [
            derive_trial_seed(0, count_index, 3, trial)
            for count_index in range(4)
            for trial in range(3)
        ]
        assert len(set(seeds)) == len(seeds)
        # Within one point, consecutive trials are prime-stride apart.
        assert derive_trial_seed(0, 1, 3, 1) - derive_trial_seed(0, 1, 3, 0) == (
            TRIAL_SEED_STRIDE
        )

    def test_raising_trials_keeps_existing_trial_seeds(self):
        """Add-more-trials variance reduction: trial t of point i must see
        the same scenario whether the sweep runs 2 or 5 trials."""
        for count_index in range(3):
            for trial in range(2):
                assert derive_trial_seed(7, count_index, 2, trial) == (
                    derive_trial_seed(7, count_index, 5, trial)
                )

    def test_trial_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            derive_trial_seed(0, 0, 2, 2)

    def test_sweep_scenarios_use_derived_seeds(self):
        scenarios = list(sweep_scenarios([5, 10], trials=2, width=12, base_seed=3))
        assert [s.seed for s in scenarios] == [
            derive_trial_seed(3, i, 2, t) for i in range(2) for t in range(2)
        ]

    def test_executor_plan_matches_sweep_scenarios(self):
        executor = SweepExecutor(workers=1)
        specs = executor.plan([5, 10], 2, width=12, base_seed=3)
        scenario_seeds = [
            s.seed for s in sweep_scenarios([5, 10], trials=2, width=12, base_seed=3)
        ]
        assert [spec.seed for spec in specs] == scenario_seeds


class TestDeterminism:
    def test_two_runs_produce_identical_metrics(self):
        """Regression: a sweep is bit-for-bit reproducible run-to-run."""
        executor = SweepExecutor(workers=1)
        a = executor.run([10, 20], trials=2, width=15)
        b = executor.run([10, 20], trials=2, width=15)
        assert [_point_fingerprint(p) for p in a] == [
            _point_fingerprint(p) for p in b
        ]

    def test_parallel_equals_serial(self):
        serial = SweepExecutor(workers=1).run([8, 16], trials=2, width=12)
        parallel = SweepExecutor(workers=2).run([8, 16], trials=2, width=12)
        assert [_point_fingerprint(p) for p in serial] == [
            _point_fingerprint(p) for p in parallel
        ]

    def test_run_sweep_wrapper_parallel_matches_serial(self):
        serial = run_sweep([10], trials=2, width=12, include_distributed=False)
        parallel = run_sweep(
            [10], trials=2, width=12, include_distributed=False, workers=2
        )
        for m in ("FB", "FP", "MFP", "CMFP"):
            assert serial[0].mean_disabled_nonfaulty(m) == parallel[0].mean_disabled_nonfaulty(m)


class TestExecution:
    def test_default_reducer_returns_sweep_points(self):
        points = SweepExecutor(workers=1).run([10, 20], trials=2, width=12)
        assert [p.num_faults for p in points] == [10, 20]
        assert all(len(p.scenarios) == 2 for p in points)

    def test_model_subset(self):
        executor = SweepExecutor(models=("fb", "mfp"), workers=1)
        points = executor.run([10], trials=1, width=12)
        assert set(points[0].scenarios[0].per_model) == {"FB", "MFP"}

    def test_invalid_model_fails_fast(self):
        with pytest.raises(KeyError):
            SweepExecutor(models=("fb", "nope"))

    def test_aliases_accepted_as_models(self):
        executor = SweepExecutor(models=("faulty-block", "distributed"), workers=1)
        assert executor.models == ("fb", "dmfp")

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(workers=1).run([10], trials=0, width=12)

    def test_fault_counts_accepts_iterator(self):
        """run() must not silently drain a generator input (regression)."""
        executor = SweepExecutor(models=("fb",), workers=1)
        from_iter = executor.run(iter([10, 20]), trials=1, width=12)
        from_list = executor.run([10, 20], trials=1, width=12)
        assert [p.num_faults for p in from_iter] == [10, 20]
        assert [
            p.mean_disabled_nonfaulty("FB") for p in from_iter
        ] == [p.mean_disabled_nonfaulty("FB") for p in from_list]

    def test_custom_reducer(self):
        def max_fb_disabled(num_faults, distribution, trials_metrics):
            return (
                num_faults,
                max(m.disabled_nonfaulty("FB") for m in trials_metrics),
            )

        points = SweepExecutor(workers=1, reducer=max_fb_disabled).run(
            [10, 20], trials=2, width=12
        )
        assert [p[0] for p in points] == [10, 20]
        assert all(isinstance(p[1], int) for p in points)

    def test_run_trial_is_self_contained(self):
        spec = TrialSpec(num_faults=12, seed=99, width=12, models=("fb", "fp"))
        metrics = run_trial(spec)
        assert metrics.seed == 99
        assert set(metrics.per_model) == {"FB", "FP"}

    def test_collect_scenario_metrics_shares_mfp_build(self):
        scenario = generate_scenario(num_faults=25, width=15, seed=4)
        metrics = collect_scenario_metrics(scenario, models=DEFAULT_MODELS)
        assert metrics.per_model["MFP"].rounds == metrics.per_model["CMFP"].rounds
        assert (
            metrics.per_model["MFP"].disabled_nonfaulty
            == metrics.per_model["CMFP"].disabled_nonfaulty
        )

    def test_include_rounds_false_zeroes_cmfp(self):
        scenario = generate_scenario(num_faults=25, width=15, seed=4)
        metrics = collect_scenario_metrics(
            scenario, models=("mfp", "cmfp"), include_rounds=False
        )
        assert metrics.per_model["CMFP"].rounds == 0


class TestWorkerRegistry:
    def test_run_trial_reregisters_custom_specs(self):
        """A spawned worker's fresh registry must learn custom specs shipped
        in the TrialSpec (regression for non-fork start methods)."""
        import pickle

        from repro.api import ConstructionSpec, get_construction
        from repro.api.registry import _REGISTRY
        from repro.api.executor import _custom_fb_for_tests  # noqa: F401

        spec = ConstructionSpec(
            key="custom-fb-exec-test",
            label="CFB",
            description="worker re-registration test",
            builder=_custom_fb_for_tests,
        )
        trial = TrialSpec(
            num_faults=5,
            seed=1,
            width=10,
            models=("custom-fb-exec-test",),
            specs=(spec,),
        )
        # Simulate a spawn-started worker: the spec round-trips through
        # pickle and the registry does not contain the custom key.
        trial = pickle.loads(pickle.dumps(trial))
        _REGISTRY.pop("custom-fb-exec-test", None)
        try:
            metrics = run_trial(trial)
            assert set(metrics.per_model) == {"CFB"}
            assert get_construction("custom-fb-exec-test").label == "CFB"
        finally:
            _REGISTRY.pop("custom-fb-exec-test", None)

    def test_parallel_sweep_with_custom_registered_model(self):
        from repro.api import ConstructionSpec, register_construction
        from repro.api.registry import _REGISTRY
        from repro.api.executor import _custom_fb_for_tests

        spec = ConstructionSpec(
            key="custom-fb-exec-test2",
            label="CFB2",
            description="parallel custom model",
            builder=_custom_fb_for_tests,
        )
        try:
            register_construction(spec)
            points = SweepExecutor(
                models=("custom-fb-exec-test2",), workers=2
            ).run([8], trials=2, width=10)
            assert set(points[0].scenarios[0].per_model) == {"CFB2"}
        finally:
            _REGISTRY.pop("custom-fb-exec-test2", None)
