"""Unit tests for repro.faults (fault models and scenarios)."""

import numpy as np
import pytest

from repro.faults.models import ClusteredFaultModel, RandomFaultModel, make_fault_model
from repro.faults.scenario import generate_scenario, sweep_scenarios
from repro.geometry.boundary import eight_neighbours
from repro.mesh.topology import Mesh2D, Torus2D


class TestRandomFaultModel:
    def test_draws_requested_count_without_duplicates(self, mesh20):
        model = RandomFaultModel(mesh20, np.random.default_rng(0))
        faults = model.draw_faults(50)
        assert len(faults) == 50
        assert len(set(faults)) == 50

    def test_all_faults_inside_topology(self, mesh20):
        model = RandomFaultModel(mesh20, np.random.default_rng(1))
        assert all(fault in mesh20 for fault in model.draw_faults(100))

    def test_zero_faults(self, mesh10):
        assert RandomFaultModel(mesh10).draw_faults(0) == []

    def test_rejects_negative_and_oversized_counts(self, mesh10):
        model = RandomFaultModel(mesh10)
        with pytest.raises(ValueError):
            model.draw_faults(-1)
        with pytest.raises(ValueError):
            model.draw_faults(101)

    def test_can_fill_the_whole_mesh(self):
        mesh = Mesh2D(4, 4)
        faults = RandomFaultModel(mesh, np.random.default_rng(2)).draw_faults(16)
        assert set(faults) == set(mesh.nodes())

    def test_seeded_reproducibility(self, mesh20):
        a = RandomFaultModel(mesh20, np.random.default_rng(7)).draw_faults(30)
        b = RandomFaultModel(mesh20, np.random.default_rng(7)).draw_faults(30)
        assert a == b


class TestClusteredFaultModel:
    def test_draws_requested_count_without_duplicates(self, mesh20):
        model = ClusteredFaultModel(mesh20, np.random.default_rng(0))
        faults = model.draw_faults(60)
        assert len(faults) == 60
        assert len(set(faults)) == 60

    def test_rejects_non_positive_cluster_factor(self, mesh10):
        with pytest.raises(ValueError):
            ClusteredFaultModel(mesh10, cluster_factor=0)

    def test_clustering_increases_adjacency(self, mesh20):
        """Clustered faults touch existing faults more often than random ones."""
        def adjacency_fraction(faults):
            fault_set = set(faults)
            adjacent = 0
            for fault in faults:
                if any(n in fault_set for n in eight_neighbours(fault)):
                    adjacent += 1
            return adjacent / len(faults)

        rng_random = np.random.default_rng(3)
        rng_clustered = np.random.default_rng(3)
        random_fraction = np.mean([
            adjacency_fraction(RandomFaultModel(mesh20, rng_random).draw_faults(60))
            for _ in range(5)
        ])
        clustered_fraction = np.mean([
            adjacency_fraction(
                ClusteredFaultModel(mesh20, rng_clustered, cluster_factor=8.0).draw_faults(60)
            )
            for _ in range(5)
        ])
        assert clustered_fraction > random_fraction

    def test_works_on_torus(self, torus10):
        model = ClusteredFaultModel(torus10, np.random.default_rng(5))
        faults = model.draw_faults(20)
        assert all(fault in torus10 for fault in faults)


class TestMakeFaultModel:
    def test_dispatch(self, mesh10):
        assert isinstance(make_fault_model("random", mesh10), RandomFaultModel)
        assert isinstance(make_fault_model("clustered", mesh10), ClusteredFaultModel)
        assert isinstance(make_fault_model("  Clustered ", mesh10), ClusteredFaultModel)

    def test_unknown_model_rejected(self, mesh10):
        with pytest.raises(ValueError):
            make_fault_model("gaussian", mesh10)

    def test_cluster_factor_forwarded(self, mesh10):
        model = make_fault_model("clustered", mesh10, cluster_factor=4.0)
        assert model.cluster_factor == 4.0


class TestScenario:
    def test_generate_scenario_defaults(self):
        scenario = generate_scenario(num_faults=10, width=15, seed=1)
        assert scenario.width == scenario.height == 15
        assert scenario.num_faults == 10
        assert scenario.model == "random"
        assert not scenario.torus
        assert isinstance(scenario.topology(), Mesh2D)

    def test_generate_scenario_torus(self):
        scenario = generate_scenario(num_faults=5, width=8, torus=True, seed=2)
        assert isinstance(scenario.topology(), Torus2D)

    def test_scenario_is_reproducible(self):
        a = generate_scenario(num_faults=20, width=20, model="clustered", seed=9)
        b = generate_scenario(num_faults=20, width=20, model="clustered", seed=9)
        assert a.faults == b.faults

    def test_fault_set(self):
        scenario = generate_scenario(num_faults=12, width=10, seed=4)
        assert scenario.fault_set() == frozenset(scenario.faults)
        assert len(scenario.fault_set()) == 12

    def test_describe_mentions_model_and_size(self):
        scenario = generate_scenario(num_faults=3, width=6, model="clustered", seed=0)
        text = scenario.describe()
        assert "6x6" in text and "clustered" in text and "3 faults" in text

    def test_sweep_scenarios_shapes(self):
        scenarios = list(sweep_scenarios([5, 10], trials=3, width=12, base_seed=100))
        assert len(scenarios) == 6
        assert [s.num_faults for s in scenarios] == [5, 5, 5, 10, 10, 10]
        # Distinct seeds per trial, deterministic across runs.
        seeds = [s.seed for s in scenarios]
        assert len(set(seeds)) == 6
        again = list(sweep_scenarios([5, 10], trials=3, width=12, base_seed=100))
        assert [s.faults for s in scenarios] == [s.faults for s in again]

    def test_sweep_rejects_zero_trials(self):
        with pytest.raises(ValueError):
            list(sweep_scenarios([5], trials=0))
