"""Unit tests for the legacy whole-network routing simulator shim.

The simulator is deprecated in favour of ``repro.api.MeshSession.route``
(see ``tests/test_api_routing.py`` for the new path, including the
legacy-vs-session equivalence test); these tests pin the shim's behaviour
and therefore silence its DeprecationWarning wholesale.
"""

import pytest

from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.routing.simulator import RoutingSimulator, RoutingStats

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestRoutingStats:
    def test_empty_stats_defaults(self):
        stats = RoutingStats()
        assert stats.delivery_rate == 1.0
        assert stats.mean_hops == 0.0
        assert stats.minimal_fraction == 1.0
        assert stats.abnormal_fraction == 0.0


class TestRoutingSimulator:
    def test_fault_free_simulation_is_all_minimal(self):
        simulator = RoutingSimulator(Mesh2D(12, 12), [], seed=1)
        stats = simulator.run(200)
        assert stats.attempted == 200
        assert stats.delivery_rate == 1.0
        assert stats.minimal_fraction == 1.0
        assert stats.mean_detour == 0.0

    def test_endpoints_are_enabled_nodes_only(self, figure2_region):
        simulator = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=2)
        assert simulator.num_enabled == 100 - len(figure2_region)
        for source, destination in simulator.random_pairs(50):
            assert not simulator.router.is_disabled(source)
            assert not simulator.router.is_disabled(destination)
            assert source != destination

    def test_simulation_with_a_single_polygon(self, figure2_region):
        simulator = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=3)
        stats = simulator.run(300)
        assert stats.delivery_rate == 1.0
        assert 0 < stats.abnormal_fraction < 0.5
        assert stats.mean_hops >= 1.0

    def test_deadlock_analysis_tool(self, figure2_region):
        # Dimension-ordered traffic alone is acyclic; heavy traffic around a
        # region may expose channel-dependency cycles because the simulator
        # uses a simplified channel assignment (see repro.routing.channels),
        # so there the check is exercised only for its boolean verdict.
        fault_free = RoutingSimulator(Mesh2D(10, 10), [], seed=4, collect_results=True)
        assert fault_free.deadlock_free(fault_free.run(200))
        simulator = RoutingSimulator(
            Mesh2D(10, 10), [figure2_region], seed=4, collect_results=True
        )
        assert simulator.deadlock_free(simulator.run(200)) in (True, False)

    def test_results_are_not_collected_by_default(self, figure2_region):
        simulator = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=4)
        stats = simulator.run(50)
        assert stats.attempted == 50
        assert stats.results == []
        with pytest.raises(ValueError, match="collect_results"):
            simulator.deadlock_free(stats)

    def test_seeded_runs_are_reproducible(self, figure2_region):
        a = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=5).run(100)
        b = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=5).run(100)
        assert a.total_hops == b.total_hops
        assert a.delivered == b.delivered

    def test_mfp_keeps_more_endpoints_than_fb(self):
        # The practical payoff of the minimum polygons: more nodes stay
        # usable as message endpoints for the same fault pattern.
        scenario = generate_scenario(num_faults=60, width=20, model="clustered", seed=13)
        topology = scenario.topology()
        fb = build_faulty_blocks(scenario.faults, topology=topology)
        mfp = build_minimum_polygons(
            scenario.faults, topology=topology, compute_rounds=False
        )
        fb_sim = RoutingSimulator(topology, fb.regions, seed=0)
        mfp_sim = RoutingSimulator(topology, mfp.regions, seed=0)
        assert mfp_sim.num_enabled >= fb_sim.num_enabled

    def test_nearly_full_mesh_with_two_nodes(self):
        # Degenerate case: only two enabled nodes left.
        mesh = Mesh2D(2, 2)
        simulator = RoutingSimulator(mesh, [{(0, 0), (1, 1)}], seed=6)
        stats = simulator.run(10)
        assert stats.attempted == 10
