"""The distributed labelling protocols agree with the vectorised sweeps."""


from repro.core.labelling import (
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    faults_to_mask,
)
from repro.distributed.labelling_protocol import (
    run_distributed_scheme_1,
    run_distributed_scheme_2,
)
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D


def as_map(mask):
    width, height = mask.shape
    return {(x, y): bool(mask[x, y]) for x in range(width) for y in range(height)}


class TestDistributedScheme1:
    def test_matches_vectorised_labels_and_rounds(self):
        for seed in range(4):
            scenario = generate_scenario(num_faults=18, width=12, model="clustered", seed=seed)
            topology = scenario.topology()
            fault_mask = faults_to_mask(scenario.faults, 12, 12)
            vectorised = apply_labelling_scheme_1(fault_mask, topology)
            distributed_map, rounds = run_distributed_scheme_1(topology, scenario.faults)
            assert distributed_map == as_map(vectorised.labels)
            assert rounds == vectorised.rounds

    def test_no_faults(self):
        topology = Mesh2D(5, 5)
        labels, rounds = run_distributed_scheme_1(topology, [])
        assert not any(labels.values())
        assert rounds == 0

    def test_single_fault(self):
        topology = Mesh2D(5, 5)
        labels, rounds = run_distributed_scheme_1(topology, [(2, 2)])
        assert labels[(2, 2)]
        assert sum(labels.values()) == 1
        assert rounds == 0


class TestDistributedScheme2:
    def test_matches_vectorised_labels_and_rounds(self):
        for seed in range(4):
            scenario = generate_scenario(num_faults=20, width=12, model="clustered", seed=seed)
            topology = scenario.topology()
            fault_mask = faults_to_mask(scenario.faults, 12, 12)
            scheme1 = apply_labelling_scheme_1(fault_mask, topology)
            scheme2 = apply_labelling_scheme_2(fault_mask, scheme1.labels, topology)

            unsafe_map, _ = run_distributed_scheme_1(topology, scenario.faults)
            disabled_map, rounds = run_distributed_scheme_2(
                topology, scenario.faults, unsafe_map
            )
            assert disabled_map == as_map(scheme2.labels)
            assert rounds == scheme2.rounds

    def test_faulty_nodes_never_reenabled(self):
        topology = Mesh2D(6, 6)
        faults = [(1, 1), (2, 2)]
        unsafe_map, _ = run_distributed_scheme_1(topology, faults)
        disabled_map, _ = run_distributed_scheme_2(topology, faults, unsafe_map)
        assert disabled_map[(1, 1)] and disabled_map[(2, 2)]

    def test_diagonal_pair_block_shrinks(self):
        topology = Mesh2D(6, 6)
        faults = [(2, 2), (3, 3)]
        unsafe_map, _ = run_distributed_scheme_1(topology, faults)
        disabled_map, _ = run_distributed_scheme_2(topology, faults, unsafe_map)
        assert not disabled_map[(2, 3)]
        assert not disabled_map[(3, 2)]
