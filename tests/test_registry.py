"""Tests for the experiment registry (repro.sim.registry)."""

import re
from pathlib import Path

import pytest

from repro.sim.registry import (
    EXPERIMENTS,
    extension_experiments,
    get_experiment,
    paper_experiments,
    render_index,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestRegistryContents:
    def test_every_paper_figure_panel_is_registered(self):
        keys = {experiment.key for experiment in paper_experiments()}
        assert keys == {"fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b"}

    def test_extensions_are_flagged(self):
        assert all(not experiment.in_paper for experiment in extension_experiments())
        assert len(extension_experiments()) >= 3

    def test_lookup_and_error_message(self):
        assert get_experiment("fig9a").paper_reference == "Figure 9(a)"
        with pytest.raises(KeyError, match="fig9a"):
            get_experiment("fig99")

    def test_bench_targets_point_to_existing_files(self):
        for experiment in EXPERIMENTS.values():
            bench_file = experiment.bench_target.split("::")[0]
            assert (REPO_ROOT / bench_file).exists(), bench_file

    def test_modules_are_importable(self):
        import importlib

        for experiment in EXPERIMENTS.values():
            for module in experiment.modules:
                importlib.import_module(module)

    def test_figure11_series_include_both_mfp_solutions(self):
        assert set(get_experiment("fig11a").series) == {"FB", "FP", "CMFP", "DMFP"}


class TestRendering:
    def test_describe_mentions_bench_target(self):
        text = get_experiment("fig10b").describe()
        assert "bench_fig10_region_size.py" in text
        assert "clustered" in text

    def test_render_index_covers_everything(self):
        text = render_index()
        for key in EXPERIMENTS:
            assert re.search(rf"^{key}:", text, flags=re.MULTILINE)
