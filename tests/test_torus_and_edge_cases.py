"""Edge-case and torus-topology tests for the constructions.

The paper states that "we use meshes to represent both meshes and tori";
these tests exercise the wraparound code paths and the degenerate shapes
(thin meshes, saturated meshes, border-hugging fault patterns) that the
random sweeps rarely hit.
"""

import pytest

from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D, Torus2D


class TestTorusConstructions:
    def test_wraparound_block_forms_across_the_seam(self):
        torus = Torus2D(8, 8)
        # Two faults diagonal across the wraparound corner.
        construction = build_faulty_blocks([(0, 0), (7, 7)], topology=torus)
        disabled = construction.grid.disabled_set()
        assert {(0, 0), (7, 7), (0, 7), (7, 0)} <= disabled

    def test_mesh_keeps_the_same_faults_separate(self):
        mesh = Mesh2D(8, 8)
        construction = build_faulty_blocks([(0, 0), (7, 7)], topology=mesh)
        assert construction.grid.num_disabled_nonfaulty == 0

    def test_fp_on_torus_releases_wraparound_fills(self):
        torus = Torus2D(8, 8)
        construction = build_sub_minimum_polygons([(0, 0), (7, 7)], topology=torus)
        # The two non-faulty corner fills have two enabled neighbours each.
        assert construction.grid.num_disabled_nonfaulty == 0

    def test_constructions_cover_faults_on_torus_scenarios(self):
        scenario = generate_scenario(
            num_faults=50, width=20, model="clustered", seed=9, torus=True
        )
        topology = scenario.topology()
        for construction in (
            build_faulty_blocks(scenario.faults, topology=topology),
            build_sub_minimum_polygons(scenario.faults, topology=topology),
            build_minimum_polygons(scenario.faults, topology=topology),
        ):
            assert set(scenario.faults) <= construction.grid.disabled_set()

    def test_mfp_still_no_worse_than_fb_on_torus(self):
        scenario = generate_scenario(
            num_faults=60, width=20, model="clustered", seed=3, torus=True
        )
        topology = scenario.topology()
        fb = build_faulty_blocks(scenario.faults, topology=topology)
        mfp = build_minimum_polygons(scenario.faults, topology=topology)
        assert mfp.num_disabled_nonfaulty <= fb.num_disabled_nonfaulty


class TestDegenerateMeshes:
    def test_single_row_mesh(self):
        mesh = Mesh2D(10, 1)
        construction = build_minimum_polygons([(2, 0), (3, 0), (7, 0)], topology=mesh)
        assert construction.grid.num_disabled_nonfaulty == 0
        assert len(construction.regions) == 2

    def test_single_column_mesh(self):
        mesh = Mesh2D(1, 10)
        construction = build_faulty_blocks([(0, 1), (0, 5)], topology=mesh)
        assert construction.all_rectangular()
        assert len(construction.regions) == 2

    def test_single_node_mesh(self):
        mesh = Mesh2D(1, 1)
        construction = build_minimum_polygons([(0, 0)], topology=mesh)
        assert construction.grid.num_disabled == 1

    def test_fully_faulty_mesh(self):
        mesh = Mesh2D(4, 4)
        faults = list(mesh.nodes())
        for builder in (
            build_faulty_blocks,
            build_sub_minimum_polygons,
            build_minimum_polygons,
        ):
            construction = builder(faults, topology=mesh)
            assert construction.grid.num_disabled == 16
            assert construction.grid.num_disabled_nonfaulty == 0
            assert len(construction.regions) == 1

    def test_fault_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            build_faulty_blocks([(10, 0)], width=5)

    def test_border_hugging_pattern(self):
        # A fault chain along the whole western border of a small mesh.
        mesh = Mesh2D(6, 6)
        faults = [(0, y) for y in range(6)] + [(1, 2)]
        mfp = build_minimum_polygons(faults, topology=mesh)
        dmfp = build_minimum_polygons_distributed(faults, topology=mesh)
        assert mfp.grid.disabled_set() == dmfp.grid.disabled_set()
        assert mfp.all_orthogonal_convex()

    def test_distributed_construction_with_component_spanning_the_mesh(self):
        # One component stretching from border to border: the geometric ring
        # walk uses virtual off-mesh positions but the resulting statuses
        # stay inside the mesh.
        mesh = Mesh2D(7, 7)
        faults = [(x, 3) for x in range(7)] + [(3, 4)]
        dmfp = build_minimum_polygons_distributed(faults, topology=mesh)
        assert dmfp.grid.disabled_set() == set(faults)
        assert all(mesh.contains(node) for node in dmfp.grid.disabled_set())
