"""Tests of the serving layer: coalescer, daemon verbs, TCP, bit-identity.

The contract under test is the ISSUE's acceptance bar: coalesced batch
responses are bit-identical to individually-routed scalar calls --
including under interleaved fault churn -- the coalescer's two flush
triggers behave (window timer, max-batch cap, ``max_batch=1`` =
uncoalesced), mutations flush buffered routes against pre-mutation state,
and the daemon drains gracefully.  Tests drive the event loop through
``asyncio.run`` inside synchronous test functions (no pytest-asyncio in
the toolchain).
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import MeshSession
from repro.faults.scenario import generate_scenario
from repro.serve import (
    InProcessClient,
    ProtocolError,
    RouteCoalescer,
    RouteDaemon,
    ServeClient,
    ServeError,
    decode_line,
    encode,
)
from repro.serve.protocol import (
    E_BAD_PAIR,
    E_BAD_REQUEST,
    E_SHUTTING_DOWN,
    E_UNKNOWN_OP,
)

OUTCOME_KEYS = ("delivered", "reason", "hops", "abnormal_hops", "minimal_hops")


def scalar_outcome(router, pair):
    """Route one pair through the scalar oracle, as a response-shaped dict."""
    result = router.route((pair[0], pair[1]), (pair[2], pair[3]))
    return {
        "delivered": result.delivered,
        "reason": result.reason,
        "hops": result.hops,
        "abnormal_hops": result.abnormal_hops,
        "minimal_hops": result.hops - result.detour,
    }


def random_pairs(rng, width, count):
    return [[int(v) for v in rng.integers(0, width, size=4)] for _ in range(count)]


# -- protocol ------------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        message = {"op": "route", "id": 3, "pairs": [[0, 0, 1, 1]]}
        assert decode_line(encode(message)) == message

    def test_encode_is_one_line(self):
        assert encode({"op": "status"}).count(b"\n") == 1

    def test_bad_json_raises(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(b"{nope\n")
        assert excinfo.value.code == E_BAD_REQUEST

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")


# -- coalescer -----------------------------------------------------------------------


class TestCoalescer:
    def test_window_merges_concurrent_requests(self):
        flushes = []

        def flush(pending):
            flushes.append([entry.pairs for entry in pending])
            for entry in pending:
                entry.future.set_result(len(entry.pairs))

        async def main():
            coalescer = RouteCoalescer(flush, window=0.005, max_batch=100)
            results = await asyncio.gather(
                coalescer.submit([(0, 0, 1, 1)]),
                coalescer.submit([(1, 1, 2, 2), (2, 2, 3, 3)]),
                coalescer.submit([(3, 3, 4, 4)]),
            )
            return results

        assert asyncio.run(main()) == [1, 2, 1]
        assert len(flushes) == 1
        assert len(flushes[0]) == 3

    def test_max_batch_triggers_immediate_flush(self):
        flushes = []

        def flush(pending):
            flushes.append(sum(len(entry.pairs) for entry in pending))
            for entry in pending:
                entry.future.set_result(None)

        async def main():
            coalescer = RouteCoalescer(flush, window=60.0, max_batch=4)
            await asyncio.gather(*(coalescer.submit([(0, 0, 1, 1)]) for _ in range(8)))
            assert coalescer.stats.size_flushes == 2
            assert coalescer.stats.timer_flushes == 0

        asyncio.run(main())
        assert flushes == [4, 4]

    def test_max_batch_one_disables_coalescing(self):
        flushes = []

        def flush(pending):
            flushes.append(len(pending))
            for entry in pending:
                entry.future.set_result(None)

        async def main():
            coalescer = RouteCoalescer(flush, window=60.0, max_batch=1)
            await asyncio.gather(*(coalescer.submit([(0, 0, 1, 1)]) for _ in range(5)))
            assert coalescer.stats.coalesce_ratio == 1.0
            assert coalescer.stats.coalesced_flushes == 0

        asyncio.run(main())
        assert flushes == [1] * 5

    def test_flush_now_empties_queue(self):
        def flush(pending):
            for entry in pending:
                entry.future.set_result("flushed")

        async def main():
            coalescer = RouteCoalescer(flush, window=60.0, max_batch=100)
            future = asyncio.ensure_future(coalescer.submit([(0, 0, 1, 1)]))
            await asyncio.sleep(0)
            assert coalescer.queue_depth == 1
            coalescer.flush_now()
            assert coalescer.queue_depth == 0
            assert await future == "flushed"

        asyncio.run(main())

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            RouteCoalescer(lambda pending: None, window=-1.0)
        with pytest.raises(ValueError):
            RouteCoalescer(lambda pending: None, max_batch=0)


# -- daemon verbs (in-process) -------------------------------------------------------


def make_daemon(**kwargs):
    scenario = generate_scenario(
        num_faults=40, width=24, model="clustered", seed=11
    )
    kwargs.setdefault("scenario", scenario)
    return RouteDaemon(**kwargs), scenario


class TestDaemonVerbs:
    def test_ping(self):
        daemon, _ = make_daemon()
        client = InProcessClient(daemon)
        assert asyncio.run(client.ping())["pong"] is True

    def test_route_single_pair(self):
        daemon, scenario = make_daemon()
        client = InProcessClient(daemon)
        outcome = asyncio.run(client.route_one((0, 0), (23, 23)))
        router = MeshSession.from_scenario(scenario).router("extended-ecube", "mfp")
        assert outcome == scalar_outcome(router, [0, 0, 23, 23])

    def test_bad_pair_rejected(self):
        daemon, _ = make_daemon()
        client = InProcessClient(daemon)

        async def main():
            with pytest.raises(ServeError) as excinfo:
                await client.route([[0, 0, 99, 99]])
            assert excinfo.value.code == E_BAD_PAIR
            with pytest.raises(ServeError):
                await client.route([])

        asyncio.run(main())

    def test_unknown_op(self):
        daemon, _ = make_daemon()

        async def main():
            response = await daemon.handle({"op": "frobnicate", "id": 9})
            assert response["ok"] is False
            assert response["error"]["code"] == E_UNKNOWN_OP
            assert response["id"] == 9

        asyncio.run(main())

    def test_mutations_and_status(self):
        daemon, _ = make_daemon()
        client = InProcessClient(daemon)

        async def main():
            before = (await client.status())["mesh"]["faults"]
            added = await client.add_faults([(1, 1), (1, 2)])
            assert added["added"] == [[1, 1], [1, 2]]
            removed = await client.repair([(1, 1)])
            assert removed["removed"] == [[1, 1]]
            linked = await client.add_link_faults([((10, 10), (10, 11))])
            assert linked["added"] == [[10, 10]]
            status = await client.status()
            assert status["mesh"]["faults"] == before + 2
            assert status["version"] == linked["version"]
            assert status["requests"].get("route", 0) == 0
            assert status["requests"]["add_faults"] == 1
            assert "delta_applies" in status["cache_info"]
            from repro.api import engine_deltas_enabled

            assert status["engine_deltas"] == engine_deltas_enabled()

        asyncio.run(main())

    def test_simulate_runs_on_warm_session(self):
        daemon, _ = make_daemon()
        client = InProcessClient(daemon)
        payload = asyncio.run(client.simulate(load=0.02, cycles=32, seed=1))
        assert payload["attempted"] > 0
        assert payload["delivered"] <= payload["attempted"]

    def test_scalar_engine_daemon(self):
        daemon, scenario = make_daemon(engine="scalar")
        client = InProcessClient(daemon)
        rng = np.random.default_rng(2)
        pairs = random_pairs(rng, 24, 16)
        payload = asyncio.run(client.route(pairs))
        assert payload["engine"] == "scalar"
        router = MeshSession.from_scenario(scenario).router("extended-ecube", "mfp")
        assert payload["routes"] == [scalar_outcome(router, p) for p in pairs]


# -- bit-identity under churn --------------------------------------------------------


class TestCoalescedBitIdentity:
    def run_churn(self, seed, concurrency=24, rounds=3):
        """Coalesced daemon responses vs a scalar-oracle shadow session."""
        rng = np.random.default_rng(seed)
        scenario = generate_scenario(
            num_faults=30, width=20, model="clustered", seed=seed
        )
        daemon = RouteDaemon(scenario=scenario, window=0.002)
        client = InProcessClient(daemon)
        shadow = MeshSession.from_scenario(scenario)

        async def main():
            for round_index in range(rounds):
                pairs = random_pairs(rng, 20, concurrency)
                responses = await asyncio.gather(
                    *(client.route([pair]) for pair in pairs)
                )
                router = shadow.router("extended-ecube", "mfp")
                for pair, response in zip(pairs, responses):
                    assert response["routes"][0] == scalar_outcome(router, pair)
                # Interleave churn: alternately add and repair faults.
                if round_index % 2 == 0:
                    nodes = [
                        (int(rng.integers(0, 20)), int(rng.integers(0, 20)))
                        for _ in range(3)
                    ]
                    await client.add_faults(nodes)
                    shadow.add_faults(nodes)
                else:
                    faults = daemon.session.faults
                    victim = faults[int(rng.integers(0, len(faults)))]
                    await client.repair([victim])
                    shadow.remove_faults([victim])
            status = await client.status()
            assert status["coalescer"]["coalesce_ratio"] > 1.0

        asyncio.run(main())

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_coalesced_equals_scalar_under_churn(self, seed):
        self.run_churn(seed)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_coalesced_equals_scalar_property(self, seed):
        self.run_churn(seed, concurrency=12, rounds=2)

    def test_buffered_routes_flushed_before_mutation(self):
        """Routes buffered before a mutation see pre-mutation state."""
        scenario = generate_scenario(num_faults=10, width=16, seed=4)
        daemon = RouteDaemon(scenario=scenario, window=60.0, max_batch=10_000)
        client = InProcessClient(daemon)
        shadow = MeshSession.from_scenario(scenario)
        pre_version = daemon.session.version

        async def main():
            route_task = asyncio.ensure_future(client.route([[0, 0, 15, 15]]))
            await asyncio.sleep(0)  # let the route buffer
            assert daemon.coalescer.queue_depth == 1
            await client.add_faults([(8, 8), (8, 9)])
            payload = await route_task
            assert payload["version"] == pre_version
            router = shadow.router("extended-ecube", "mfp")
            assert payload["routes"][0] == scalar_outcome(router, [0, 0, 15, 15])

        asyncio.run(main())


# -- TCP transport and lifecycle -----------------------------------------------------


class TestTcpDaemon:
    def test_concurrent_tcp_clients_bit_identical(self):
        scenario = generate_scenario(
            num_faults=30, width=20, model="clustered", seed=9
        )
        shadow_router = MeshSession.from_scenario(scenario).router(
            "extended-ecube", "mfp"
        )
        rng = np.random.default_rng(1)
        pairs = random_pairs(rng, 20, 32)

        async def main():
            daemon = RouteDaemon(scenario=scenario)
            host, port = await daemon.start()
            clients = [
                await ServeClient(host, port).connect() for _ in range(8)
            ]
            try:
                responses = await asyncio.gather(
                    *(
                        clients[index % len(clients)].route([pair])
                        for index, pair in enumerate(pairs)
                    )
                )
                for pair, response in zip(pairs, responses):
                    assert response["routes"][0] == scalar_outcome(
                        shadow_router, pair
                    )
                status = await clients[0].status()
                assert status["serving"] is True
                assert status["uptime"] >= 0.0
            finally:
                for client in clients:
                    await client.close()
            await daemon.stop()

        asyncio.run(main())

    def test_shutdown_verb_stops_server(self):
        async def main():
            daemon = RouteDaemon(session=MeshSession(width=8))
            host, port = await daemon.start()
            async with ServeClient(host, port) as client:
                payload = await client.shutdown()
                assert payload["stopping"] is True
            await asyncio.wait_for(daemon.serve_forever(), timeout=5.0)
            # New connections are refused after the listener closed.
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)

        asyncio.run(main())

    def test_requests_after_drain_rejected(self):
        async def main():
            daemon = RouteDaemon(session=MeshSession(width=8))
            await daemon.stop()
            response = await daemon.handle({"op": "route", "pairs": [[0, 0, 1, 1]]})
            assert response["error"]["code"] == E_SHUTTING_DOWN
            # Health stays answerable while draining.
            status = await daemon.handle({"op": "status"})
            assert status["ok"] and status["serving"] is False

        asyncio.run(main())

    def test_malformed_line_gets_error_response(self):
        async def main():
            daemon = RouteDaemon(session=MeshSession(width=8))
            host, port = await daemon.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"not json\n")
            await writer.drain()
            response = decode_line(await reader.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == E_BAD_REQUEST
            writer.close()
            await daemon.stop()

        asyncio.run(main())


# -- CLI wiring ----------------------------------------------------------------------


class TestCliWiring:
    def test_serve_and_query_parsers(self):
        from repro.cli import build_parser

        parser = build_parser()
        serve = parser.parse_args(
            ["serve", "--width", "32", "--port", "0", "--max-batch", "64"]
        )
        assert serve.func.__name__ == "cmd_serve"
        assert serve.max_batch == 64
        query = parser.parse_args(
            ["query", "--port", "1234", "--random", "10", "--shutdown"]
        )
        assert query.func.__name__ == "cmd_query"
        assert query.random == 10 and query.shutdown
