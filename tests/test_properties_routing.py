"""Property-based tests for the routing substrate and label monotonicity."""

from hypothesis import given, settings, strategies as st

from repro.core.faulty_block import build_faulty_blocks
from repro.core.labelling import apply_labelling_scheme_1, faults_to_mask
from repro.core.mfp import build_minimum_polygons
from repro.mesh.topology import Mesh2D
from repro.routing.channels import assign_channels
from repro.routing.ecube import ecube_path, manhattan_distance
from repro.routing.extended_ecube import ExtendedECubeRouter

MESH = Mesh2D(12, 12)

coords = st.tuples(st.integers(0, 11), st.integers(0, 11))
fault_sets = st.sets(coords, min_size=0, max_size=14)


@settings(max_examples=60, deadline=None)
@given(coords, coords)
def test_ecube_paths_are_minimal_and_adjacent(source, destination):
    path = ecube_path(source, destination)
    assert path[0] == source and path[-1] == destination
    assert len(path) == manhattan_distance(source, destination) + 1
    for a, b in zip(path, path[1:]):
        assert manhattan_distance(a, b) == 1


@settings(max_examples=40, deadline=None)
@given(fault_sets, coords, coords)
def test_extended_ecube_delivered_paths_are_well_formed(faults, source, destination):
    construction = build_minimum_polygons(
        sorted(faults), topology=MESH, compute_rounds=False
    )
    router = ExtendedECubeRouter(MESH, construction.regions)
    result = router.route(source, destination)
    # Whatever the outcome, the path starts at the source and never enters a
    # disabled node or leaves the mesh.
    assert result.path[0] == source
    assert all(MESH.contains(node) for node in result.path)
    assert not (set(result.path) & router.disabled) or router.is_disabled(source)
    for a, b in zip(result.path, result.path[1:]):
        assert manhattan_distance(a, b) == 1
    if result.delivered:
        assert result.path[-1] == destination
        assert result.detour >= 0
        assignment = assign_channels(result)
        assert len(assignment.channels) == result.hops
    elif router.is_disabled(source) or router.is_disabled(destination):
        assert result.reason.endswith("disabled")


@settings(max_examples=40, deadline=None)
@given(fault_sets, coords)
def test_scheme1_is_monotone_in_the_fault_set(faults, extra):
    base = apply_labelling_scheme_1(faults_to_mask(sorted(faults), 12, 12))
    grown = apply_labelling_scheme_1(
        faults_to_mask(sorted(faults | {extra}), 12, 12)
    )
    # Adding a fault can only extend the unsafe set.
    assert not (base.labels & ~grown.labels).any()


@settings(max_examples=30, deadline=None)
@given(fault_sets, coords)
def test_constructions_are_monotone_in_the_fault_set(faults, extra):
    smaller = build_minimum_polygons(sorted(faults), topology=MESH, compute_rounds=False)
    larger = build_minimum_polygons(
        sorted(faults | {extra}), topology=MESH, compute_rounds=False
    )
    assert smaller.grid.disabled_set() <= larger.grid.disabled_set()

    fb_smaller = build_faulty_blocks(sorted(faults), topology=MESH)
    fb_larger = build_faulty_blocks(sorted(faults | {extra}), topology=MESH)
    assert fb_smaller.grid.disabled_set() <= fb_larger.grid.disabled_set()
