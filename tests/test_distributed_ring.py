"""Unit tests for the boundary-ring construction (repro.distributed.ring)."""


from repro.core.components import find_components
from repro.distributed.ring import (
    BoundaryArray,
    construct_boundary_ring,
    elect_initiator,
)
from repro.geometry.sections import Section, concave_sections
from repro.types import Side


def component_of(shape):
    components = find_components(shape)
    assert len(components) == 1
    return components[0]


class TestBoundaryArray:
    def test_updates_by_side(self):
        array = BoundaryArray()
        array.update((3, 5), Side.EAST)
        array.update((1, 5), Side.WEST)
        array.update((2, 7), Side.NORTH)
        array.update((2, 4), Side.SOUTH)
        assert array.east[5] == 3
        assert array.west[5] == 1
        assert array.north[2] == 7
        assert array.south[2] == 4
        assert array.defined_entries() == 4

    def test_most_recent_entry_wins(self):
        array = BoundaryArray()
        array.update((3, 5), Side.EAST)
        array.update((6, 5), Side.EAST)
        assert array.east[5] == 6


class TestInitiatorElection:
    def test_rectangle_initiator_is_southwest_outer_corner(self):
        component = component_of({(2, 2), (3, 2), (2, 3), (3, 3)})
        initiator, candidates = elect_initiator(component)
        assert initiator == (1, 1)
        assert initiator in candidates

    def test_westmost_then_southmost_wins(self, u_shape):
        component = component_of(u_shape)
        initiator, candidates = elect_initiator(component)
        assert initiator == min(candidates, key=lambda c: (c[0], c[1]))
        assert initiator == (-1, -1)

    def test_inner_corner_is_a_candidate(self):
        # A square with its north-east node missing: the missing cell has
        # component nodes to its west and south, i.e. it is an east and a
        # north boundary node at the same time -- a south-west inner corner.
        shape = {(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1), (0, 2), (1, 2)}
        component = component_of(shape)
        _, candidates = elect_initiator(component)
        assert (2, 2) in candidates


class TestRingConstruction:
    def test_walk_starts_at_initiator_and_circles_the_component(self, u_shape):
        component = component_of(u_shape)
        ring = construct_boundary_ring(component)
        assert ring.walk[0] == ring.initiator
        assert ring.rounds == len(ring.walk)
        assert not set(ring.walk) & set(u_shape)

    def test_rounds_scale_with_perimeter(self):
        small = construct_boundary_ring(component_of({(0, 0)}))
        large = construct_boundary_ring(component_of({(x, 0) for x in range(6)}))
        assert large.rounds > small.rounds

    def test_convex_component_detects_no_sections(self, figure2_region, plus_shape):
        for shape in (figure2_region, plus_shape):
            ring = construct_boundary_ring(component_of(shape))
            assert ring.detected == []

    def test_u_shape_sections_detected(self, u_shape):
        ring = construct_boundary_ring(component_of(u_shape))
        detected = set(ring.detected_sections())
        assert detected == set(concave_sections(u_shape))

    def test_o_shape_sections_detected(self, o_shape):
        ring = construct_boundary_ring(component_of(o_shape))
        detected = set(ring.detected_sections())
        expected = set(concave_sections(o_shape))
        # The closed concave region of Figure 5(c) is discovered through its
        # row and column sections; every genuine section must be detected.
        assert detected <= expected
        assert detected  # at least part of the hole is recognised

    def test_detected_sections_never_cross_the_component(self):
        shapes = [
            {(0, 0), (2, 0), (4, 0), (0, 1), (1, 1), (2, 1), (3, 1), (4, 1)},
            {(0, 0), (0, 2), (1, 0), (1, 1), (1, 2), (2, 2), (2, 0)},
        ]
        for shape in shapes:
            component = component_of(shape)
            ring = construct_boundary_ring(component)
            for section in ring.detected_sections():
                assert not (set(section.nodes()) & set(shape))

    def test_notification_end_node_lookup(self, u_shape):
        ring = construct_boundary_ring(component_of(u_shape))
        section = Section("row", 1, 1, 1)
        end_node = ring.notification_end_node(section)
        assert end_node is not None
        # The end node is a boundary node adjacent to the section.
        assert end_node not in u_shape
        missing = Section("row", 9, 0, 1)
        assert ring.notification_end_node(missing) is None

    def test_end_nodes_are_on_a_ring_walk(self, o_shape):
        ring = construct_boundary_ring(component_of(o_shape))
        walked = set(ring.walk).union(*ring.hole_walks) if ring.hole_walks else set(ring.walk)
        for entry in ring.detected:
            assert entry.end_node in walked

    def test_o_shape_hole_has_an_inner_ring(self, o_shape):
        ring = construct_boundary_ring(component_of(o_shape))
        assert len(ring.hole_walks) == 1
        assert set(ring.hole_walks[0]) == {(1, 1), (1, 2), (2, 1), (2, 2)}
        assert ring.total_ring_hops == len(ring.walk) + 4

    def test_o_shape_detects_all_hole_sections(self, o_shape):
        ring = construct_boundary_ring(component_of(o_shape))
        assert set(ring.detected_sections()) == set(concave_sections(o_shape))
