"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_construct_defaults(self):
        args = build_parser().parse_args(["construct"])
        assert args.faults == 200
        assert args.distribution == "clustered"
        assert args.func.__name__ == "cmd_construct"

    def test_sweep_fault_counts(self):
        args = build_parser().parse_args(
            ["sweep", "--fault-counts", "10", "20", "--trials", "1"]
        )
        assert args.fault_counts == [10, 20]
        assert args.trials == 1


class TestCommands:
    def test_construct_prints_all_models(self, capsys):
        exit_code = main(
            ["construct", "--faults", "30", "--width", "15", "--seed", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        for model in ("FB", "FP", "MFP", "DMFP"):
            assert model in captured

    def test_construct_with_render(self, capsys):
        exit_code = main(
            ["construct", "--faults", "10", "--width", "10", "--render", "MFP"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MFP grid" in captured
        assert "#" in captured

    def test_sweep_prints_figure_tables(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--width", "20",
                "--fault-counts", "10", "20",
                "--trials", "1",
                "--skip-distributed",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9a" in captured
        assert "Figure 10a" in captured
        assert "Figure 11a" not in captured

    def test_sweep_with_chart_and_distributed(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--width", "15",
                "--fault-counts", "8", "16",
                "--trials", "1",
                "--chart",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 11a" in captured
        assert "legend:" in captured

    def test_route_prints_statistics(self, capsys):
        exit_code = main(
            [
                "route",
                "--faults", "20",
                "--width", "15",
                "--messages", "50",
                "--seed", "1",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "delivery" in captured
        assert "MFP" in captured

    def test_route_with_traffic_and_router(self, capsys):
        exit_code = main(
            [
                "route",
                "--faults", "15",
                "--width", "12",
                "--messages", "40",
                "--traffic", "transpose",
                "--router", "ecube",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "traffic: transpose, router: ecube" in captured
        assert "MFP" in captured

    def test_route_rejects_unknown_traffic(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "--traffic", "nope"])

    def test_route_on_torus(self, capsys):
        # The --torus flag exercised end to end through the session path.
        exit_code = main(
            [
                "route",
                "--faults", "12",
                "--width", "10",
                "--messages", "30",
                "--torus",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "torus" in captured
        assert "MFP" in captured

    def test_sweep_on_torus(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--width", "10",
                "--fault-counts", "5",
                "--trials", "1",
                "--skip-distributed",
                "--torus",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9a" in captured

    def test_sweep_routing_mode(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--routing",
                "--width", "12",
                "--fault-counts", "6", "12",
                "--trials", "1",
                "--traffic", "hotspot",
                "--messages", "30",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "delivery_rate" in captured
        assert "mean_detour" in captured
        assert "MFP" in captured

    def test_verify_reports_ok(self, capsys):
        exit_code = main(
            ["verify", "--faults", "40", "--width", "20", "--seed", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "MFP minimality" in captured
        assert "FAILED" not in captured

    def test_construct_on_torus(self, capsys):
        exit_code = main(
            ["construct", "--faults", "15", "--width", "12", "--torus"]
        )
        assert exit_code == 0
        assert "torus" in capsys.readouterr().out

    def test_experiments_index(self, capsys):
        assert main(["experiments"]) == 0
        captured = capsys.readouterr().out
        assert "fig9a" in captured and "fig11b" in captured

    def test_experiments_single_key(self, capsys):
        assert main(["experiments", "fig10a"]) == 0
        captured = capsys.readouterr().out
        assert "Figure 10(a)" in captured
        assert "bench_fig10_region_size.py" in captured
