"""Unit tests for the construction verification utilities."""

import pytest

from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.core.regions import FaultRegion
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.core.verify import (
    VerificationReport,
    compare_constructions_report,
    verify_coverage,
    verify_faulty_blocks,
    verify_minimality,
    verify_orthogonal_convexity,
)
from repro.faults.scenario import generate_scenario


@pytest.fixture
def scenario():
    return generate_scenario(num_faults=70, width=25, model="clustered", seed=4)


@pytest.fixture
def constructions(scenario):
    topology = scenario.topology()
    return {
        "FB": build_faulty_blocks(scenario.faults, topology=topology),
        "FP": build_sub_minimum_polygons(scenario.faults, topology=topology),
        "MFP": build_minimum_polygons(scenario.faults, topology=topology),
    }


class TestVerificationReport:
    def test_empty_report_is_ok(self):
        report = VerificationReport()
        assert report.ok
        assert "0/0" in report.summary()

    def test_failure_recorded_with_detail(self):
        report = VerificationReport()
        report.record("check A", True)
        report.record("check B", False, "something broke")
        assert not report.ok
        assert "check B: something broke" in report.failures
        assert "FAILED" in report.summary()


class TestVerifiers:
    def test_real_constructions_pass(self, scenario, constructions):
        assert verify_faulty_blocks(constructions["FB"], scenario.faults).ok
        assert verify_orthogonal_convexity(constructions["FP"], scenario.faults).ok
        assert verify_minimality(constructions["MFP"], scenario.faults).ok

    def test_cross_model_report_passes(self, scenario, constructions):
        report = compare_constructions_report(
            constructions["FB"], constructions["FP"], constructions["MFP"],
            scenario.faults,
        )
        assert report.ok

    def test_missing_fault_detected(self):
        regions = [FaultRegion(0, frozenset({(0, 0)}), frozenset({(0, 0)}))]
        report = verify_coverage(regions, [(0, 0), (5, 5)])
        assert not report.ok
        assert any("all faults covered" in failure for failure in report.failures)

    def test_overlapping_regions_detected(self):
        regions = [
            FaultRegion(0, frozenset({(0, 0), (0, 1)}), frozenset({(0, 0)})),
            FaultRegion(1, frozenset({(0, 1), (0, 2)}), frozenset({(0, 2)})),
        ]
        report = verify_coverage(regions, [(0, 0), (0, 2)])
        assert not report.ok

    def test_non_rectangular_block_detected(self):
        l_shape = FaultRegion(
            0, frozenset({(0, 0), (1, 0), (0, 1)}), frozenset({(0, 0)})
        )
        report = verify_faulty_blocks([l_shape], [(0, 0)])
        assert not report.ok

    def test_non_convex_polygon_detected(self):
        u_shape = FaultRegion(
            0,
            frozenset({(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)}),
            frozenset({(0, 0)}),
        )
        report = verify_orthogonal_convexity([u_shape], [(0, 0)])
        assert not report.ok

    def test_non_minimal_construction_detected(self):
        # A faulty-block construction is convex but not minimal: it disables
        # the bounding box instead of the hull.
        faults = [(0, 0), (2, 2)]  # two diagonalish faults, not adjacent
        fb = build_faulty_blocks(faults, width=10)
        report = verify_minimality(fb, faults)
        # Either the blocks already equal the hulls (if the faults stayed
        # separate) or the minimality check flags the extra nodes; with
        # these two faults scheme 1 keeps them separate so it passes --
        # use a genuinely inflated region instead.
        inflated = [
            FaultRegion(
                0,
                frozenset({(0, 0), (0, 1), (1, 0), (1, 1)}),
                frozenset({(0, 0)}),
            )
        ]
        assert not verify_minimality(inflated, [(0, 0)]).ok
        assert report.checks  # the FB report ran its checks either way


class TestMinimalityWithMergedRegions:
    def test_verify_accepts_hull_filled_merged_regions(self):
        """Regression: verify_minimality must apply the same merged-region
        convexity fill as the assembles (repro-mesh verify exited 1 on
        scenarios where piled polygons merged into a non-convex region)."""
        from repro.core.mfp import build_minimum_polygons
        from repro.distributed.dmfp import build_minimum_polygons_distributed
        from repro.faults.scenario import generate_scenario

        scenario = generate_scenario(
            num_faults=80, width=20, model="clustered", seed=21
        )
        topology = scenario.topology()
        mfp = build_minimum_polygons(
            scenario.faults, topology=topology, compute_rounds=False
        )
        dmfp = build_minimum_polygons_distributed(scenario.faults, topology=topology)
        assert verify_minimality(mfp, scenario.faults).ok
        assert verify_minimality(dmfp, scenario.faults).ok
