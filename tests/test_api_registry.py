"""Tests for the construction registry (repro.api.registry)."""

import warnings

import pytest

from repro.api import (
    ConstructionResult,
    ConstructionSpec,
    MinimumPolygonOptions,
    available_constructions,
    build_construction,
    construction_keys,
    get_construction,
    register_construction,
)
from repro.api.registry import _ALIASES, _REGISTRY, resolve_inputs
from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import build_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(num_faults=40, width=20, model="clustered", seed=5)


class TestLookup:
    def test_all_four_models_resolvable(self):
        for key in ("fb", "fp", "mfp", "dmfp"):
            spec = get_construction(key)
            assert spec.key == key

    def test_cmfp_registered_too(self):
        assert get_construction("cmfp").label == "CMFP"

    def test_lookup_is_case_insensitive(self):
        assert get_construction("MFP") is get_construction("mfp")
        assert get_construction("Fb") is get_construction("fb")

    def test_aliases_resolve(self):
        assert get_construction("faulty-block") is get_construction("fb")
        assert get_construction("distributed") is get_construction("dmfp")
        assert get_construction("minimum_polygons") is get_construction("mfp")

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(KeyError, match="fb"):
            get_construction("nope")

    def test_available_and_keys(self):
        keys = construction_keys()
        assert ("fb", "fp", "mfp", "cmfp", "dmfp") == keys[:5]
        assert [spec.key for spec in available_constructions()] == list(keys)


class TestUniformBuild:
    def test_build_from_scenario(self, scenario):
        for key in ("fb", "fp", "mfp", "dmfp"):
            result = get_construction(key).build(scenario)
            assert isinstance(result, ConstructionResult)
            assert result.key == key
            assert result.grid.num_faulty == scenario.num_faults
            assert result.num_regions == len(result.regions)

    def test_build_from_faults_and_topology(self, scenario):
        topology = scenario.topology()
        via_scenario = get_construction("fb").build(scenario)
        via_faults = get_construction("fb").build(scenario.faults, topology)
        assert via_scenario.disabled_set() == via_faults.disabled_set()

    def test_results_match_legacy_builders(self, scenario):
        legacy = {
            "fb": build_faulty_blocks,
            "fp": build_sub_minimum_polygons,
            "mfp": build_minimum_polygons,
            "dmfp": build_minimum_polygons_distributed,
        }
        for key, builder in legacy.items():
            new = get_construction(key).build(scenario)
            old = builder(scenario.faults, topology=scenario.topology())
            assert new.disabled_set() == old.grid.disabled_set()
            assert new.rounds == old.rounds
            assert new.mean_region_size == old.mean_region_size

    def test_default_topology_is_paper_mesh(self):
        result = get_construction("fb").build([(1, 1), (2, 2)])
        assert result.grid.topology.width == 100

    def test_option_overrides_as_keywords(self, scenario):
        fast = get_construction("mfp").build(scenario, compute_rounds=False)
        full = get_construction("mfp").build(scenario, compute_rounds=True)
        assert fast.rounds == 0
        assert full.rounds > 0
        assert fast.disabled_set() == full.disabled_set()

    def test_via_labelling_matches_hull(self, scenario):
        hull = get_construction("mfp").build(scenario)
        labelled = get_construction("mfp").build(scenario, via_labelling=True)
        assert hull.disabled_set() == labelled.disabled_set()

    def test_explicit_options_object(self, scenario):
        options = MinimumPolygonOptions(compute_rounds=False)
        result = get_construction("mfp").build(scenario, options=options)
        assert result.options == options

    def test_wrong_options_type_rejected(self, scenario):
        with pytest.raises(TypeError):
            get_construction("fb").build(
                scenario, options=MinimumPolygonOptions()
            )

    def test_unknown_option_field_rejected(self, scenario):
        with pytest.raises(TypeError):
            get_construction("mfp").build(scenario, bogus=True)

    def test_build_construction_convenience(self, scenario):
        a = build_construction("fp", scenario)
        b = get_construction("fp").build(scenario)
        assert a.disabled_set() == b.disabled_set()

    def test_cmfp_always_computes_rounds(self, scenario):
        cmfp = get_construction("cmfp").build(scenario)
        mfp = get_construction("mfp").build(scenario)
        assert cmfp.rounds == mfp.rounds > 0
        assert cmfp.disabled_set() == mfp.disabled_set()

    def test_metrics_extraction(self, scenario):
        result = get_construction("fb").build(scenario)
        metrics = result.metrics(num_faults=scenario.num_faults)
        assert metrics.model == "FB"
        assert metrics.disabled_nonfaulty == result.num_disabled_nonfaulty
        relabelled = result.metrics(label="CMFP")
        assert relabelled.model == "CMFP"

    def test_resolve_inputs_scenario_topology_override(self, scenario):
        topology = Mesh2D(30, 30)
        faults, resolved = resolve_inputs(scenario, topology)
        assert resolved is topology
        assert faults == tuple(scenario.faults)


class TestPluggability:
    def test_register_custom_spec(self, scenario):
        spec = ConstructionSpec(
            key="fb-test-custom",
            label="FBX",
            description="test double of fb",
            builder=lambda faults, topology, options: build_faulty_blocks(
                faults, topology=topology
            ),
        )
        try:
            register_construction(spec)
            result = get_construction("fb-test-custom").build(scenario)
            assert result.label == "FBX"
            assert (
                result.disabled_set()
                == get_construction("fb").build(scenario).disabled_set()
            )
        finally:
            _REGISTRY.pop("fb-test-custom", None)

    def test_duplicate_key_rejected(self):
        spec = get_construction("fb")
        with pytest.raises(ValueError):
            register_construction(spec)

    def test_duplicate_key_with_replace(self):
        spec = get_construction("fb")
        register_construction(spec, replace=True)
        assert get_construction("fb") is spec

    def test_alias_table_consistent(self):
        for alias, target in _ALIASES.items():
            assert target in _REGISTRY


class TestDeprecatedShims:
    def test_legacy_names_warn_and_work(self, scenario):
        import repro

        for name in (
            "build_faulty_blocks",
            "build_sub_minimum_polygons",
            "build_minimum_polygons",
            "build_minimum_polygons_distributed",
        ):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                builder = getattr(repro, name)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), name
            construction = builder(scenario.faults, topology=scenario.topology())
            assert construction.grid.num_faulty == scenario.num_faults

    def test_legacy_sim_names_warn(self):
        import repro

        for name in ("compare_constructions", "run_sweep"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                getattr(repro, name)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), name

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.definitely_not_a_name

    def test_canonical_api_names_do_not_warn(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.MeshSession is not None
            assert repro.get_construction("fb") is not None


class TestReplaceSafety:
    """register_construction(replace=True) must not hijack other models."""

    def test_replacement_alias_cannot_shadow_other_primary_key(self):
        spec = ConstructionSpec(
            key="mfp",
            label="MFP",
            description="hijack attempt",
            builder=lambda f, t, o: None,
            aliases=("fb",),
        )
        original = _REGISTRY["mfp"]
        try:
            with pytest.raises(ValueError, match="collides"):
                register_construction(spec, replace=True)
            assert get_construction("fb").key == "fb"
        finally:
            _REGISTRY["mfp"] = original
            # Restore the built-in aliases dropped before the collision check.
            for alias in original.aliases:
                _ALIASES[alias.replace("_", "-")] = "mfp"

    def test_replacement_alias_cannot_shadow_other_alias(self):
        spec = ConstructionSpec(
            key="fp",
            label="FP",
            description="hijack attempt",
            builder=lambda f, t, o: None,
            aliases=("distributed",),  # belongs to dmfp
        )
        original = _REGISTRY["fp"]
        try:
            with pytest.raises(ValueError, match="collides"):
                register_construction(spec, replace=True)
            assert get_construction("distributed").key == "dmfp"
        finally:
            _REGISTRY["fp"] = original
            for alias in original.aliases:
                _ALIASES[alias.replace("_", "-")] = "fp"

    def test_cannot_replace_via_alias_key(self):
        spec = ConstructionSpec(
            key="distributed",  # an alias of dmfp, not a primary key
            label="X",
            description="alias takeover attempt",
            builder=lambda f, t, o: None,
        )
        with pytest.raises(ValueError, match="alias"):
            register_construction(spec, replace=True)

    def test_stale_aliases_of_replaced_spec_are_dropped(self):
        original = _REGISTRY["fp"]
        replacement = ConstructionSpec(
            key="fp",
            label="FP",
            description="no aliases",
            builder=original.builder,
        )
        try:
            register_construction(replacement, replace=True)
            with pytest.raises(KeyError):
                get_construction("sub-minimum")
        finally:
            register_construction(original, replace=True)
        assert get_construction("sub-minimum").key == "fp"

    def test_cmfp_rejects_mfp_only_options(self):
        with pytest.raises(TypeError):
            get_construction("cmfp").build([(1, 1)], Mesh2D(5, 5), via_labelling=True)
