"""Unit tests for the base e-cube routing."""


from repro.routing.ecube import (
    column_message_type,
    ecube_next_hop,
    ecube_path,
    initial_message_type,
    manhattan_distance,
)
from repro.types import MessageType


class TestMessageTypes:
    def test_initial_types(self):
        assert initial_message_type((1, 3), (6, 4)) is MessageType.WE
        assert initial_message_type((6, 4), (1, 3)) is MessageType.EW
        assert initial_message_type((2, 1), (2, 5)) is MessageType.SN
        assert initial_message_type((2, 5), (2, 1)) is MessageType.NS

    def test_column_types(self):
        assert column_message_type((6, 3), (6, 4)) is MessageType.SN
        assert column_message_type((6, 4), (6, 3)) is MessageType.NS

    def test_self_message_defaults(self):
        assert initial_message_type((3, 3), (3, 3)) is MessageType.NS


class TestNextHopAndPath:
    def test_next_hop_prefers_x_dimension(self):
        assert ecube_next_hop((1, 3), (6, 4)) == (2, 3)
        assert ecube_next_hop((6, 3), (6, 4)) == (6, 4)
        assert ecube_next_hop((6, 4), (6, 4)) is None

    def test_next_hop_westwards_and_southwards(self):
        assert ecube_next_hop((5, 5), (2, 5)) == (4, 5)
        assert ecube_next_hop((2, 5), (2, 2)) == (2, 4)

    def test_paper_example_path(self):
        # From (1,3) to (6,4): along the row to (6,3), then up the column.
        path = ecube_path((1, 3), (6, 4))
        assert path[0] == (1, 3)
        assert path[-1] == (6, 4)
        assert (6, 3) in path
        assert len(path) == manhattan_distance((1, 3), (6, 4)) + 1

    def test_path_to_self(self):
        assert ecube_path((4, 4), (4, 4)) == [(4, 4)]

    def test_path_hops_are_adjacent(self):
        path = ecube_path((0, 0), (5, 7))
        for a, b in zip(path, path[1:]):
            assert manhattan_distance(a, b) == 1

    def test_x_before_y_ordering(self):
        path = ecube_path((0, 0), (3, 3))
        # All x movement happens before any y movement.
        ys = [node[1] for node in path[:4]]
        assert ys == [0, 0, 0, 0]

    def test_manhattan_distance(self):
        assert manhattan_distance((0, 0), (3, 4)) == 7
        assert manhattan_distance((2, 2), (2, 2)) == 0
