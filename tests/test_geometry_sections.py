"""Unit tests for repro.geometry.sections (Definition 3)."""

import pytest

from repro.geometry.orthogonal import orthogonal_convex_hull
from repro.geometry.sections import (
    Section,
    concave_column_sections,
    concave_row_sections,
    concave_sections,
    section_nodes,
)


class TestSection:
    def test_row_section_nodes(self):
        section = Section("row", 3, 1, 4)
        assert section.length == 4
        assert section.nodes() == [(1, 3), (2, 3), (3, 3), (4, 3)]

    def test_column_section_nodes(self):
        section = Section("column", 2, 5, 6)
        assert section.nodes() == [(2, 5), (2, 6)]

    def test_end_nodes_row(self):
        section = Section("row", 3, 1, 4)
        assert section.end_nodes() == ((0, 3), (5, 3))

    def test_end_nodes_column(self):
        section = Section("column", 2, 5, 6)
        assert section.end_nodes() == ((2, 4), (2, 7))

    def test_contains(self):
        section = Section("row", 3, 1, 4)
        assert (2, 3) in section
        assert (2, 4) not in section
        assert (0, 3) not in section

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            Section("diagonal", 0, 0, 1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Section("row", 0, 3, 2)


class TestConcaveSections:
    def test_convex_region_has_no_sections(self, figure2_region, plus_shape):
        assert concave_sections(figure2_region) == []
        assert concave_sections(plus_shape) == []

    def test_u_shape_has_two_row_sections(self, u_shape):
        rows = concave_row_sections(u_shape)
        assert rows == [Section("row", 1, 1, 1), Section("row", 2, 1, 1)]
        assert concave_column_sections(u_shape) == []

    def test_o_shape_has_row_and_column_sections(self, o_shape):
        rows = concave_row_sections(o_shape)
        cols = concave_column_sections(o_shape)
        assert Section("row", 1, 1, 2) in rows
        assert Section("row", 2, 1, 2) in rows
        assert Section("column", 1, 1, 2) in cols
        assert Section("column", 2, 1, 2) in cols

    def test_multiple_gaps_in_one_row(self):
        region = {(0, 0), (2, 0), (5, 0)}
        rows = concave_row_sections(region)
        assert rows == [Section("row", 0, 1, 1), Section("row", 0, 3, 4)]

    def test_single_node_per_line_yields_no_section(self):
        region = {(0, 0), (3, 4)}
        assert concave_sections(region) == []

    def test_section_nodes_union(self, o_shape):
        nodes = section_nodes(concave_sections(o_shape))
        assert nodes == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_sections_are_disjoint_from_region(self, u_shape, o_shape):
        for region in (u_shape, o_shape):
            assert not section_nodes(concave_sections(region)) & set(region)

    def test_component_union_sections_equals_hull_for_connected_shapes(
        self, u_shape, o_shape, staircase
    ):
        # For 8-connected components one pass of concave-section filling is
        # already the minimum orthogonal convex hull (the distributed
        # solution relies on this).
        for region in (u_shape, o_shape, staircase):
            union = set(region) | section_nodes(concave_sections(region))
            assert union == set(orthogonal_convex_hull(region))
