"""Unit tests for the minimum faulty polygon constructions (MFP / CMFP)."""


from repro.core.components import find_components
from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import (
    build_minimum_polygons,
    build_minimum_polygons_via_labelling,
    component_minimum_polygon,
    component_polygon_via_labelling,
)
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.geometry.orthogonal import is_orthogonal_convex, orthogonal_convex_hull
from repro.types import FaultRegionModel


class TestComponentPolygon:
    def test_convex_component_needs_no_fill(self, figure2_region):
        component = find_components(figure2_region)[0]
        entry = component_minimum_polygon(component)
        assert entry.polygon == frozenset(figure2_region)
        assert entry.added_nodes == frozenset()

    def test_u_shape_fill(self, u_shape):
        component = find_components(u_shape)[0]
        entry = component_minimum_polygon(component)
        assert entry.added_nodes == {(1, 1), (1, 2)}

    def test_o_shape_fills_the_hole(self, o_shape):
        component = find_components(o_shape)[0]
        entry = component_minimum_polygon(component)
        assert entry.added_nodes == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_labelling_emulation_matches_hull(self, u_shape, o_shape, staircase):
        for shape in (u_shape, o_shape, staircase):
            component = find_components(shape)[0]
            direct = component_minimum_polygon(component)
            emulated = component_polygon_via_labelling(component)
            assert direct.polygon == emulated.polygon

    def test_labelling_emulation_counts_rounds(self, o_shape):
        component = find_components(o_shape)[0]
        emulated = component_polygon_via_labelling(component)
        assert emulated.rounds >= 1
        assert emulated.rounds == emulated.rounds_scheme1 + emulated.rounds_scheme2

    def test_scheme1_grows_component_to_its_bounding_box(self, staircase):
        # The virtual faulty block of a connected component is its bounding
        # box; the emulated scheme 1 must reach the full box.
        import numpy as np

        from repro.core.labelling import apply_labelling_scheme_1

        component = find_components(staircase)[0]
        box = component.bounding_box
        local = np.zeros((box.width, box.height), dtype=bool)
        for x, y in component.nodes:
            local[x - box.min_x, y - box.min_y] = True
        grown = apply_labelling_scheme_1(local)
        assert grown.labels.all()


class TestBuildMinimumPolygons:
    def test_no_faults(self):
        result = build_minimum_polygons([], width=10)
        assert result.regions == []
        assert result.rounds == 0

    def test_model_tag(self):
        result = build_minimum_polygons([(1, 1)], width=8)
        assert result.model is FaultRegionModel.MINIMUM_FAULTY_POLYGON

    def test_regions_are_orthogonal_convex(self):
        scenario = generate_scenario(num_faults=120, width=30, model="clustered", seed=4)
        result = build_minimum_polygons(scenario.faults, topology=scenario.topology())
        assert result.all_orthogonal_convex()

    def test_regions_cover_all_faults(self):
        scenario = generate_scenario(num_faults=80, width=25, seed=6)
        result = build_minimum_polygons(scenario.faults, topology=scenario.topology())
        covered = set().union(*(r.nodes for r in result.regions))
        assert set(scenario.faults) <= covered

    def test_mfp_never_disables_more_than_fp_or_fb(self):
        for seed in range(5):
            scenario = generate_scenario(
                num_faults=90, width=25, model="clustered", seed=seed
            )
            topology = scenario.topology()
            fb = build_faulty_blocks(scenario.faults, topology=topology)
            fp = build_sub_minimum_polygons(scenario.faults, topology=topology)
            mfp = build_minimum_polygons(
                scenario.faults, topology=topology, compute_rounds=False
            )
            assert (
                mfp.num_disabled_nonfaulty
                <= fp.num_disabled_nonfaulty
                <= fb.num_disabled_nonfaulty
            )

    def test_both_centralized_solutions_agree(self):
        for seed in range(4):
            scenario = generate_scenario(
                num_faults=70, width=20, model="clustered", seed=seed
            )
            topology = scenario.topology()
            hull_based = build_minimum_polygons(
                scenario.faults, topology=topology, compute_rounds=False
            )
            labelling_based = build_minimum_polygons_via_labelling(
                scenario.faults, topology=topology
            )
            assert hull_based.grid.disabled_set() == labelling_based.grid.disabled_set()

    def test_per_component_minimality(self):
        # Every per-component polygon is exactly the minimum orthogonal
        # convex hull of the component: no smaller orthogonal convex region
        # can cover its faults.
        scenario = generate_scenario(num_faults=60, width=20, model="clustered", seed=8)
        result = build_minimum_polygons(
            scenario.faults, topology=scenario.topology(), compute_rounds=False
        )
        for entry in result.component_polygons:
            hull = orthogonal_convex_hull(entry.component.nodes)
            assert entry.polygon == hull
            assert is_orthogonal_convex(entry.polygon)

    def test_figure4_two_minimum_polygons(self, figure4_faults):
        result = build_minimum_polygons(figure4_faults, width=10, compute_rounds=False)
        assert len(result.components) == 2
        assert result.num_disabled_nonfaulty == 0
        assert len(result.regions) == 2

    def test_cmfp_rounds_do_not_exceed_whole_network_labelling(self):
        # The per-component emulation is bounded by the component extent, so
        # CMFP never needs more rounds than FP's whole-network labelling.
        for seed in range(3):
            scenario = generate_scenario(
                num_faults=90, width=30, model="clustered", seed=seed
            )
            topology = scenario.topology()
            fp = build_sub_minimum_polygons(scenario.faults, topology=topology)
            mfp = build_minimum_polygons(scenario.faults, topology=topology)
            assert mfp.rounds <= fp.rounds

    def test_compute_rounds_flag(self):
        result = build_minimum_polygons([(0, 0), (1, 1)], width=8, compute_rounds=False)
        assert result.rounds == 0
        result = build_minimum_polygons([(0, 0), (1, 1)], width=8, compute_rounds=True)
        assert result.rounds >= 0

    def test_overlapping_component_hulls_pile_correctly(self):
        # Component A's concave section passes through component B's nodes:
        # the superseding rule must keep B's faults black and still disable
        # the non-faulty section nodes.
        faults = [
            # component A: a C-shape whose concave row sections span x=3..4
            (2, 2), (2, 3), (2, 4), (5, 2), (5, 4), (3, 2), (4, 2), (3, 4), (4, 4),
            # component B: a single fault sitting inside A's concave region
            # (not 8-adjacent to any A node)
            (7, 7),
        ]
        result = build_minimum_polygons(faults, width=12, compute_rounds=False)
        disabled = result.grid.disabled_set()
        assert (3, 3) in disabled and (4, 3) in disabled
        assert result.grid.is_faulty((7, 7))


class TestPiledRegionConvexity:
    """Piled polygons that merge must still form orthogonal convex regions.

    Regression for a bug found by the hypothesis suite: a singleton
    component 8-adjacent to another component's hull produced a merged
    region that was not orthogonal convex (violating what the extended
    e-cube router requires).  The assembles now fill such merged regions
    to their hulls (fixpoint).
    """

    FAULTS = sorted({(4, 4), (4, 0), (3, 1), (3, 3), (5, 0), (2, 2), (5, 2)})

    def test_centralized_regions_convex_after_merge(self):
        mfp = build_minimum_polygons(
            self.FAULTS, topology=Mesh2D(12, 12), compute_rounds=False
        )
        assert all(r.is_orthogonal_convex for r in mfp.regions)

    def test_distributed_matches_centralized_after_merge(self):
        from repro.distributed.dmfp import build_minimum_polygons_distributed

        mfp = build_minimum_polygons(
            self.FAULTS, topology=Mesh2D(12, 12), compute_rounds=False
        )
        dmfp = build_minimum_polygons_distributed(
            self.FAULTS, topology=Mesh2D(12, 12)
        )
        assert all(r.is_orthogonal_convex for r in dmfp.regions)
        assert dmfp.grid.disabled_set() == mfp.grid.disabled_set()

    def test_incremental_session_matches_after_merge(self):
        from repro.api import MeshSession, get_construction

        session = MeshSession(topology=Mesh2D(12, 12))
        for fault in self.FAULTS:
            session.add_fault(fault)
        for key in ("mfp", "dmfp"):
            incremental = session.build(key)
            oneshot = get_construction(key).build(self.FAULTS, Mesh2D(12, 12))
            assert incremental.disabled_set() == oneshot.disabled_set()
            assert all(r.is_orthogonal_convex for r in incremental.regions)
