"""Unit tests for the rectangular faulty block model (FB)."""

import pytest

from repro.core.faulty_block import (
    build_faulty_blocks,
    build_faulty_blocks_for_scenario,
)
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.types import FaultRegionModel


class TestBuildFaultyBlocks:
    def test_no_faults(self):
        result = build_faulty_blocks([], width=10)
        assert result.regions == []
        assert result.num_disabled_nonfaulty == 0
        assert result.rounds == 0
        assert result.mean_region_size == 0.0

    def test_model_tag(self):
        result = build_faulty_blocks([(1, 1)], width=8)
        assert result.model is FaultRegionModel.FAULTY_BLOCK

    def test_single_fault_is_its_own_block(self):
        result = build_faulty_blocks([(3, 3)], width=8)
        assert len(result.regions) == 1
        assert result.regions[0].size == 1
        assert result.num_disabled_nonfaulty == 0

    def test_diagonal_faults_grow_a_2x2_block(self):
        result = build_faulty_blocks([(2, 2), (3, 3)], width=8)
        assert len(result.regions) == 1
        assert result.regions[0].size == 4
        assert result.num_disabled_nonfaulty == 2
        assert result.all_rectangular()

    def test_every_block_is_a_rectangle(self):
        scenario = generate_scenario(num_faults=120, width=30, model="clustered", seed=5)
        result = build_faulty_blocks_for_scenario(scenario)
        assert result.all_rectangular()

    def test_blocks_are_disjoint_and_cover_all_faults(self):
        scenario = generate_scenario(num_faults=80, width=25, seed=11)
        result = build_faulty_blocks_for_scenario(scenario)
        covered = set()
        for block in result.blocks:
            assert not (covered & block.nodes)
            covered |= block.nodes
        assert set(scenario.faults) <= covered

    def test_unsafe_equals_disabled_under_fb(self):
        result = build_faulty_blocks([(1, 1), (2, 2), (4, 4)], width=10)
        assert result.grid.unsafe_set() == result.grid.disabled_set()

    def test_figure4_faults_form_a_single_block(self, figure4_faults):
        result = build_faulty_blocks(figure4_faults, width=10)
        assert len(result.regions) == 1
        # The merged block contains several sacrificed non-faulty nodes.
        assert result.num_disabled_nonfaulty > 0

    def test_explicit_topology_object(self):
        topology = Mesh2D(12, 9)
        result = build_faulty_blocks([(11, 8)], topology=topology)
        assert result.grid.topology is topology

    def test_mean_region_size(self):
        result = build_faulty_blocks([(0, 0), (5, 5), (6, 6)], width=10)
        sizes = sorted(r.size for r in result.regions)
        assert sizes == [1, 4]
        assert result.mean_region_size == pytest.approx(2.5)
