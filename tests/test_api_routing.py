"""Tests for the unified routing API (router registry, RoutingSession,
SweepExecutor routing sweeps) and the legacy RoutingSimulator shim."""


import pytest

from repro.api import (
    MeshSession,
    MissingRouteResultsError,
    RouterSpec,
    SweepExecutor,
    get_router,
    register_router,
    router_keys,
    run_routing_trial,
)
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.routing.registry import ECubeRouter, ExtendedECubeOptions
from repro.routing.simulator import RoutingSimulator
from repro.sim.experiments import run_routing_sweep
from repro.sim.figures import routing_series


@pytest.fixture
def clustered_session():
    scenario = generate_scenario(num_faults=50, width=20, model="clustered", seed=13)
    return MeshSession.from_scenario(scenario)


def _stats_fingerprint(stats):
    return (
        stats.attempted,
        stats.delivered,
        stats.failed,
        stats.total_hops,
        stats.total_detour,
        stats.minimal_routes,
        stats.abnormal_routes,
    )


class TestRouterRegistry:
    def test_builtin_routers_registered(self):
        assert set(router_keys()) >= {"ecube", "extended-ecube"}
        assert get_router("extended") is get_router("extended-ecube")
        assert get_router("XY") is get_router("ecube")

    def test_unknown_router_lists_registered(self):
        with pytest.raises(KeyError, match="extended-ecube"):
            get_router("wormhole")

    def test_build_from_construction_result(self, clustered_session):
        result = clustered_session.build("mfp")
        router = get_router("extended-ecube").build(result)
        assert router.topology == clustered_session.topology
        assert router.num_enabled == 400 - len(router.disabled)
        some_disabled = next(iter(router.disabled))
        assert router.region_of(some_disabled) >= 0

    def test_build_from_explicit_regions(self, figure2_region):
        router = get_router("ecube").build(
            regions=[figure2_region], topology=Mesh2D(10, 10)
        )
        assert isinstance(router, ECubeRouter)
        assert router.is_disabled((2, 4))

    def test_build_requires_regions_or_construction(self):
        with pytest.raises(ValueError, match="construction result or explicit"):
            get_router("ecube").build(topology=Mesh2D(5, 5))

    def test_option_overrides(self, clustered_session):
        result = clustered_session.build("mfp")
        router = get_router("extended-ecube").build(result, max_hops=3)
        assert router.max_hops == 3
        with pytest.raises(TypeError, match="ExtendedECubeOptions"):
            get_router("ecube").build(result, options=ExtendedECubeOptions())

    def test_duplicate_registration_rejected(self):
        spec = get_router("ecube")
        with pytest.raises(ValueError, match="already registered"):
            register_router(
                RouterSpec(
                    key="ecube",
                    label="EC2",
                    description="clash",
                    builder=spec.builder,
                )
            )

    def test_ecube_baseline_never_beats_extended(self, clustered_session):
        extended = clustered_session.route("mfp", messages=300, seed=2)
        baseline = clustered_session.route("mfp", router="ecube", messages=300, seed=2)
        assert baseline.delivered <= extended.delivered
        assert baseline.abnormal_routes == 0


class TestRoutingSession:
    def test_route_returns_annotated_stats(self, clustered_session):
        stats = clustered_session.route("mfp", traffic="transpose", messages=120, seed=3)
        assert stats.attempted == 120
        assert stats.model == "MFP"
        assert stats.traffic == "transpose"
        assert stats.router == "extended-ecube"
        assert stats.enabled > 0
        assert 0.0 <= stats.delivery_rate <= 1.0

    def test_routers_cached_until_faults_change(self, clustered_session):
        first = clustered_session.router()
        assert clustered_session.router() is first
        hits = clustered_session.cache_info["router_hits"]
        assert hits >= 1
        clustered_session.add_faults([(0, 0)])
        assert clustered_session.router() is not first

    def test_route_reflects_fault_updates(self, clustered_session):
        before = clustered_session.route("mfp", messages=100, seed=1)
        clustered_session.add_faults([(10, 2), (10, 3), (11, 2)])
        after = clustered_session.route("mfp", messages=100, seed=1)
        assert after.enabled < before.enabled

    def test_route_is_deterministic_per_seed(self, clustered_session):
        a = clustered_session.route("fp", traffic="hotspot", messages=150, seed=9)
        b = clustered_session.route("fp", traffic="hotspot", messages=150, seed=9)
        assert _stats_fingerprint(a) == _stats_fingerprint(b)

    def test_route_on_torus_session(self):
        scenario = generate_scenario(
            num_faults=20, width=12, model="clustered", seed=4, torus=True
        )
        session = MeshSession.from_scenario(scenario)
        stats = session.route("mfp", messages=80, seed=1)
        assert stats.attempted == 80
        assert stats.delivery_rate > 0.0

    def test_traffic_option_overrides_forwarded(self, clustered_session):
        default = clustered_session.route(
            "mfp", traffic="nearest-neighbour", messages=100, seed=2
        )
        wider = clustered_session.route(
            "mfp", traffic="nearest-neighbour", messages=100, seed=2, radius=2
        )
        # Radius 1 sends over single links only; the override must widen it.
        assert default.mean_hops == 1.0 and default.mean_detour == 0.0
        assert wider.attempted == 100
        assert wider.mean_hops > 1.0


class TestDeadlockFootgun:
    def test_check_deadlock_auto_enables_collection(self, clustered_session):
        stats = clustered_session.route("mfp", messages=80, seed=5, check_deadlock=True)
        assert stats.results  # collection was enabled automatically
        assert stats.deadlock_free() in (True, False)

    def test_structured_error_without_results(self, clustered_session):
        stats = clustered_session.route("mfp", messages=80, seed=5)
        assert stats.results == []
        with pytest.raises(MissingRouteResultsError, match="collect_results"):
            stats.deadlock_free()
        # The structured error still satisfies legacy ValueError handlers.
        assert issubclass(MissingRouteResultsError, ValueError)

    def test_legacy_run_check_deadlock_auto_collects(self, figure2_region):
        with pytest.warns(DeprecationWarning):
            simulator = RoutingSimulator(Mesh2D(10, 10), [figure2_region], seed=4)
        stats = simulator.run(50, check_deadlock=True)
        assert stats.results
        assert simulator.deadlock_free(stats) in (True, False)


class TestLegacySimulatorShim:
    def test_constructor_and_from_construction_warn(self, clustered_session):
        result = clustered_session.build("mfp")
        with pytest.warns(DeprecationWarning, match="MeshSession.route"):
            RoutingSimulator(clustered_session.topology, result.regions)
        with pytest.warns(DeprecationWarning, match="from_construction"):
            RoutingSimulator.from_construction(result)

    def test_legacy_uniform_stats_identical_to_session(self, clustered_session):
        result = clustered_session.build("mfp")
        with pytest.warns(DeprecationWarning):
            simulator = RoutingSimulator.from_construction(result, seed=21)
        legacy = simulator.run(250)
        session_stats = clustered_session.route(
            "mfp", traffic="uniform", messages=250, seed=21
        )
        assert _stats_fingerprint(legacy) == _stats_fingerprint(session_stats)
        assert legacy.enabled == session_stats.enabled


class TestRoutingSweeps:
    def test_two_runs_bit_identical(self):
        kwargs = dict(
            fault_counts=[15, 30],
            trials=2,
            width=16,
            distribution="clustered",
            traffic="permutation",
            messages=60,
        )
        def fingerprint(points):
            return [
                [
                    (point.mean_delivery_rate(m), point.mean_hops(m), point.mean_detour(m))
                    for m in point.models()
                ]
                for point in points
            ]

        assert fingerprint(run_routing_sweep(**kwargs)) == fingerprint(
            run_routing_sweep(**kwargs)
        )

    def test_serial_equals_parallel(self):
        kwargs = dict(fault_counts=[20], trials=2, width=16, messages=50)
        serial = run_routing_sweep(workers=1, **kwargs)
        parallel = run_routing_sweep(workers=2, **kwargs)
        for a, b in zip(serial, parallel):
            assert a.num_faults == b.num_faults
            for model in a.models():
                assert a.mean_delivery_rate(model) == b.mean_delivery_rate(model)
                assert a.mean_hops(model) == b.mean_hops(model)

    def test_pluggable_reducer(self):
        seen = []

        def reducer(num_faults, distribution, trials):
            seen.append((num_faults, distribution, len(trials)))
            return num_faults

        points = SweepExecutor(models=("fb",), workers=1).run_routing(
            [10, 20], trials=2, width=14, messages=30, reducer=reducer
        )
        assert points == [10, 20]
        assert seen == [(10, "random", 2), (20, "random", 2)]

    def test_trial_spec_round_trip(self):
        executor = SweepExecutor(models=("fb", "mfp"), workers=1)
        specs = executor.plan_routing(
            [12], 2, width=14, traffic="transpose", messages=40
        )
        assert len(specs) == 2
        assert specs[0].seed != specs[1].seed
        metrics = run_routing_trial(specs[0])
        assert set(metrics.per_model) == {"FB", "MFP"}
        assert metrics.traffic == "transpose"

    def test_bad_traffic_key_fails_before_dispatch(self):
        with pytest.raises(KeyError, match="unknown traffic"):
            SweepExecutor(models=("fb",)).plan_routing([10], 1, traffic="nope")

    def test_worker_reregisters_custom_traffic(self):
        """A trial spec carries its traffic spec so workers whose fresh
        registry lacks a custom workload can re-register it (regression:
        previously only construction specs were carried)."""
        from repro.api import RoutingTrialSpec, get_construction
        from repro.api.executor import _custom_traffic_for_tests
        from repro.routing.traffic import TrafficSpec, _WORKLOADS

        spec_obj = TrafficSpec(
            key="custom-traffic-test",
            label="CT",
            description="worker re-registration test",
            generator=_custom_traffic_for_tests,
        )
        trial = RoutingTrialSpec(
            num_faults=8,
            seed=1,
            width=12,
            models=("fb",),
            traffic="custom-traffic-test",
            messages=20,
            specs=(get_construction("fb"),),
            traffic_spec=spec_obj,
        )
        assert "custom-traffic-test" not in _WORKLOADS.specs
        try:
            metrics = run_routing_trial(trial)
            assert metrics.traffic == "custom-traffic-test"
            assert metrics.per_model["FB"].attempted == 20
        finally:
            _WORKLOADS.specs.pop("custom-traffic-test", None)

    def test_routing_series_from_points(self):
        points = run_routing_sweep(
            fault_counts=[10, 20], trials=1, width=14, messages=40
        )
        figure = routing_series(metric="delivery_rate", points=points)
        assert figure.x_values == [10, 20]
        assert set(figure.series) == {"FB", "FP", "MFP"}
        with pytest.raises(KeyError, match="unknown routing metric"):
            routing_series(metric="nope", points=points)
