"""Unit tests for repro.geometry.orthogonal (Definition 1 and the hull)."""


from repro.geometry.orthogonal import (
    hull_fill_nodes,
    is_orthogonal_convex,
    orthogonal_convex_hull,
    orthogonal_convexity_violations,
)
from repro.geometry.rectangle import Rectangle


class TestIsOrthogonalConvex:
    def test_empty_region_is_convex(self):
        assert is_orthogonal_convex(set())

    def test_single_node_is_convex(self):
        assert is_orthogonal_convex({(3, 3)})

    def test_rectangle_is_convex(self):
        assert is_orthogonal_convex(Rectangle(0, 0, 3, 2).node_set())

    def test_l_shape_is_convex(self, figure2_region):
        # The paper calls {(2,4), (3,4), (4,3)} an L-shape polygon.
        assert is_orthogonal_convex(figure2_region)

    def test_plus_shape_is_convex(self, plus_shape):
        assert is_orthogonal_convex(plus_shape)

    def test_t_shape_is_convex(self):
        t_shape = {(0, 1), (1, 1), (2, 1), (1, 0)}
        assert is_orthogonal_convex(t_shape)

    def test_u_shape_is_not_convex(self, u_shape):
        assert not is_orthogonal_convex(u_shape)

    def test_h_shape_is_not_convex(self):
        h_shape = {
            (0, 0), (0, 1), (0, 2),
            (2, 0), (2, 1), (2, 2),
            (1, 1),
        }
        assert not is_orthogonal_convex(h_shape)

    def test_o_shape_is_not_convex(self, o_shape):
        assert not is_orthogonal_convex(o_shape)

    def test_staircase_is_convex(self, staircase):
        # Diagonal contact never violates the horizontal/vertical rule.
        assert is_orthogonal_convex(staircase)

    def test_disconnected_nodes_are_convex_when_lines_do_not_cross(self):
        assert is_orthogonal_convex({(0, 0), (5, 5)})

    def test_disconnected_nodes_on_same_row_are_not_convex(self):
        assert not is_orthogonal_convex({(0, 0), (5, 0)})


class TestViolations:
    def test_convex_region_has_no_violations(self, plus_shape):
        assert orthogonal_convexity_violations(plus_shape) == set()

    def test_u_shape_violations_are_the_slot(self, u_shape):
        assert orthogonal_convexity_violations(u_shape) == {(1, 1), (1, 2)}

    def test_row_gap(self):
        assert orthogonal_convexity_violations({(0, 3), (4, 3)}) == {
            (1, 3), (2, 3), (3, 3),
        }


class TestOrthogonalConvexHull:
    def test_hull_of_empty_is_empty(self):
        assert orthogonal_convex_hull(set()) == frozenset()

    def test_hull_of_convex_region_is_itself(self, figure2_region):
        assert orthogonal_convex_hull(figure2_region) == frozenset(figure2_region)

    def test_hull_fills_u_shape_slot(self, u_shape):
        hull = orthogonal_convex_hull(u_shape)
        assert hull == frozenset(u_shape) | {(1, 1), (1, 2)}

    def test_hull_fills_o_shape_hole(self, o_shape):
        hull = orthogonal_convex_hull(o_shape)
        assert hull == frozenset(Rectangle(0, 0, 3, 3).node_set())

    def test_hull_is_orthogonal_convex(self, u_shape, o_shape, staircase):
        for region in (u_shape, o_shape, staircase, {(0, 0), (3, 1), (1, 4)}):
            assert is_orthogonal_convex(orthogonal_convex_hull(region))

    def test_hull_is_superset(self, o_shape):
        assert frozenset(o_shape) <= orthogonal_convex_hull(o_shape)

    def test_hull_is_idempotent(self, u_shape):
        hull = orthogonal_convex_hull(u_shape)
        assert orthogonal_convex_hull(hull) == hull

    def test_hull_requires_iteration_when_fills_cascade(self):
        # Filling the row gap of the top row exposes a new column gap:
        # the single-pass fill of a *disconnected* set is not always enough,
        # which is exactly why the hull iterates to a fixed point.
        region = {(0, 2), (2, 2), (0, 0), (1, 0), (2, 0), (1, 4)}
        hull = orthogonal_convex_hull(region)
        assert (1, 2) in hull          # row fill of the top row
        assert {(1, 1), (1, 3)} <= hull  # column fills exposed by it
        assert is_orthogonal_convex(hull)

    def test_hull_never_exceeds_bounding_box(self, u_shape):
        hull = orthogonal_convex_hull(u_shape)
        box = Rectangle.from_nodes(u_shape)
        assert all(node in box for node in hull)

    def test_fill_nodes_are_the_non_member_part_of_the_hull(self, u_shape):
        fill = hull_fill_nodes(u_shape)
        assert fill == {(1, 1), (1, 2)}
        assert not (fill & set(u_shape))

    def test_hull_minimality_against_explicit_supersets(self, u_shape):
        # Any orthogonal convex superset must contain the hull.
        hull = orthogonal_convex_hull(u_shape)
        box = Rectangle.from_nodes(u_shape).node_set()
        assert is_orthogonal_convex(box)
        assert hull <= box
