"""Unit tests for repro.geometry.boundary (boundary nodes and the ring walk)."""

import pytest

from repro.geometry.boundary import (
    boundary_nodes,
    boundary_ring,
    eight_neighbours,
    four_neighbours,
    region_perimeter,
    ring_length,
    ring_members,
    southwest_outer_corner,
)
from repro.types import Side


class TestNeighbourhoods:
    def test_four_neighbours(self):
        assert set(four_neighbours((2, 3))) == {(2, 4), (3, 3), (2, 2), (1, 3)}

    def test_eight_neighbours(self):
        neighbours = eight_neighbours((0, 0))
        assert len(neighbours) == 8
        assert (1, 1) in neighbours and (-1, -1) in neighbours
        assert (0, 0) not in neighbours


class TestBoundaryNodes:
    def test_single_node_boundary_sides(self):
        sides = boundary_nodes({(2, 2)})
        assert sides[(2, 3)] == {Side.NORTH}
        assert sides[(2, 1)] == {Side.SOUTH}
        assert sides[(3, 2)] == {Side.EAST}
        assert sides[(1, 2)] == {Side.WEST}
        assert len(sides) == 4

    def test_node_with_multiple_sides(self):
        # A node wedged between two component nodes holds both sides, like
        # node (1, 2) in the paper's Figure 8 discussion.
        region = {(0, 0), (2, 0)}
        sides = boundary_nodes(region)
        assert sides[(1, 0)] == {Side.EAST, Side.WEST}

    def test_slot_node_has_three_sides(self, u_shape):
        sides = boundary_nodes(u_shape)
        assert sides[(1, 1)] == {Side.EAST, Side.WEST, Side.NORTH}

    def test_ring_members_include_outer_corners(self):
        members = ring_members({(2, 2)})
        assert (1, 1) in members
        assert members[(1, 1)].is_outer_corner
        assert not members[(1, 2)].is_outer_corner
        assert len(members) == 8


class TestPerimeter:
    def test_single_node_perimeter(self):
        assert region_perimeter({(0, 0)}) == 4

    def test_domino_perimeter(self):
        assert region_perimeter({(0, 0), (1, 0)}) == 6

    def test_square_perimeter(self):
        square = {(x, y) for x in range(3) for y in range(3)}
        assert region_perimeter(square) == 12


class TestBoundaryRing:
    def test_empty_region_has_empty_ring(self):
        assert boundary_ring(set()) == []

    def test_single_node_ring(self):
        ring = boundary_ring({(5, 5)})
        assert len(ring) == 8
        assert set(ring) == set(eight_neighbours((5, 5)))

    def test_ring_steps_are_adjacent(self, u_shape, o_shape, figure2_region):
        for region in (u_shape, o_shape, figure2_region, {(0, 0), (1, 1)}):
            ring = boundary_ring(region)
            cyclic = ring + [ring[0]]
            for a, b in zip(cyclic, cyclic[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_ring_avoids_region(self, o_shape):
        assert not set(boundary_ring(o_shape)) & set(o_shape)

    def test_ring_surrounds_region(self, figure2_region):
        # Every 4-adjacent outside node of the region appears in the walk.
        ring = set(boundary_ring(figure2_region))
        assert set(boundary_nodes(figure2_region)) <= ring

    def test_ring_visits_slot_nodes_twice(self, u_shape):
        # The initiation message enters a 1-wide slot and must come back out
        # the same way, so the slot nodes appear twice (Figure 5(b)).
        ring = boundary_ring(u_shape)
        assert ring.count((1, 2)) == 2

    def test_ring_length_grows_with_region_size(self):
        small = ring_length({(0, 0)})
        large = ring_length({(x, 0) for x in range(5)})
        assert large > small

    def test_diagonally_connected_component_has_single_ring(self):
        ring = boundary_ring({(0, 0), (1, 1)})
        assert set(boundary_nodes({(0, 0), (1, 1)})) <= set(ring)


class TestSouthwestCorner:
    def test_rectangle_corner(self):
        square = {(x, y) for x in range(2, 4) for y in range(5, 7)}
        assert southwest_outer_corner(square) == (1, 4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            southwest_outer_corner(set())
