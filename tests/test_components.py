"""Unit tests for the merge process (repro.core.components)."""

import pytest

from repro.core.components import (
    FaultComponent,
    component_of,
    component_statistics,
    find_components,
    largest_component,
)
from repro.geometry.rectangle import Rectangle


class TestFaultComponent:
    def test_empty_component_rejected(self):
        with pytest.raises(ValueError):
            FaultComponent(index=0, nodes=frozenset())

    def test_bounding_box_and_coordinates(self):
        component = FaultComponent(0, frozenset({(2, 3), (4, 5), (3, 3)}))
        assert component.bounding_box == Rectangle(2, 3, 4, 5)
        assert (component.min_x, component.min_y) == (2, 3)
        assert (component.max_x, component.max_y) == (4, 5)
        assert component.extent == 3

    def test_membership_iteration_and_size(self):
        component = FaultComponent(0, frozenset({(1, 1), (1, 2)}))
        assert (1, 1) in component
        assert (2, 2) not in component
        assert list(component) == [(1, 1), (1, 2)]
        assert len(component) == 2

    def test_is_adjacent_uses_definition_2(self):
        component = FaultComponent(0, frozenset({(2, 2)}))
        assert component.is_adjacent((3, 3))
        assert component.is_adjacent((1, 2))
        assert not component.is_adjacent((4, 2))
        assert not component.is_adjacent((2, 2))  # members are not adjacent

    def test_perimeter(self):
        component = FaultComponent(0, frozenset({(0, 0), (1, 0)}))
        assert component.perimeter == 6


class TestFindComponents:
    def test_no_faults(self):
        assert find_components([]) == []

    def test_single_fault(self):
        components = find_components([(3, 3)])
        assert len(components) == 1
        assert components[0].nodes == frozenset({(3, 3)})

    def test_diagonal_faults_merge(self):
        components = find_components([(0, 0), (1, 1)])
        assert len(components) == 1

    def test_knight_move_faults_stay_separate(self):
        components = find_components([(0, 0), (1, 2)])
        assert len(components) == 2

    def test_without_diagonal_adjacency(self):
        components = find_components([(0, 0), (1, 1)], diagonal=False)
        assert len(components) == 2

    def test_figure4_has_two_components(self, figure4_faults):
        components = find_components(figure4_faults)
        assert len(components) == 2
        sizes = sorted(c.size for c in components)
        assert sizes == [2, 4]

    def test_component_indices_are_sequential_and_deterministic(self):
        faults = [(5, 5), (0, 0), (9, 9), (1, 1)]
        components = find_components(faults)
        assert [c.index for c in components] == list(range(len(components)))
        again = find_components(list(reversed(faults)))
        assert [c.nodes for c in components] == [c.nodes for c in again]

    def test_components_partition_the_fault_set(self, figure3_faults):
        components = find_components(figure3_faults)
        union = set()
        total = 0
        for component in components:
            assert not (union & component.nodes)
            union |= component.nodes
            total += component.size
        assert union == set(figure3_faults)
        assert total == len(set(figure3_faults))

    def test_long_snake_is_one_component(self):
        snake = [(x, x // 2) for x in range(20)]
        assert len(find_components(snake)) == 1


class TestComponentHelpers:
    def test_component_of(self, figure4_faults):
        components = find_components(figure4_faults)
        assert component_of(components, (2, 2)) is components[0]
        assert component_of(components, (4, 5)) is components[1]
        assert component_of(components, (9, 9)) is None

    def test_largest_component(self, figure4_faults):
        components = find_components(figure4_faults)
        assert largest_component(components).size == 4
        assert largest_component([]) is None

    def test_statistics(self, figure4_faults):
        stats = component_statistics(find_components(figure4_faults))
        assert stats["count"] == 2
        assert stats["max_size"] == 4
        assert stats["mean_size"] == 3.0
        assert stats["max_extent"] >= 2

    def test_statistics_empty(self):
        stats = component_statistics([])
        assert stats["count"] == 0
        assert stats["mean_size"] == 0.0
