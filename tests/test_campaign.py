"""Campaign fabric tests: content identity, store crash-safety, resume.

The load-bearing guarantees:

* **Bit-identity** -- a campaign's reduced sweep points equal the
  in-memory ``SweepExecutor`` results exactly, for all three trial
  kinds, whether the campaign ran uninterrupted, was resumed after a
  simulated interruption (``max_tasks``), or after a real ``kill -9``.
* **Content addressing** -- trial keys are stable across processes,
  independent of axis position (a superset campaign reuses shared
  trials), and perf-only knobs never change a fingerprint.
* **Crash-safe store** -- a torn manifest tail and orphan chunk files
  are tolerated and resumed over; mid-store corruption and foreign
  fingerprints are refused.
* **Failure detection** -- a worker dying mid-task is detected and its
  task rescheduled onto a fresh worker; the campaign still completes
  with identical results.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import SweepExecutor
from repro.campaign import (
    CampaignError,
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    StreamingReducer,
    TcpTransport,
    available_campaign_kinds,
    available_transports,
    campaign_status,
    fold_moments,
    format_status,
    run_tcp_worker,
    trial_key,
)
from repro.campaign.spec import get_campaign_kind, register_campaign_kind

#: Small, fast campaign definitions per kind: (spec builder, executor call).
KIND_CASES = {
    "construction": dict(
        spec=lambda: CampaignSpec.construction(
            [4, 8], 3, models=("fb", "fp", "mfp"), width=16,
            include_rounds=False,
        ),
        baseline=lambda ex: ex.run([4, 8], 3, width=16, include_rounds=False),
        models=("fb", "fp", "mfp"),
    ),
    "routing": dict(
        spec=lambda: CampaignSpec.routing(
            [4], 2, models=("fb", "fp", "mfp"), width=12, messages=40
        ),
        baseline=lambda ex: ex.run_routing([4], 2, width=12, messages=40),
        models=("fb", "fp", "mfp"),
    ),
    "latency": dict(
        spec=lambda: CampaignSpec.latency(
            [0.02], 2, models=("fb", "mfp"), width=8, cycles=32
        ),
        baseline=lambda ex: ex.run_latency([0.02], 2, width=8, cycles=32),
        models=("fb", "mfp"),
    ),
}


def _executor(kind: str) -> SweepExecutor:
    return SweepExecutor(KIND_CASES[kind]["models"], workers=1)


# -- identity ------------------------------------------------------------------------


def test_registries_expose_builtins():
    kinds = available_campaign_kinds()
    assert {"construction", "routing", "latency"} <= set(kinds)
    assert {"local", "tcp"} <= set(available_transports())


def test_trial_keys_shared_by_extended_campaigns():
    """Appending axis points or raising trials reuses existing keys.

    The trial seed encodes (point index, trial), so a campaign extended
    at the end of its axis -- or deepened with more trials per point --
    plans a strict superset of the original keys (add-more-data without
    re-running what is stored)."""
    narrow = CampaignSpec.construction(
        [4], 2, models=("fb", "fp", "mfp"), width=16, include_rounds=False
    )
    wide = CampaignSpec.construction(
        [4, 8], 3, models=("fb", "fp", "mfp"), width=16, include_rounds=False
    )
    narrow_keys = {d.key for d in narrow.plan()}
    wide_keys = {d.key for d in wide.plan()}
    assert narrow_keys and narrow_keys < wide_keys
    assert len(wide_keys) == wide.total_trials


def test_trial_keys_stable_across_processes(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    local_keys = [d.key for d in spec.plan()]
    script = textwrap.dedent(
        """
        import json, sys
        from repro.campaign import CampaignSpec
        spec = CampaignSpec.construction(
            [4, 8], 3, models=("fb", "fp", "mfp"), width=16, include_rounds=False
        )
        print(json.dumps([d.key for d in spec.plan()]))
        """
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    assert json.loads(out.stdout) == local_keys


def test_fingerprint_excludes_perf_knobs():
    plain = CampaignSpec.routing([4], 2, width=12, messages=40)
    batch = CampaignSpec.routing([4], 2, width=12, messages=40, engine="batch")
    assert plain.fingerprint() == batch.fingerprint()


def test_fingerprint_changes_with_results():
    base = CampaignSpec.construction([4], 2, width=16, include_rounds=False)
    other = CampaignSpec.construction([4], 2, width=20, include_rounds=False)
    assert base.fingerprint() != other.fingerprint()


def test_spec_round_trips_canonical():
    spec = CampaignSpec.routing([4, 8], 2, width=12, messages=40, router="extended-ecube")
    revived = CampaignSpec.from_canonical(spec.canonical())
    assert revived.fingerprint() == spec.fingerprint()


def test_bad_registry_key_fails_at_build_time():
    with pytest.raises(KeyError):
        CampaignSpec.routing([4], 1, width=12, router="no-such-router")


# -- store crash-safety --------------------------------------------------------------


def test_store_refuses_foreign_fingerprint(tmp_path):
    spec_a = CampaignSpec.construction([4], 1, width=16, include_rounds=False)
    spec_b = CampaignSpec.construction([8], 1, width=16, include_rounds=False)
    CampaignStore.create(tmp_path / "store", spec_a).close()
    with pytest.raises(CampaignError, match="fingerprint"):
        CampaignStore.open(tmp_path / "store", spec_b)


def test_store_tolerates_torn_manifest_tail(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store", chunk_trials=2)
    summary = runner.run()
    runner.close()
    assert summary["complete"]
    manifest = tmp_path / "store" / "manifest.jsonl"
    with open(manifest, "ab") as handle:
        handle.write(b'{"t": "chunk", "se')  # torn mid-write
    resumed = CampaignRunner(None, tmp_path / "store")
    assert resumed.run()["skipped"] == spec.total_trials
    resumed.close()


def test_store_midfile_corruption_is_fatal(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store", chunk_trials=2)
    runner.run()
    runner.close()
    manifest = tmp_path / "store" / "manifest.jsonl"
    lines = manifest.read_bytes().splitlines(keepends=True)
    assert len(lines) >= 3
    lines[1] = b"garbage!!!\n"
    manifest.write_bytes(b"".join(lines))
    with pytest.raises(CampaignError, match="corrupt"):
        CampaignStore.open(tmp_path / "store")


def test_store_drops_chunk_recorded_but_not_intact(tmp_path):
    """A manifest line whose chunk file is torn can only be the crash
    tail; the loader drops it and the runner re-runs those trials."""
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store", chunk_trials=2)
    runner.run()
    runner.close()
    store = CampaignStore.open(tmp_path / "store")
    last = store.chunk_records[-1]
    store.close()
    (tmp_path / "store" / last["file"]).write_bytes(b"torn")
    resumed = CampaignRunner(None, tmp_path / "store")
    summary = resumed.run()
    assert summary["executed"] == int(last["rows"])
    assert summary["complete"]
    resumed.close()


def test_store_orphan_chunk_overwritten(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    partial = CampaignRunner(spec, tmp_path / "store", chunk_trials=2, max_tasks=1)
    partial.run()
    partial.close()
    store = CampaignStore.open(tmp_path / "store")
    orphan_index = len(store.chunk_records) + 1
    store.close()
    # A crash after the chunk fsync but before the manifest line leaves
    # exactly this: a chunk file no manifest record points at.
    orphan = tmp_path / "store" / "chunks" / f"chunk-{orphan_index:06d}.npy"
    orphan.write_bytes(b"orphaned partial write")
    resumed = CampaignRunner(None, tmp_path / "store", chunk_trials=2)
    summary = resumed.run()
    assert summary["complete"]
    resumed.close()
    points = CampaignRunner(None, tmp_path / "store").sweep_points()
    baseline = KIND_CASES["construction"]["baseline"](_executor("construction"))
    assert points == baseline


# -- bit-identity --------------------------------------------------------------------


@pytest.mark.parametrize("kind", sorted(KIND_CASES))
def test_campaign_matches_in_memory_exactly(tmp_path, kind):
    case = KIND_CASES[kind]
    runner = CampaignRunner(case["spec"](), tmp_path / "store", chunk_trials=2)
    summary = runner.run()
    points = runner.sweep_points()
    runner.close()
    assert summary["complete"]
    assert points == case["baseline"](_executor(kind))


@pytest.mark.parametrize("kind", sorted(KIND_CASES))
def test_interrupted_resume_is_bit_identical(tmp_path, kind):
    case = KIND_CASES[kind]
    partial = CampaignRunner(
        case["spec"](), tmp_path / "store", chunk_trials=1, max_tasks=1
    )
    first = partial.run()
    partial.close()
    assert not first["complete"]
    assert 0 < first["executed"] < case["spec"]().total_trials

    resumed = CampaignRunner(None, tmp_path / "store", chunk_trials=1)
    second = resumed.run()
    points = resumed.sweep_points()
    resumed.close()
    assert second["complete"]
    assert second["skipped"] == first["executed"]
    assert points == case["baseline"](_executor(kind))


def test_rerun_skips_every_trial(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    CampaignRunner(spec, tmp_path / "store").run()
    rerun = CampaignRunner(spec, tmp_path / "store")
    summary = rerun.run()
    rerun.close()
    assert summary["executed"] == 0
    assert summary["skipped"] == summary["planned"] == spec.total_trials


def test_kill9_mid_campaign_resume_bit_identical(tmp_path):
    """A real SIGKILL mid-flight loses at most the chunk being written;
    resuming completes the campaign with bit-identical reduced points."""
    store_dir = tmp_path / "store"
    script = textwrap.dedent(
        """
        import sys
        from repro.campaign import CampaignRunner, CampaignSpec
        spec = CampaignSpec.construction(
            [6, 12], 60, models=("fb", "fp", "mfp"), width=20,
            include_rounds=False,
        )
        CampaignRunner(spec, sys.argv[1], workers=1, chunk_trials=2).run()
        """
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script, str(store_dir)],
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    manifest = store_dir / "manifest.jsonl"
    deadline = time.time() + 60
    try:
        while time.time() < deadline:
            if proc.poll() is not None:
                break
            if manifest.exists() and manifest.read_bytes().count(b'"chunk"') >= 2:
                proc.send_signal(signal.SIGKILL)
                break
            time.sleep(0.005)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    spec = CampaignSpec.construction(
        [6, 12], 60, models=("fb", "fp", "mfp"), width=20, include_rounds=False
    )
    resumed = CampaignRunner(spec, store_dir, workers=1, chunk_trials=2)
    summary = resumed.run()
    points = resumed.sweep_points()
    resumed.close()
    assert summary["complete"]
    if proc.returncode == -signal.SIGKILL:
        # The interruption landed: the resume had stored work to skip.
        assert summary["skipped"] > 0

    executor = SweepExecutor(("fb", "fp", "mfp"), workers=1)
    baseline = executor.run([6, 12], 60, width=20, include_rounds=False)
    assert points == baseline


# -- failure detection ---------------------------------------------------------------


def test_dead_worker_task_is_rescheduled(tmp_path):
    """A worker killed mid-task (os._exit) is detected and replaced."""
    original = get_campaign_kind("construction")
    flag = tmp_path / "crashed-once"

    def crash_once(spec):
        if not flag.exists():
            flag.touch()
            # Let the queue feeder flush the "start" event so the parent
            # knows which task died with us (the task_timeout below
            # backstops the race either way).
            time.sleep(0.2)
            os._exit(9)
        return original.runner(spec)

    register_campaign_kind(
        dataclasses.replace(original, runner=crash_once), replace=True
    )
    try:
        spec = KIND_CASES["construction"]["spec"]()
        runner = CampaignRunner(
            spec,
            tmp_path / "store",
            workers=2,
            chunk_trials=1,
            task_timeout=10.0,
            transport_options={
                "heartbeat_interval": 0.05,
                "heartbeat_timeout": 2.0,
            },
        )
        summary = runner.run()
        points = runner.sweep_points()
        runner.close()
    finally:
        register_campaign_kind(original, replace=True)
    assert summary["complete"]
    assert summary["rescheduled"] >= 1
    assert points == KIND_CASES["construction"]["baseline"](
        _executor("construction")
    )


def test_tcp_transport_bit_identical(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    transport = TcpTransport(spec)
    transport.start()
    transport.start()  # idempotent: CLI pre-starts to print the port
    host, port = transport.address
    workers = [
        threading.Thread(target=run_tcp_worker, args=(host, port), daemon=True)
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    runner = CampaignRunner(
        spec, tmp_path / "store", transport=transport, chunk_trials=1
    )
    summary = runner.run()
    points = runner.sweep_points()
    runner.close()
    for worker in workers:
        worker.join(timeout=10)
    assert summary["complete"]
    assert points == KIND_CASES["construction"]["baseline"](
        _executor("construction")
    )


# -- streaming reduction -------------------------------------------------------------


def test_moments_match_numpy():
    rng = np.random.default_rng(5)
    values = rng.normal(3.0, 2.0, size=257)
    moments = fold_moments(float(value) for value in values)
    assert moments.count == len(values)
    assert moments.mean == pytest.approx(float(np.mean(values)), abs=1e-12)
    assert moments.variance == pytest.approx(
        float(np.var(values, ddof=1)), abs=1e-10
    )
    assert moments.ci95 > 0


def test_streaming_reducer_is_chunk_order_independent(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store", chunk_trials=1)
    runner.run()
    store = runner._open_store()
    chunks = list(store.iter_chunks())
    runner.close()

    forward = StreamingReducer(spec)
    for chunk in chunks:
        forward.feed(chunk)
    backward = StreamingReducer(spec)
    for chunk in reversed(chunks):
        backward.feed(chunk)
    assert forward.complete and backward.complete
    fwd, bwd = forward.points(), backward.points()
    assert [p.as_dict() for p in fwd] == [p.as_dict() for p in bwd]


def test_duplicate_rows_are_deduped(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store", chunk_trials=2)
    runner.run()
    store = runner._open_store()
    chunks = list(store.iter_chunks())
    # A late duplicate of a timed-out task appends the same rows twice.
    store.append_rows(chunks[0])
    points = runner.sweep_points()
    reduced = runner.reduce()
    runner.close()
    assert points == KIND_CASES["construction"]["baseline"](
        _executor("construction")
    )
    assert all(
        moments.count == spec.trials
        for point in reduced
        for moments in point.stats.values()
    )


def test_campaign_points_carry_cis(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store")
    runner.run()
    reduced = runner.reduce()
    runner.close()
    assert len(reduced) == len(spec.axis)
    point = reduced[-1]
    assert point.n == spec.trials
    column = "MFP.num_regions"
    assert column in point.stats
    assert point.mean(column) == point.stats[column].mean
    assert point.ci95(column) >= 0.0
    payload = point.as_dict()
    assert payload["x"] == spec.axis[-1]


def test_sweep_point_ci95_matches_campaign(tmp_path):
    """The in-memory SweepPoint.ci95 shares the fold with the campaign
    reducers: same trials, same mean, same half-width."""
    spec = KIND_CASES["construction"]["spec"]()
    runner = CampaignRunner(spec, tmp_path / "store")
    runner.run()
    reduced = runner.reduce()
    points = runner.sweep_points()
    runner.close()
    mean, half = points[-1].ci95("MFP", "mean_region_size")
    moments = reduced[-1].stats["MFP.mean_region_size"]
    assert mean == pytest.approx(moments.mean, abs=1e-12)
    assert half == pytest.approx(moments.ci95, abs=1e-12)


# -- integration surfaces ------------------------------------------------------------


def test_executor_campaign_kwarg(tmp_path):
    executor = _executor("construction")
    direct = KIND_CASES["construction"]["baseline"](executor)
    streamed = executor.run(
        [4, 8], 3, width=16, include_rounds=False,
        campaign=tmp_path / "store",
    )
    assert streamed == direct
    assert (tmp_path / "store" / "manifest.jsonl").exists()


def test_campaign_status_and_format(tmp_path):
    spec = KIND_CASES["construction"]["spec"]()
    partial = CampaignRunner(spec, tmp_path / "store", chunk_trials=1, max_tasks=2)
    partial.run()
    partial.close()
    status = campaign_status(tmp_path / "store")
    assert status["planned"] == spec.total_trials
    assert status["completed"] == 2
    assert not status["complete"]
    assert sum(status["per_point"]) == 2
    text = format_status(status)
    assert "2/6 trials" in text
    assert "point   0" in text


def test_cli_campaign_verbs(tmp_path, capsys):
    from repro.cli import main

    store = str(tmp_path / "store")
    rc = main(
        [
            "campaign", "run", store,
            "--kind", "construction",
            "--fault-counts", "4", "8",
            "--trials", "2",
            "--width", "16",
            "--skip-rounds",
            "--chunk-trials", "2",
            "--quiet",
        ]
    )
    assert rc == 0
    assert "[complete]" in capsys.readouterr().out

    assert main(["campaign", "status", store]) == 0
    assert "4/4 trials" in capsys.readouterr().out

    assert main(["campaign", "reduce", store, "--metric", "num_regions"]) == 0
    assert "MFP.num_regions" in capsys.readouterr().out

    assert main(["campaign", "resume", store, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["skipped"] == 4 and summary["executed"] == 0
