"""Unit tests for the ASCII figure rendering (repro.sim.render)."""

import pytest

from repro.sim.figures import FigureSeries
from repro.sim.render import render_ascii_chart, render_comparison_summary


@pytest.fixture
def figure():
    return FigureSeries(
        figure="9a",
        distribution="random",
        x_label="Number of faulty nodes",
        y_label="# of disabled nodes",
        x_values=[100, 200, 300, 400],
        series={
            "FB": [10.0, 40.0, 90.0, 160.0],
            "FP": [5.0, 15.0, 30.0, 50.0],
            "MFP": [1.0, 3.0, 6.0, 10.0],
        },
    )


class TestAsciiChart:
    def test_contains_title_axis_and_legend(self, figure):
        chart = render_ascii_chart(figure)
        assert "Figure 9a" in chart
        assert "legend:" in chart
        assert "FB" in chart and "MFP" in chart
        assert "+" in chart and "-" in chart  # the x axis

    def test_height_is_respected(self, figure):
        chart = render_ascii_chart(figure, height=6)
        # title + 6 chart rows + axis + ticks + legend
        assert len(chart.splitlines()) == 10

    def test_y_scale_labels_match_extremes(self, figure):
        chart = render_ascii_chart(figure)
        assert "160.00" in chart
        assert "1.00" in chart

    def test_highest_series_occupies_the_top_row(self, figure):
        lines = render_ascii_chart(figure, height=8).splitlines()
        top_row = lines[1]
        assert "*" in top_row  # FB is the first series -> glyph '*'

    def test_x_ticks_listed(self, figure):
        chart = render_ascii_chart(figure)
        assert "100" in chart and "400" in chart

    def test_empty_figure(self):
        empty = FigureSeries("10a", "random", "x", "y", [], {})
        assert render_ascii_chart(empty) == "(empty figure)"

    def test_overlapping_points_marked(self):
        figure = FigureSeries(
            "10a", "random", "x", "y", [1, 2],
            {"A": [5.0, 5.0], "B": [5.0, 1.0]},
        )
        chart = render_ascii_chart(figure)
        assert "&" in chart


class TestComparisonSummary:
    def test_lists_every_figure_and_series(self, figure):
        other = FigureSeries(
            "11a", "random", "x", "rounds", [100, 400],
            {"CMFP": [2.0, 5.0], "DMFP": [10.0, 20.0]},
        )
        summary = render_comparison_summary([figure, other])
        assert "Figure 9a" in summary and "Figure 11a" in summary
        assert "FB=160.00" in summary
        assert "DMFP=20.00" in summary
