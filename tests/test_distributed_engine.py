"""Unit tests for the synchronous message-passing engine."""

import pytest

from repro.distributed.engine import NodeProgram, SynchronousEngine
from repro.mesh.topology import Mesh2D, Torus2D


class FloodProgram(NodeProgram):
    """Simple flooding protocol used to exercise the engine.

    The origin node announces a token before round 1; every node forwards
    the token to its neighbours the first time it receives it and records
    the round-relative hop distance (the number of rounds until reception).
    """

    origin = (0, 0)

    def __init__(self, node, topology):
        super().__init__(node, topology)
        self.received_at = 0 if node == self.origin else None

    def start(self):
        if self.node == self.origin:
            return [(n, "token") for n in self.neighbours()]
        return []

    def on_round(self, inbox):
        if self.received_at is not None:
            return []
        if any(envelope.payload == "token" for envelope in inbox):
            self.received_at = 1  # placeholder; distance checked via rounds
            return [(n, "token") for n in self.neighbours()]
        return []


class SilentProgram(NodeProgram):
    """A protocol that never sends anything."""

    def on_round(self, inbox):  # pragma: no cover - never called
        return []


class ChattyProgram(NodeProgram):
    """A protocol that never quiesces (used to test the round cap)."""

    def start(self):
        return [(n, "ping") for n in self.neighbours()]

    def on_round(self, inbox):
        return [(n, "ping") for n in self.neighbours()]


class WakeupProgram(NodeProgram):
    """Uses request_wakeup to run a fixed number of rounds without messages."""

    def __init__(self, node, topology):
        super().__init__(node, topology)
        self.ticks = 0
        if node == (0, 0):
            self.request_wakeup()

    def on_round(self, inbox):
        self.ticks += 1
        if self.ticks < 3:
            self.request_wakeup()
        return []


class TestSynchronousEngine:
    def test_silent_protocol_quiesces_immediately(self):
        engine = SynchronousEngine(Mesh2D(3, 3), SilentProgram)
        stats = engine.run()
        assert stats.rounds == 0
        assert stats.messages == 0

    def test_flood_reaches_every_node(self):
        engine = SynchronousEngine(Mesh2D(4, 4), FloodProgram)
        engine.run()
        received = engine.collect("received_at")
        assert all(value is not None for value in received.values())

    def test_flood_round_count_matches_network_eccentricity(self):
        # The token spreads one hop per round; the farthest node of a 4x4
        # mesh from (0, 0) is 6 hops away, plus the final quiescence round.
        engine = SynchronousEngine(Mesh2D(4, 4), FloodProgram)
        stats = engine.run()
        assert stats.rounds == 7

    def test_flood_on_torus_is_faster(self):
        mesh_stats = SynchronousEngine(Mesh2D(5, 5), FloodProgram).run()
        torus_stats = SynchronousEngine(Torus2D(5, 5), FloodProgram).run()
        assert torus_stats.rounds < mesh_stats.rounds

    def test_non_neighbour_send_rejected(self):
        class BadProgram(NodeProgram):
            def start(self):
                if self.node == (0, 0):
                    return [((3, 3), "far")]
                return []

            def on_round(self, inbox):
                return []

        with pytest.raises(ValueError):
            SynchronousEngine(Mesh2D(4, 4), BadProgram).run()

    def test_messages_to_outside_positions_are_dropped(self):
        class EdgeProgram(NodeProgram):
            def start(self):
                if self.node == (0, 0):
                    return [((-1, 0), "off"), ((0, 1), "on")]
                return []

            def __init__(self, node, topology):
                super().__init__(node, topology)
                self.got = []

            def on_round(self, inbox):
                self.got.extend(envelope.payload for envelope in inbox)
                return []

        engine = SynchronousEngine(Mesh2D(3, 3), EdgeProgram)
        stats = engine.run()
        assert stats.messages == 1
        assert engine.state_of((0, 1)).got == ["on"]

    def test_round_cap_raises(self):
        engine = SynchronousEngine(Mesh2D(3, 3), ChattyProgram)
        with pytest.raises(RuntimeError):
            engine.run(max_rounds=5)

    def test_wakeup_scheduling(self):
        engine = SynchronousEngine(Mesh2D(2, 2), WakeupProgram)
        stats = engine.run()
        assert engine.state_of((0, 0)).ticks == 3
        assert stats.rounds == 3
        assert stats.messages == 0

    def test_deliveries_per_round_recorded(self):
        engine = SynchronousEngine(Mesh2D(3, 1), FloodProgram)
        stats = engine.run()
        assert len(stats.deliveries_per_round) == stats.rounds
        assert sum(stats.deliveries_per_round) == stats.messages
