"""Differential tests: the bitmask kernel against the set-based oracles.

Every primitive the kernel reimplements (component labelling, convexity
test, violation detection, hull fill, ring membership, perimeter, region
extraction) is asserted bit-identical to its legacy set-based
implementation on Hypothesis-generated fault sets, and the full
constructions (MFP/CMFP/DMFP, incremental sessions, routing) are compared
end to end with the kernel switched on and off.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api.session import MeshSession
from repro.core.components import find_components, find_components_bfs
from repro.core.labelling import faults_to_mask
from repro.core.mfp import (
    build_minimum_polygons,
    component_polygon_via_labelling,
    emulate_rounds,
)
from repro.core.regions import extract_regions, extract_regions_and_index, regions_from_masks
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.geometry import masks
from repro.geometry.boundary import region_perimeter, ring_members
from repro.geometry.orthogonal import (
    is_orthogonal_convex,
    is_orthogonal_convex_sets,
    orthogonal_convex_hull,
    orthogonal_convex_hull_sets,
    orthogonal_convexity_violations,
    orthogonal_convexity_violations_sets,
)
from repro.mesh.topology import Mesh2D
from repro.routing.registry import get_router
from repro.routing.traffic import TrafficContext, get_traffic

coords = st.tuples(st.integers(0, 14), st.integers(0, 14))
fault_sets = st.sets(coords, min_size=0, max_size=40)
nonempty_fault_sets = st.sets(coords, min_size=1, max_size=40)


class TestPrimitiveEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(fault_sets)
    def test_components_match_bfs_oracle(self, faults):
        kernel = find_components(sorted(faults))
        oracle = find_components_bfs(sorted(faults))
        assert [c.nodes for c in kernel] == [c.nodes for c in oracle]
        assert [c.index for c in kernel] == [c.index for c in oracle]

    @settings(max_examples=80, deadline=None)
    @given(fault_sets)
    def test_components_match_bfs_oracle_without_diagonals(self, faults):
        kernel = find_components(sorted(faults), diagonal=False)
        oracle = find_components_bfs(sorted(faults), diagonal=False)
        assert [c.nodes for c in kernel] == [c.nodes for c in oracle]

    @settings(max_examples=100, deadline=None)
    @given(fault_sets)
    def test_convexity_matches_sets_oracle(self, region):
        assert is_orthogonal_convex(region) == is_orthogonal_convex_sets(region)

    @settings(max_examples=100, deadline=None)
    @given(fault_sets)
    def test_violations_match_sets_oracle(self, region):
        assert orthogonal_convexity_violations(
            region
        ) == orthogonal_convexity_violations_sets(region)

    @settings(max_examples=100, deadline=None)
    @given(fault_sets)
    def test_hull_matches_sets_oracle(self, region):
        assert orthogonal_convex_hull(region) == orthogonal_convex_hull_sets(region)

    @settings(max_examples=60, deadline=None)
    @given(nonempty_fault_sets)
    def test_ring_mask_matches_ring_members(self, region):
        mask, offset = masks.coords_to_local_mask(region, pad=1)
        ring = masks.mask_to_frozenset(masks.ring_mask(mask), offset)
        assert ring == frozenset(ring_members(region))

    @settings(max_examples=60, deadline=None)
    @given(nonempty_fault_sets)
    def test_perimeter_mask_matches_region_perimeter(self, region):
        mask, _ = masks.coords_to_local_mask(region)
        expected = sum(
            1
            for x, y in region
            for n in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1))
            if n not in region
        )
        assert masks.perimeter_mask(mask) == expected
        assert region_perimeter(region) == expected

    @settings(max_examples=60, deadline=None)
    @given(fault_sets, fault_sets)
    def test_regions_from_masks_matches_extract_regions(self, disabled, extra_faults):
        disabled = set(disabled) | set(extra_faults)
        faults = set(extra_faults) & disabled
        disabled_mask = faults_to_mask(sorted(disabled), 15, 15)
        fault_mask = faults_to_mask(sorted(faults), 15, 15)
        kernel = regions_from_masks(disabled_mask, fault_mask)
        oracle = extract_regions(disabled, faults)
        assert [r.nodes for r in kernel] == [r.nodes for r in oracle]
        assert [r.faulty_nodes for r in kernel] == [r.faulty_nodes for r in oracle]

    @settings(max_examples=60, deadline=None)
    @given(fault_sets)
    def test_region_index_grid_is_consistent(self, disabled):
        disabled_mask = faults_to_mask(sorted(disabled), 15, 15)
        regions, index = extract_regions_and_index(
            disabled_mask, np.zeros((15, 15), dtype=bool)
        )
        assert index.shape == (15, 15)
        for region in regions:
            for node in region.nodes:
                assert index[node] == region.index
        assert (index >= 0).sum() == sum(r.size for r in regions)

    @settings(max_examples=60, deadline=None)
    @given(fault_sets)
    def test_emulate_rounds_matches_per_component_emulation(self, faults):
        components = find_components(sorted(faults))
        expected = max(
            (component_polygon_via_labelling(c).rounds for c in components),
            default=0,
        )
        assert emulate_rounds(components) == expected

    @settings(max_examples=60, deadline=None)
    @given(fault_sets)
    def test_nonconvex_labels_matches_per_region_check(self, disabled):
        disabled_mask = faults_to_mask(sorted(disabled), 15, 15)
        labels, count = masks.label_mask(disabled_mask, connectivity=4)
        flagged = set(masks.nonconvex_labels(labels, count).tolist())
        for index, (xs, ys) in enumerate(masks.grouped_nonzero(labels, count)):
            region = set(zip(xs.tolist(), ys.tolist()))
            assert (index + 1 in flagged) == (not is_orthogonal_convex_sets(region))


class TestConstructionEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(fault_sets)
    def test_mfp_build_is_identical_with_and_without_kernel(self, faults):
        topology = Mesh2D(15, 15)
        with masks.use_kernel(True):
            kernel = build_minimum_polygons(sorted(faults), topology=topology)
        with masks.use_kernel(False):
            oracle = build_minimum_polygons(sorted(faults), topology=topology)
        assert (kernel.grid.disabled == oracle.grid.disabled).all()
        assert (kernel.grid.unsafe == oracle.grid.unsafe).all()
        assert [r.nodes for r in kernel.regions] == [r.nodes for r in oracle.regions]
        assert kernel.rounds == oracle.rounds
        assert [p.polygon for p in kernel.component_polygons] == [
            p.polygon for p in oracle.component_polygons
        ]

    @settings(max_examples=15, deadline=None)
    @given(fault_sets)
    def test_dmfp_build_is_identical_with_and_without_kernel(self, faults):
        topology = Mesh2D(15, 15)
        with masks.use_kernel(True):
            kernel = build_minimum_polygons_distributed(sorted(faults), topology=topology)
        with masks.use_kernel(False):
            oracle = build_minimum_polygons_distributed(sorted(faults), topology=topology)
        assert (kernel.grid.disabled == oracle.grid.disabled).all()
        assert [r.nodes for r in kernel.regions] == [r.nodes for r in oracle.regions]
        assert kernel.rounds == oracle.rounds

    @settings(max_examples=10, deadline=None)
    @given(st.lists(coords, min_size=0, max_size=30), st.integers(1, 5))
    def test_incremental_session_matches_one_shot_on_mask_caches(self, faults, batches):
        session = MeshSession(width=15)
        unique = list(dict.fromkeys(faults))
        step = max(1, len(unique) // batches)
        for start in range(0, len(unique), step):
            session.add_faults(unique[start : start + step])
            incremental = session.build("mfp")
            one_shot = build_minimum_polygons(session.faults, topology=session.topology)
            assert (incremental.grid.disabled == one_shot.grid.disabled).all()
            assert [r.nodes for r in incremental.regions] == [
                r.nodes for r in one_shot.regions
            ]
            assert incremental.rounds == one_shot.rounds
            if incremental.region_index is not None:
                for region in incremental.regions:
                    for node in region.nodes:
                        assert incremental.region_index[node] == region.index

    @settings(max_examples=10, deadline=None)
    @given(fault_sets)
    def test_router_fast_path_matches_set_based_router(self, faults):
        topology = Mesh2D(15, 15)
        with masks.use_kernel(True):
            kernel = build_minimum_polygons(
                sorted(faults), topology=topology, compute_rounds=False
            )
        with masks.use_kernel(False):
            oracle = build_minimum_polygons(
                sorted(faults), topology=topology, compute_rounds=False
            )
        assert kernel.region_index is not None
        spec = get_router("extended-ecube")
        fast = spec.build(kernel)
        slow = spec.build(oracle)
        assert slow.region_of((0, 0)) in (-1, 0)  # exercises the rebuild path
        uniform = get_traffic("uniform")
        fast_batch = uniform.generate(TrafficContext.from_router(fast), 120, seed=9)
        slow_batch = uniform.generate(TrafficContext.from_router(slow), 120, seed=9)
        fast_paths = [fast.route(s, d).path for s, d in fast_batch.pairs()]
        slow_paths = [slow.route(s, d).path for s, d in slow_batch.pairs()]
        assert fast_paths == slow_paths
        assert fast.disabled == slow.disabled


class TestKernelUtilities:
    def test_use_kernel_restores_previous_state(self):
        initial = masks.kernel_enabled()
        with masks.use_kernel(False):
            assert not masks.kernel_enabled()
            with masks.use_kernel(True):
                assert masks.kernel_enabled()
            assert not masks.kernel_enabled()
        assert masks.kernel_enabled() == initial

    def test_label_mask_rejects_bad_connectivity(self):
        with pytest.raises(ValueError, match="connectivity"):
            masks.label_mask(np.zeros((3, 3), dtype=bool), connectivity=6)

    def test_label_mask_empty(self):
        labels, count = masks.label_mask(np.zeros((4, 4), dtype=bool))
        assert count == 0
        assert not labels.any()

    def test_try_local_mask_refuses_sparse_bounding_boxes(self):
        assert masks.try_local_mask([(0, 0), (100_000, 100_000)]) is None

    def test_label_order_is_lexicographic_min_node(self):
        mask = np.zeros((6, 6), dtype=bool)
        # Two components; the one containing (0, 5) has the smaller min node.
        mask[0, 5] = True
        mask[5, 0] = True
        labels, count = masks.label_mask(mask)
        assert count == 2
        assert labels[0, 5] == 1
        assert labels[5, 0] == 2

    def test_propagation_fallback_matches_scipy_path(self, monkeypatch):
        from repro import _array_ops

        rng = np.random.default_rng(0)
        mask = rng.random((20, 20)) < 0.35
        with_scipy = masks.label_mask(mask, connectivity=8)
        monkeypatch.setattr(_array_ops, "_ndimage", None)
        without_scipy = masks.label_mask(mask, connectivity=8)
        assert np.array_equal(with_scipy[0], without_scipy[0])
        assert with_scipy[1] == without_scipy[1]
        with_scipy4 = masks.label_mask(mask, connectivity=4)
        monkeypatch.undo()
        assert np.array_equal(
            with_scipy4[0], masks.label_mask(mask, connectivity=4)[0]
        )


class TestFaultsToMask:
    def test_vectorized_mask_matches_loop(self):
        faults = [(0, 0), (3, 4), (9, 9), (3, 4)]
        mask = faults_to_mask(faults, 10, 10)
        expected = np.zeros((10, 10), dtype=bool)
        for x, y in faults:
            expected[x, y] = True
        assert np.array_equal(mask, expected)

    def test_empty_faults(self):
        assert not faults_to_mask([], 5, 5).any()

    def test_out_of_grid_fault_raises_with_coordinate(self):
        with pytest.raises(ValueError, match=r"fault \(5, 1\) outside 5x5 grid"):
            faults_to_mask([(1, 1), (5, 1)], 5, 5)

    def test_negative_fault_raises(self):
        with pytest.raises(ValueError, match="outside"):
            faults_to_mask([(-1, 0)], 5, 5)
