"""Unit tests for fault-region extraction (repro.core.regions)."""

import numpy as np
import pytest

from repro.core.regions import (
    FaultRegion,
    extract_regions,
    region_statistics,
    regions_from_masks,
)


class TestFaultRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            FaultRegion(0, frozenset(), frozenset())

    def test_faulty_nodes_must_be_subset(self):
        with pytest.raises(ValueError):
            FaultRegion(0, frozenset({(0, 0)}), frozenset({(1, 1)}))

    def test_counts(self):
        region = FaultRegion(
            0, frozenset({(0, 0), (1, 0), (0, 1)}), frozenset({(0, 0)})
        )
        assert region.size == 3
        assert region.num_faulty == 1
        assert region.num_disabled_nonfaulty == 2

    def test_shape_predicates(self):
        square = FaultRegion(
            0,
            frozenset({(0, 0), (1, 0), (0, 1), (1, 1)}),
            frozenset({(0, 0)}),
        )
        l_shape = FaultRegion(
            1, frozenset({(0, 0), (1, 0), (0, 1)}), frozenset({(0, 0)})
        )
        assert square.is_rectangle and square.is_orthogonal_convex
        assert not l_shape.is_rectangle
        assert l_shape.is_orthogonal_convex

    def test_iteration_and_membership(self):
        region = FaultRegion(0, frozenset({(2, 2), (2, 3)}), frozenset({(2, 2)}))
        assert (2, 3) in region
        assert list(region) == [(2, 2), (2, 3)]
        assert len(region) == 2


class TestExtractRegions:
    def test_no_disabled_nodes(self):
        assert extract_regions([], []) == []

    def test_single_region(self):
        regions = extract_regions([(0, 0), (0, 1), (1, 1)], [(0, 0)])
        assert len(regions) == 1
        assert regions[0].size == 3
        assert regions[0].faulty_nodes == frozenset({(0, 0)})

    def test_diagonal_groups_are_separate_regions(self):
        # Region extraction uses the physical 4-adjacency.
        regions = extract_regions([(0, 0), (1, 1)], [(0, 0), (1, 1)])
        assert len(regions) == 2

    def test_regions_partition_disabled_set(self):
        disabled = [(0, 0), (0, 1), (5, 5), (5, 6), (9, 0)]
        regions = extract_regions(disabled, [(0, 0)])
        assert sum(r.size for r in regions) == len(disabled)
        union = set()
        for region in regions:
            assert not (union & region.nodes)
            union |= region.nodes
        assert union == set(disabled)

    def test_deterministic_order(self):
        disabled = [(3, 3), (0, 0), (7, 7)]
        first = extract_regions(disabled, [])
        second = extract_regions(list(reversed(disabled)), [])
        assert [r.nodes for r in first] == [r.nodes for r in second]

    def test_regions_from_masks(self):
        disabled = np.zeros((5, 5), dtype=bool)
        faulty = np.zeros((5, 5), dtype=bool)
        disabled[1, 1] = disabled[1, 2] = True
        faulty[1, 1] = True
        regions = regions_from_masks(disabled, faulty)
        assert len(regions) == 1
        assert regions[0].nodes == frozenset({(1, 1), (1, 2)})
        assert regions[0].faulty_nodes == frozenset({(1, 1)})


class TestRegionStatistics:
    def test_empty(self):
        stats = region_statistics([])
        assert stats["count"] == 0
        assert stats["mean_size"] == 0.0
        assert stats["convex_fraction"] == 1.0

    def test_aggregates(self):
        regions = [
            FaultRegion(0, frozenset({(0, 0), (0, 1)}), frozenset({(0, 0)})),
            FaultRegion(1, frozenset({(5, 5)}), frozenset({(5, 5)})),
        ]
        stats = region_statistics(regions)
        assert stats["count"] == 2
        assert stats["mean_size"] == 1.5
        assert stats["max_size"] == 2
        assert stats["total_disabled_nonfaulty"] == 1
        assert stats["total_faulty"] == 2
        assert stats["convex_fraction"] == 1.0
