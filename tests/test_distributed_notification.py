"""Unit tests for the notification phase (repro.distributed.notification)."""


from repro.core.components import find_components
from repro.distributed.notification import (
    plan_notifications,
    plan_section_notification,
)
from repro.distributed.ring import construct_boundary_ring
from repro.geometry.sections import Section, concave_sections, section_nodes


def single_component(shape):
    components = find_components(shape)
    assert len(components) == 1
    return components[0]


class TestSectionNotification:
    def test_unblocked_section_is_walked_straight(self):
        section = Section("row", 3, 2, 5)
        plan = plan_section_notification(section, (1, 3), set(), detected_by_ring=True)
        assert plan.notified == frozenset(section.nodes())
        assert plan.skipped == frozenset()
        assert plan.rounds == 4
        assert not plan.detoured

    def test_end_node_inside_the_section_starts_from_itself(self):
        section = Section("column", 2, 1, 3)
        plan = plan_section_notification(section, (2, 1), set(), detected_by_ring=True)
        assert plan.notified == frozenset(section.nodes())
        assert plan.rounds == 2  # (2,1) is already held; two more hops

    def test_walk_starts_from_the_nearest_end(self):
        section = Section("row", 0, 0, 4)
        plan = plan_section_notification(section, (5, 0), set(), detected_by_ring=True)
        # The notifier sits east of the section, so the first hop is (4, 0).
        assert plan.path[0] == (4, 0)

    def test_blocked_cells_are_skipped_and_detoured(self):
        section = Section("row", 0, 0, 4)
        blocking = {(2, 0)}
        plan = plan_section_notification(section, (-1, 0), blocking, detected_by_ring=True)
        assert (2, 0) in plan.skipped
        assert (2, 0) not in plan.notified
        assert plan.notified == frozenset(section.nodes()) - blocking
        assert plan.detoured
        # Detouring around one blocked node costs at least two extra hops.
        assert plan.rounds >= len(section.nodes()) - 1 + 2

    def test_single_cell_section(self):
        section = Section("row", 0, 2, 2)
        plan = plan_section_notification(section, (1, 0), set(), detected_by_ring=True)
        assert plan.notified == frozenset({(2, 0)})
        assert plan.rounds == 1


class TestPlanNotifications:
    def test_convex_component_plans_nothing(self, figure2_region):
        component = single_component(figure2_region)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring)
        assert plan.notifications == []
        assert plan.rounds == 0
        assert plan.disabled_nodes == set()

    def test_u_shape_plan_covers_the_slot(self, u_shape):
        component = single_component(u_shape)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring)
        assert plan.disabled_nodes == {(1, 1), (1, 2)}
        assert all(entry.detected_by_ring for entry in plan.notifications)

    def test_o_shape_plan_fills_the_hole(self, o_shape):
        component = single_component(o_shape)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring)
        assert plan.disabled_nodes == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_plan_covers_every_definition3_section(self):
        shape = {(0, 0), (2, 0), (4, 0), (0, 1), (1, 1), (2, 1), (3, 1), (4, 1)}
        component = single_component(shape)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring)
        assert plan.disabled_nodes == section_nodes(concave_sections(shape))

    def test_rounds_are_the_longest_section_path(self, o_shape):
        component = single_component(o_shape)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring)
        assert plan.rounds == max(entry.rounds for entry in plan.notifications)
        assert plan.total_messages == sum(entry.rounds for entry in plan.notifications)

    def test_blocking_faults_cause_detours_but_not_gaps(self):
        # A C-shaped component (open to the east) whose concave column
        # sections pass through another component's fault: the blocked cell
        # stays black, the rest of the section is still notified, and the
        # message pays a detour to get past the blocking node.
        c_shape = (
            {(x, 0) for x in range(5)}
            | {(x, 4) for x in range(5)}
            | {(0, y) for y in range(5)}
        )
        blocker = (2, 2)  # sits mid-way along the column-2 section
        component = single_component(c_shape)
        ring = construct_boundary_ring(component)
        plan = plan_notifications(component, ring, blocking_faults={blocker})
        notified = plan.disabled_nodes
        expected = section_nodes(concave_sections(c_shape)) - {blocker}
        assert notified == expected
        assert any(entry.detoured for entry in plan.notifications)
