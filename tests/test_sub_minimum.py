"""Unit tests for the sub-minimum faulty polygon model (FP, Wu 2001)."""


from repro.core.faulty_block import build_faulty_blocks
from repro.core.sub_minimum import (
    build_sub_minimum_for_scenario,
    build_sub_minimum_polygons,
)
from repro.faults.scenario import generate_scenario
from repro.types import FaultRegionModel


class TestBuildSubMinimumPolygons:
    def test_no_faults(self):
        result = build_sub_minimum_polygons([], width=10)
        assert result.regions == []
        assert result.rounds == 0

    def test_model_tag(self):
        result = build_sub_minimum_polygons([(1, 1)], width=8)
        assert result.model is FaultRegionModel.SUB_MINIMUM_FAULTY_POLYGON

    def test_diagonal_pair_shrinks_back_to_the_faults(self):
        result = build_sub_minimum_polygons([(2, 2), (3, 3)], width=8)
        assert result.grid.disabled_set() == {(2, 2), (3, 3)}
        assert result.num_disabled_nonfaulty == 0

    def test_polygons_are_orthogonal_convex(self):
        scenario = generate_scenario(num_faults=100, width=30, model="clustered", seed=2)
        result = build_sub_minimum_for_scenario(scenario)
        assert result.all_orthogonal_convex()

    def test_polygons_cover_all_faults(self):
        scenario = generate_scenario(num_faults=60, width=25, seed=3)
        result = build_sub_minimum_for_scenario(scenario)
        covered = set().union(*(r.nodes for r in result.regions))
        assert set(scenario.faults) <= covered

    def test_fp_never_disables_more_than_fb(self):
        for seed in range(5):
            scenario = generate_scenario(num_faults=70, width=20, model="clustered", seed=seed)
            fb = build_faulty_blocks(scenario.faults, topology=scenario.topology())
            fp = build_sub_minimum_for_scenario(scenario)
            assert fp.num_disabled_nonfaulty <= fb.num_disabled_nonfaulty
            assert fp.grid.disabled_set() <= fb.grid.disabled_set()

    def test_fp_rounds_exceed_fb_rounds(self):
        # FP pays the FB (scheme 1) rounds plus the scheme 2 rounds.
        scenario = generate_scenario(num_faults=80, width=25, model="clustered", seed=9)
        fb = build_faulty_blocks(scenario.faults, topology=scenario.topology())
        fp = build_sub_minimum_for_scenario(scenario)
        assert fp.rounds_scheme1 == fb.rounds
        assert fp.rounds >= fb.rounds

    def test_unsafe_label_is_kept_even_for_reenabled_nodes(self):
        # A non-faulty node that scheme 2 re-enables is still unsafe.
        result = build_sub_minimum_polygons([(2, 2), (3, 3)], width=8)
        assert (2, 3) in result.grid.unsafe_set()
        assert (2, 3) not in result.grid.disabled_set()

    def test_figure4_block_is_partitioned_but_not_minimally(self, figure4_faults):
        # The FP construction works per faulty block; the merged block of the
        # Figure 4 situation keeps at least one unnecessary non-faulty node
        # compared to the per-component minimum construction.
        from repro.core.mfp import build_minimum_polygons

        fp = build_sub_minimum_polygons(figure4_faults, width=10)
        mfp = build_minimum_polygons(figure4_faults, width=10, compute_rounds=False)
        assert mfp.num_disabled_nonfaulty <= fp.num_disabled_nonfaulty
        assert mfp.num_disabled_nonfaulty == 0
