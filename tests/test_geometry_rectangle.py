"""Unit tests for repro.geometry.rectangle."""

import pytest

from repro.geometry.rectangle import Rectangle, bounding_rectangle


class TestRectangleConstruction:
    def test_single_node_rectangle(self):
        rect = Rectangle(3, 4, 3, 4)
        assert rect.width == 1
        assert rect.height == 1
        assert rect.area == 1
        assert list(rect.nodes()) == [(3, 4)]

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rectangle(5, 0, 4, 0)
        with pytest.raises(ValueError):
            Rectangle(0, 5, 0, 4)

    def test_dimensions(self):
        rect = Rectangle(1, 2, 4, 7)
        assert rect.width == 4
        assert rect.height == 6
        assert rect.area == 24
        assert len(rect) == 24

    def test_corners(self):
        rect = Rectangle(0, 0, 2, 3)
        assert set(rect.corners) == {(0, 0), (0, 3), (2, 0), (2, 3)}

    def test_corner_pair_notation(self):
        rect = Rectangle(1, 2, 3, 4)
        assert rect.as_corner_pair() == "[(1,2);(3,4)]"


class TestRectangleQueries:
    def test_contains_nodes(self):
        rect = Rectangle(2, 2, 5, 4)
        assert (2, 2) in rect
        assert (5, 4) in rect
        assert (3, 3) in rect
        assert (1, 3) not in rect
        assert (6, 3) not in rect
        assert (3, 5) not in rect

    def test_contains_rect(self):
        outer = Rectangle(0, 0, 10, 10)
        inner = Rectangle(2, 3, 4, 5)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_and_intersection(self):
        a = Rectangle(0, 0, 4, 4)
        b = Rectangle(3, 3, 6, 6)
        c = Rectangle(5, 5, 7, 7)
        assert a.intersects(b)
        assert a.intersection(b) == Rectangle(3, 3, 4, 4)
        assert not a.intersects(c)
        assert a.intersection(c) is None

    def test_touching_rectangles_intersect_on_shared_nodes(self):
        a = Rectangle(0, 0, 2, 2)
        b = Rectangle(2, 2, 4, 4)
        assert a.intersects(b)
        assert a.intersection(b) == Rectangle(2, 2, 2, 2)

    def test_union_bounds(self):
        a = Rectangle(0, 0, 1, 1)
        b = Rectangle(5, 7, 6, 9)
        assert a.union_bounds(b) == Rectangle(0, 0, 6, 9)

    def test_expanded_and_clipped(self):
        rect = Rectangle(2, 2, 3, 3)
        grown = rect.expanded(1)
        assert grown == Rectangle(1, 1, 4, 4)
        clipped = grown.clipped(Rectangle(0, 0, 3, 10))
        assert clipped == Rectangle(1, 1, 3, 4)

    def test_on_perimeter(self):
        rect = Rectangle(0, 0, 3, 3)
        assert rect.on_perimeter((0, 2))
        assert rect.on_perimeter((3, 0))
        assert not rect.on_perimeter((1, 1))
        assert not rect.on_perimeter((4, 0))

    def test_iteration_covers_all_nodes_once(self):
        rect = Rectangle(1, 1, 3, 2)
        nodes = list(rect)
        assert len(nodes) == rect.area
        assert len(set(nodes)) == rect.area
        assert set(nodes) == rect.node_set()

    def test_rows_and_columns(self):
        rect = Rectangle(1, 5, 3, 6)
        assert list(rect.rows()) == [5, 6]
        assert list(rect.columns()) == [1, 2, 3]


class TestBoundingRectangle:
    def test_single_node(self):
        assert bounding_rectangle([(4, 7)]) == Rectangle(4, 7, 4, 7)

    def test_scattered_nodes(self):
        nodes = [(1, 5), (3, 2), (0, 4), (2, 9)]
        assert bounding_rectangle(nodes) == Rectangle(0, 2, 3, 9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_rectangle([])

    def test_from_nodes_classmethod(self):
        assert Rectangle.from_nodes([(0, 0), (2, 3)]) == Rectangle(0, 0, 2, 3)

    def test_bounding_box_contains_all_nodes(self):
        nodes = [(5, 5), (7, 2), (6, 8)]
        box = bounding_rectangle(nodes)
        assert all(node in box for node in nodes)
