"""Tests for the incremental MeshSession (repro.api.session)."""

import pytest

from repro.api import MeshSession, get_construction
from repro.core.components import find_components
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D, Torus2D

MODELS = ("fb", "fp", "mfp", "cmfp", "dmfp")


def _assert_same_result(incremental, oneshot, context=""):
    assert incremental.disabled_set() == oneshot.disabled_set(), context
    assert incremental.num_regions == oneshot.num_regions, context
    assert incremental.rounds == oneshot.rounds, context
    assert incremental.mean_region_size == pytest.approx(
        oneshot.mean_region_size
    ), context
    incremental_regions = sorted(frozenset(r.nodes) for r in incremental.regions)
    oneshot_regions = sorted(frozenset(r.nodes) for r in oneshot.regions)
    assert incremental_regions == oneshot_regions, context


class TestState:
    def test_empty_session(self):
        session = MeshSession(width=10)
        assert session.num_faults == 0
        assert session.components() == []
        result = session.build("mfp")
        assert result.num_regions == 0

    def test_add_faults_returns_new_positions(self):
        session = MeshSession(width=10)
        added = session.add_faults([(1, 1), (2, 2), (1, 1)])
        assert added == [(1, 1), (2, 2)]
        # Re-adding is a no-op and does not bump the version.
        version = session.version
        assert session.add_faults([(2, 2)]) == []
        assert session.version == version

    def test_validates_positions(self):
        session = MeshSession(width=5)
        with pytest.raises(Exception):
            session.add_faults([(9, 9)])

    def test_from_scenario(self):
        scenario = generate_scenario(num_faults=12, width=10, seed=3)
        session = MeshSession.from_scenario(scenario)
        assert session.fault_set() == scenario.fault_set()
        assert isinstance(session.topology, Mesh2D)

    def test_torus_session(self):
        session = MeshSession(width=8, torus=True)
        assert isinstance(session.topology, Torus2D)

    def test_clear(self):
        session = MeshSession(width=10, faults=[(1, 1), (5, 5)])
        session.build("mfp")
        session.clear()
        assert session.num_faults == 0
        assert session.components() == []
        assert session.build("mfp").num_regions == 0

    def test_describe(self):
        session = MeshSession(width=10, faults=[(1, 1), (5, 5)])
        text = session.describe()
        assert "10x10" in text and "2 faults" in text


class TestComponentTracking:
    def test_matches_find_components_after_batches(self):
        scenario = generate_scenario(
            num_faults=80, width=25, model="clustered", seed=9
        )
        session = MeshSession(topology=scenario.topology())
        faults = list(scenario.faults)
        for start in range(0, len(faults), 13):
            session.add_faults(faults[start : start + 13])
            reference = find_components(session.faults)
            tracked = session.components()
            assert [c.nodes for c in tracked] == [c.nodes for c in reference]
            assert [c.index for c in tracked] == [c.index for c in reference]

    def test_merge_of_multiple_components(self):
        # Two separate components joined by one bridging fault.
        session = MeshSession(width=10, faults=[(1, 1), (4, 4)])
        assert len(session.components()) == 2
        session.add_faults([(3, 3)])  # 8-adjacent to both (via (2,2)? no: to (4,4))
        # (3,3) touches (4,4) diagonally; (1,1) stays separate.
        assert len(session.components()) == 2
        session.add_faults([(2, 2)])  # bridges (1,1) and (3,3)
        assert len(session.components()) == 1


class TestIncrementalEqualsOneShot:
    @pytest.mark.parametrize("distribution", ["random", "clustered"])
    @pytest.mark.parametrize("num_batches", [2, 5])
    def test_batched_adds_match_union_build(self, distribution, num_batches):
        """Property: K add_faults batches == one-shot build on the union."""
        scenario = generate_scenario(
            num_faults=60, width=20, model=distribution, seed=21
        )
        faults = list(scenario.faults)
        # Interleaved batches exercise merges across existing components.
        batches = [faults[i::num_batches] for i in range(num_batches)]
        session = MeshSession(topology=scenario.topology())
        for batch in batches:
            session.add_faults(batch)
            for key in MODELS:
                incremental = session.build(key)
                oneshot = get_construction(key).build(
                    session.faults, scenario.topology()
                )
                _assert_same_result(
                    incremental, oneshot, context=f"{key}/{session.num_faults}"
                )

    def test_single_fault_steps(self):
        """Fault-by-fault insertion, the paper's exact sweep shape."""
        scenario = generate_scenario(
            num_faults=15, width=12, model="clustered", seed=2
        )
        session = MeshSession(topology=scenario.topology())
        for fault in scenario.faults:
            session.add_fault(fault)
            for key in ("mfp", "dmfp"):
                incremental = session.build(key)
                oneshot = get_construction(key).build(
                    session.faults, scenario.topology()
                )
                _assert_same_result(incremental, oneshot, context=str(fault))

    def test_mfp_options_respected_incrementally(self):
        # The diagonal pair forms one component whose labelling emulation
        # needs at least one round (singletons would legitimately need 0).
        session = MeshSession(width=15, faults=[(2, 2), (3, 3), (10, 10)])
        fast = session.build("mfp", compute_rounds=False)
        assert fast.rounds == 0
        full = session.build("mfp", compute_rounds=True)
        assert full.rounds > 0
        assert fast.disabled_set() == full.disabled_set()
        via = session.build("mfp", via_labelling=True)
        assert via.disabled_set() == full.disabled_set()

    def test_via_labelling_rounds_match_oneshot_even_without_compute_rounds(self):
        """Solution A always reports its emulation rounds, as the one-shot
        builder does -- compute_rounds only gates the hull path's emulation."""
        scenario = generate_scenario(
            num_faults=25, width=15, model="clustered", seed=3
        )
        session = MeshSession.from_scenario(scenario)
        incremental = session.build("mfp", via_labelling=True, compute_rounds=False)
        oneshot = get_construction("mfp").build(
            scenario, via_labelling=True, compute_rounds=False
        )
        assert incremental.rounds == oneshot.rounds > 0
        _assert_same_result(incremental, oneshot)


class TestCaching:
    def test_result_cache_hit_without_mutation(self):
        session = MeshSession(width=15, faults=[(2, 2), (3, 3)])
        first = session.build("mfp")
        second = session.build("mfp")
        assert second is first
        assert session.cache_info["result_hits"] == 1

    def test_result_cache_invalidated_by_add(self):
        session = MeshSession(width=15, faults=[(2, 2)])
        first = session.build("mfp")
        session.add_faults([(10, 10)])
        second = session.build("mfp")
        assert second is not first

    def test_distinct_options_cached_separately(self):
        session = MeshSession(width=15, faults=[(2, 2)])
        fast = session.build("mfp", compute_rounds=False)
        full = session.build("mfp")
        assert fast is not full
        assert session.build("mfp", compute_rounds=False) is fast

    def test_untouched_components_hit_cache(self):
        """Dirty-component invalidation: far-away faults reuse cached hulls."""
        session = MeshSession(width=30, faults=[(2, 2), (2, 3), (3, 3)])
        session.build("mfp", compute_rounds=False)
        baseline_misses = session.cache_info["component_misses"]
        session.add_faults([(20, 20)])  # new isolated component
        session.build("mfp", compute_rounds=False)
        assert session.cache_info["component_hits"] >= 1  # (2,2) cluster reused
        # Only the new component's hull was computed.
        assert session.cache_info["component_misses"] == baseline_misses + 1

    def test_touched_component_recomputed(self):
        session = MeshSession(width=30, faults=[(2, 2), (2, 3)])
        session.build("mfp", compute_rounds=False)
        misses = session.cache_info["component_misses"]
        session.add_faults([(3, 4)])  # extends the existing component
        session.build("mfp", compute_rounds=False)
        assert session.cache_info["component_misses"] == misses + 1

    def test_stale_cache_entries_pruned_after_merge(self):
        session = MeshSession(width=20, faults=[(1, 1), (4, 4)])
        session.build("mfp", compute_rounds=False)
        session.add_faults([(2, 2), (3, 3)])  # merges everything
        session.build("mfp", compute_rounds=False)
        assert len(session._hull_cache) == len(session.components())

    def test_build_all_defaults_to_registry_keys(self):
        session = MeshSession(width=12, faults=[(2, 2), (6, 6)])
        results = session.build_all()
        for key in MODELS:
            assert key in results
            assert results[key].key == key

    def test_replaced_spec_bypasses_stale_incremental_builder(self):
        """register_construction(replace=True) must disconnect the previous
        spec's incremental builder, so the session runs the new builder
        (regression)."""
        from repro.api import ConstructionSpec, register_construction
        from repro.api.registry import _INCREMENTAL, _REGISTRY
        from repro.core.mfp import build_minimum_polygons

        calls = []

        def custom_builder(faults, topology, options):
            calls.append(len(faults))
            return build_minimum_polygons(faults, topology=topology)

        original_spec = _REGISTRY["mfp"]
        original_incremental = _INCREMENTAL.get("mfp")
        try:
            register_construction(
                ConstructionSpec(
                    key="mfp",
                    label="MFP",
                    description="test replacement",
                    builder=custom_builder,
                    aliases=original_spec.aliases,
                ),
                replace=True,
            )
            session = MeshSession(width=12, faults=[(2, 2), (6, 6)])
            session.build("mfp")
            assert calls, "replacement builder was bypassed"
        finally:
            _REGISTRY["mfp"] = original_spec
            if original_incremental is not None:
                _INCREMENTAL["mfp"] = original_incremental
        # The restored built-in spec still uses its incremental path.
        session = MeshSession(width=12, faults=[(2, 2)])
        session.build("mfp")
        assert session.cache_info["component_misses"] >= 1


class TestBatchAtomicity:
    def test_invalid_batch_leaves_session_untouched(self):
        """A rejected node must not leave half the batch inserted with
        stale caches (regression: validation now precedes mutation)."""
        session = MeshSession(width=10, faults=[(1, 1)])
        before = session.build("mfp")
        with pytest.raises(ValueError):
            session.add_faults([(2, 2), (99, 99)])
        assert session.fault_set() == frozenset({(1, 1)})
        assert [c.nodes for c in session.components()] == [frozenset({(1, 1)})]
        assert session.build("mfp") is before  # cache still valid
