"""Unit tests for the superseding rule (repro.core.superseding)."""

from repro.core.superseding import disabled_nodes, pile_statuses, supersede
from repro.types import NodeKind


class TestSupersede:
    def test_black_beats_gray_and_white(self):
        assert supersede(NodeKind.FAULTY, NodeKind.DISABLED) is NodeKind.FAULTY
        assert supersede(NodeKind.DISABLED, NodeKind.FAULTY) is NodeKind.FAULTY
        assert supersede(NodeKind.ENABLED, NodeKind.FAULTY) is NodeKind.FAULTY

    def test_gray_beats_white(self):
        assert supersede(NodeKind.ENABLED, NodeKind.DISABLED) is NodeKind.DISABLED
        assert supersede(NodeKind.DISABLED, NodeKind.ENABLED) is NodeKind.DISABLED

    def test_same_status_is_stable(self):
        for kind in NodeKind:
            assert supersede(kind, kind) is kind


class TestPileStatuses:
    def test_empty_pile(self):
        assert pile_statuses([]) == {}

    def test_single_layer_passes_through(self):
        layer = {(0, 0): NodeKind.FAULTY, (1, 0): NodeKind.DISABLED}
        assert pile_statuses([layer]) == layer

    def test_conflicts_resolved_in_any_order(self):
        a = {(0, 0): NodeKind.DISABLED, (1, 1): NodeKind.ENABLED}
        b = {(0, 0): NodeKind.FAULTY, (1, 1): NodeKind.DISABLED}
        expected = {(0, 0): NodeKind.FAULTY, (1, 1): NodeKind.DISABLED}
        assert pile_statuses([a, b]) == expected
        assert pile_statuses([b, a]) == expected

    def test_nodes_from_different_layers_are_merged(self):
        a = {(0, 0): NodeKind.DISABLED}
        b = {(5, 5): NodeKind.FAULTY}
        piled = pile_statuses([a, b])
        assert piled[(0, 0)] is NodeKind.DISABLED
        assert piled[(5, 5)] is NodeKind.FAULTY

    def test_disabled_nodes_helper(self):
        piled = {
            (0, 0): NodeKind.FAULTY,
            (1, 0): NodeKind.DISABLED,
            (2, 0): NodeKind.ENABLED,
        }
        assert disabled_nodes(piled) == {(0, 0), (1, 0)}
