"""Tests for the contention-aware lockstep network simulator (repro.netsim).

The load-bearing property is the differential one: the vectorised array
simulator and the scalar dict-based oracle must produce *bit-identical*
delivery times (witnessed by ``NetSimStats.delivery_fingerprint``) on the
same plan, across traffic patterns, seeds and fault scenarios.  On top of
that the tests pin the cycle-contract semantics (arbitration, queueing,
saturation, deadlock), the registry/env toggle and the session facade.
"""

import multiprocessing

import numpy as np
import pytest

from repro.api import MeshSession
from repro.mesh.topology import Mesh2D
from repro.netsim import (
    NUM_VCS,
    NetSimStats,
    SimulatorSpec,
    available_simulators,
    build_plan,
    default_simulator,
    get_simulator,
    register_simulator,
    resolve_simulator,
    simulate_array,
    simulate_scalar,
    simulator_keys,
    use_simulator,
)
from repro.netsim.plan import SimPlan
from repro.routing.extended_ecube import ExtendedECubeRouter
from repro.routing.traffic import BurstyArrivalOptions, get_traffic

ALL_SPATIAL = (
    "uniform", "transpose", "bit-reversal", "hotspot", "nearest-neighbour", "permutation"
)


def _plan(width=10, faults=(), traffic="uniform", count=60, seed=3, rate=2.0,
          arrival="poisson"):
    """Build a SimPlan directly from a router + timed batch (no facade)."""
    session = MeshSession(width=width)
    if faults:
        session.add_faults(list(faults))
    router = session.routing.router("extended-ecube", "mfp")
    context = session.routing.context("extended-ecube", "mfp")
    batch = get_traffic(arrival).generate(
        context, count, seed=seed, pattern=traffic, rate=rate
    )
    return build_plan(router, batch, path_cache={})


def _line_plan(inject, paths, width=6):
    """Hand-built plan: explicit per-message channel sequences on a row."""
    router = ExtendedECubeRouter(Mesh2D(width, width), [])
    from repro.netsim.plan import channel_ids
    from repro.routing.channels import assign_channels

    hop_channel, offsets, lengths = [], [], []
    for source, destination in paths:
        result = router.route(source, destination)
        ids = channel_ids(assign_channels(result), width)
        offsets.append(len(hop_channel))
        lengths.append(len(ids))
        hop_channel.extend(ids.tolist())
    n = len(paths)
    return SimPlan(
        width=width,
        height=width,
        attempted=n,
        routed=np.ones(n, dtype=bool),
        offsets=np.asarray(offsets, dtype=np.int64),
        lengths=np.asarray(lengths, dtype=np.int64),
        hop_channel=np.asarray(hop_channel, dtype=np.int64),
        inject=np.asarray(inject, dtype=np.int64),
        abnormal=np.zeros(n, dtype=np.int64),
        minimal=np.asarray(lengths, dtype=np.int64),
    )


class TestRegistry:
    def test_builtin_simulators(self):
        assert set(simulator_keys()) >= {"array", "scalar"}
        assert get_simulator("vectorized") is get_simulator("array")
        assert get_simulator("reference") is get_simulator("scalar")
        labels = {spec.key: spec.label for spec in available_simulators()}
        assert labels["array"] == "AR" and labels["scalar"] == "SC"

    def test_unknown_key_lists_registered(self):
        with pytest.raises(KeyError, match="array"):
            get_simulator("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_simulator("array")
        with pytest.raises(ValueError, match="already registered"):
            register_simulator(
                SimulatorSpec(key="array", label="A2", description="clash",
                              runner=spec.runner)
            )

    def test_resolve_auto_picks_array(self):
        assert resolve_simulator("auto").key == "array"
        assert resolve_simulator("scalar").key == "scalar"
        with pytest.raises(KeyError):
            resolve_simulator("bogus")

    def test_use_simulator_scopes_default(self):
        before = default_simulator()
        with use_simulator("scalar"):
            assert default_simulator() == "scalar"
            assert resolve_simulator(None).key == "scalar"
        assert default_simulator() == before


class TestDifferentialOracle:
    """Array simulator == scalar oracle, bit for bit."""

    @pytest.mark.parametrize("traffic", ALL_SPATIAL)
    def test_all_patterns_fault_free(self, traffic):
        plan = _plan(width=8, traffic=traffic, count=80, seed=11, rate=4.0)
        a = simulate_array(plan, max_cycles=2000)
        s = simulate_scalar(plan, max_cycles=2000)
        assert np.array_equal(a.delivery, s.delivery)
        assert np.array_equal(a.busy, s.busy)
        assert (a.cycles, a.deadlocked) == (s.cycles, s.deadlocked)

    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    def test_seeds_with_clustered_faults(self, seed):
        faults = [(3, 3), (3, 4), (4, 3), (4, 4), (7, 1)]
        plan = _plan(width=10, faults=faults, count=120, seed=seed, rate=6.0)
        a = simulate_array(plan, max_cycles=4000)
        s = simulate_scalar(plan, max_cycles=4000)
        assert np.array_equal(a.delivery, s.delivery)
        assert np.array_equal(a.busy, s.busy)
        assert (a.cycles, a.deadlocked) == (s.cycles, s.deadlocked)

    def test_bursty_arrivals_and_overload(self):
        # High rate + bursts maximises contention (and possibly deadlock);
        # whatever happens, both simulators must agree exactly.
        plan = _plan(width=8, faults=[(2, 2), (2, 3)], count=200, seed=5,
                     rate=20.0, arrival="bursty")
        a = simulate_array(plan, max_cycles=1500)
        s = simulate_scalar(plan, max_cycles=1500)
        assert np.array_equal(a.delivery, s.delivery)
        assert np.array_equal(a.busy, s.busy)
        assert (a.cycles, a.deadlocked) == (s.cycles, s.deadlocked)


class TestCycleContract:
    def test_uncontended_message_takes_hop_latency(self):
        # One message, injected at cycle 2, path length = Manhattan hops.
        plan = _line_plan([2], [((0, 0), (4, 0))])
        out = simulate_array(plan, max_cycles=100)
        assert out.delivery[0] == 2 + 4
        assert not out.deadlocked

    def test_contention_stalls_higher_index(self):
        # Two messages injected the same cycle on the same row: the later
        # batch index loses the arbitration round and trails two cycles
        # behind (a buffer occupied at cycle start is not grantable, even
        # if its holder moves on that same cycle).
        plan = _line_plan([0, 0], [((0, 0), (4, 0)), ((0, 0), (4, 0))])
        out = simulate_array(plan, max_cycles=100)
        assert out.delivery[0] == 4
        assert out.delivery[1] == 6
        oracle = simulate_scalar(plan, max_cycles=100)
        assert np.array_equal(out.delivery, oracle.delivery)

    def test_sufficiently_staggered_injection_never_stalls(self):
        # Injected two cycles apart, the follower finds every buffer free
        # at cycle start and takes the pure hop latency.
        plan = _line_plan([0, 2], [((0, 0), (4, 0)), ((0, 0), (4, 0))])
        out = simulate_array(plan, max_cycles=100)
        assert out.delivery[0] == 0 + 4
        assert out.delivery[1] == 2 + 4

    def test_busy_counts_buffer_holds(self):
        # Each message holds hops-1 intermediate buffers for one cycle
        # each (the final-hop grant delivers straight into the ejection
        # port), so two 4-hop messages account for 6 busy cycles.
        plan = _line_plan([0, 0], [((0, 0), (4, 0)), ((0, 0), (4, 0))])
        out = simulate_array(plan, max_cycles=100)
        assert int(out.busy.sum()) == 6
        oracle = simulate_scalar(plan, max_cycles=100)
        assert np.array_equal(out.busy, oracle.busy)

    def test_hard_cap_stops_simulation(self):
        plan = _line_plan([0, 0, 0], [((0, 0), (5, 0))] * 3)
        out = simulate_array(plan, max_cycles=4)
        assert out.cycles == 4
        assert np.count_nonzero(out.delivery >= 0) < 3
        oracle = simulate_scalar(plan, max_cycles=4)
        assert np.array_equal(out.delivery, oracle.delivery)
        assert np.array_equal(out.busy, oracle.busy)

    def test_late_injection_fast_forwards(self):
        # Nothing happens before cycle 500; the simulators skip the idle
        # stretch without burning 500 iterations (asserted indirectly: the
        # run completes and the delivery time is exact).
        plan = _line_plan([500], [((0, 0), (3, 0))])
        for run in (simulate_array, simulate_scalar):
            out = run(plan, max_cycles=1000)
            assert out.delivery[0] == 503


class TestSessionFacade:
    @pytest.fixture
    def session(self):
        session = MeshSession(width=10)
        session.add_faults([(4, 4), (4, 5), (5, 4)])
        return session

    def test_simulate_returns_stats(self, session):
        stats = session.simulate("mfp", load=0.02, cycles=120, seed=3)
        assert isinstance(stats, NetSimStats)
        assert stats.model == "MFP"
        assert stats.traffic == "uniform" and stats.arrival == "poisson"
        assert stats.sim in ("array", "scalar")
        assert stats.attempted > 0
        assert stats.delivered + stats.in_flight + stats.unroutable == stats.attempted
        assert stats.busy.shape == (10 * 10 * 4, NUM_VCS)
        assert len(stats.delivery_fingerprint) == 40

    def test_routing_stats_carry_sim_label(self, session):
        stats = session.simulate("mfp", load=0.02, cycles=100, seed=1)
        assert stats.routing is not None
        assert stats.routing.sim == stats.sim
        assert stats.routing.attempted == stats.attempted

    def test_sim_choice_is_bit_identical(self, session):
        array = session.simulate("mfp", load=0.05, cycles=100, seed=7, sim="array")
        scalar = session.simulate("mfp", load=0.05, cycles=100, seed=7, sim="scalar")
        assert array.delivery_fingerprint == scalar.delivery_fingerprint
        assert array.delivered == scalar.delivered
        assert array.total_latency == scalar.total_latency
        assert array.total_queueing == scalar.total_queueing
        assert np.array_equal(array.busy, scalar.busy)
        assert array.sim == "array" and scalar.sim == "scalar"

    def test_same_seed_is_deterministic(self, session):
        a = session.simulate("mfp", load=0.03, cycles=100, seed=9)
        b = session.simulate("mfp", load=0.03, cycles=100, seed=9)
        assert a.delivery_fingerprint == b.delivery_fingerprint
        c = session.simulate("mfp", load=0.03, cycles=100, seed=10)
        assert c.delivery_fingerprint != a.delivery_fingerprint

    def test_path_cache_hits_across_simulates(self, session):
        netsim = session.routing.netsim
        netsim.simulate("mfp", load=0.02, cycles=60, seed=1)
        misses = session.cache_info["path_misses"]
        netsim.simulate("mfp", load=0.02, cycles=60, seed=2)
        assert session.cache_info["path_misses"] == misses
        assert session.cache_info["path_hits"] >= 1

    def test_path_cache_invalidated_by_new_faults(self, session):
        session.simulate("mfp", load=0.02, cycles=60, seed=1)
        misses = session.cache_info["path_misses"]
        session.add_faults([(8, 8)])
        session.simulate("mfp", load=0.02, cycles=60, seed=1)
        assert session.cache_info["path_misses"] > misses

    def test_messages_override_and_latency_consistency(self, session):
        stats = session.simulate("mfp", load=0.01, cycles=200, seed=2, messages=40)
        assert stats.attempted == 40
        if stats.delivered:
            assert stats.total_latency == stats.total_queueing + stats.total_hops
            assert stats.mean_latency >= stats.mean_hops

    def test_validation_errors(self, session):
        with pytest.raises(ValueError, match="load"):
            session.simulate("mfp", load=0.0)
        with pytest.raises(ValueError, match="arrival"):
            session.simulate("mfp", arrival="uniform")
        with pytest.raises(ValueError, match="spatial"):
            session.simulate("mfp", traffic="poisson")

    def test_traffic_and_arrival_options_forwarded(self, session):
        stats = session.simulate(
            "mfp", traffic="hotspot", arrival="bursty", load=0.02, cycles=100,
            seed=4, fraction=0.5, arrival_options=BurstyArrivalOptions(burst=4),
        )
        assert stats.traffic == "hotspot" and stats.arrival == "bursty"

    def test_summary_and_histograms(self, session):
        stats = session.simulate("mfp", load=0.05, cycles=100, seed=5)
        text = stats.summary()
        assert "load" in text and "latency" in text
        utilisation = stats.utilisation()
        assert utilisation.shape == (10 * 10 * 4, NUM_VCS)
        assert float(utilisation.max()) <= 1.0
        counts, edges = stats.utilisation_histogram(bins=5)
        assert counts.sum() == utilisation.size
        assert len(edges) == 6
        vc = stats.vc_busy()
        assert set(vc) == {"vc0", "vc1", "vc2", "vc3", "base"}
        assert sum(vc.values()) == int(stats.busy.sum())


class TestVerdicts:
    def test_light_load_is_stable(self):
        session = MeshSession(width=10)
        stats = session.simulate("mfp", load=0.005, cycles=200, seed=1)
        assert stats.delivered == stats.attempted
        assert not stats.saturated and not stats.deadlocked
        assert stats.mean_queueing < 1.0

    def test_fault_free_overload_saturates_without_deadlock(self):
        # The fault-free mesh's static channel graph is acyclic, so the
        # network can only saturate (leftover in-flight traffic), never
        # deadlock.
        session = MeshSession(width=8)
        stats = session.simulate("mfp", load=2.0, cycles=60, seed=3, drain_factor=2)
        assert stats.saturated
        assert not stats.deadlocked
        assert stats.in_flight > 0

    def test_latency_grows_with_load(self):
        session = MeshSession(width=10)
        session.add_faults([(4, 4), (5, 4)])
        low = session.simulate("mfp", load=0.005, cycles=300, seed=2)
        high = session.simulate("mfp", load=0.08, cycles=300, seed=2)
        assert low.mean_latency < high.mean_latency
        assert low.mean_queueing <= high.mean_queueing

    def test_deadlock_reported_consistently(self):
        # Dense traffic over clustered faults can deadlock (the vc0-vc3
        # discipline's static graph is cyclic for dense populations around
        # regions); both simulators must agree on the verdict.
        session = MeshSession(width=12)
        session.add_faults([(5, 5), (5, 6), (6, 5), (6, 6)])
        a = session.simulate("mfp", load=0.5, cycles=100, seed=0, sim="array")
        s = session.simulate("mfp", load=0.5, cycles=100, seed=0, sim="scalar")
        assert a.deadlocked == s.deadlocked
        assert a.delivery_fingerprint == s.delivery_fingerprint
        if a.deadlocked:
            assert a.saturated


def _simulate_fingerprint(args):
    """Worker entry point of the cross-process determinism test."""
    width, faults, load, seed, sim = args
    session = MeshSession(width=width)
    session.add_faults(list(faults))
    stats = session.simulate("mfp", load=load, cycles=80, seed=seed, sim=sim)
    return stats.delivery_fingerprint


class TestCrossProcessDeterminism:
    def test_fork_workers_reproduce_parent(self):
        args = (10, ((3, 3), (3, 4)), 0.04, 13, "array")
        local = _simulate_fingerprint(args)
        scalar_local = _simulate_fingerprint((10, ((3, 3), (3, 4)), 0.04, 13, "scalar"))
        assert local == scalar_local
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=2) as pool:
            remote = pool.map(_simulate_fingerprint, [args, args])
        assert remote == [local, local]
