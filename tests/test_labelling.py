"""Unit tests for labelling schemes 1 and 2 (repro.core.labelling)."""

import numpy as np
import pytest

from repro.core.labelling import (
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    faults_to_mask,
)
from repro.mesh.topology import Torus2D


def mask(width, height, nodes):
    return faults_to_mask(nodes, width, height)


class TestFaultsToMask:
    def test_round_trip(self):
        m = mask(5, 5, [(0, 0), (3, 4)])
        assert m[0, 0] and m[3, 4]
        assert m.sum() == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mask(5, 5, [(5, 0)])


class TestScheme1:
    def test_no_faults_no_unsafe(self):
        result = apply_labelling_scheme_1(mask(6, 6, []))
        assert result.labels.sum() == 0
        assert result.rounds == 0

    def test_single_fault_stays_alone(self):
        result = apply_labelling_scheme_1(mask(6, 6, [(3, 3)]))
        assert result.labels.sum() == 1
        assert result.rounds == 0

    def test_isolated_faults_do_not_grow(self):
        result = apply_labelling_scheme_1(mask(8, 8, [(1, 1), (5, 5)]))
        assert result.labels.sum() == 2

    def test_diagonal_pair_grows_to_2x2_block(self):
        result = apply_labelling_scheme_1(mask(6, 6, [(2, 2), (3, 3)]))
        unsafe = {(int(x), int(y)) for x, y in zip(*np.nonzero(result.labels))}
        assert unsafe == {(2, 2), (2, 3), (3, 2), (3, 3)}
        assert result.rounds == 1

    def test_unsafe_node_needs_threats_in_both_dimensions(self):
        # Two faults in the same row one apart: the node between them has
        # x-dimension threats only and must stay safe.
        result = apply_labelling_scheme_1(mask(6, 6, [(1, 3), (3, 3)]))
        assert not result.labels[2, 3]

    def test_growth_cascades_over_multiple_rounds(self):
        # A sparse diagonal chain grows into its bounding rectangle.
        faults = [(0, 0), (1, 1), (2, 2), (3, 3)]
        result = apply_labelling_scheme_1(mask(6, 6, faults))
        assert result.labels[:4, :4].all()
        assert result.labels.sum() == 16
        assert result.rounds >= 2

    def test_blocks_are_rectangles(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            nodes = [(int(x), int(y)) for x, y in rng.integers(0, 12, size=(10, 2))]
            result = apply_labelling_scheme_1(mask(12, 12, nodes))
            # Every 4-connected unsafe region must fill its bounding box.
            from repro.core.regions import regions_from_masks

            regions = regions_from_masks(result.labels, mask(12, 12, nodes))
            assert all(region.is_rectangle for region in regions)

    def test_mesh_border_does_not_wrap(self):
        result = apply_labelling_scheme_1(mask(5, 5, [(0, 0), (4, 4)]))
        assert result.labels.sum() == 2

    def test_torus_wraps(self):
        topo = Torus2D(5, 5)
        result = apply_labelling_scheme_1(mask(5, 5, [(0, 0), (4, 4)]), topo)
        # On the torus the two faults are diagonal neighbours, so the wrapped
        # 2x2 corner block forms.
        assert result.labels.sum() == 4
        assert result.labels[0, 4] and result.labels[4, 0]


class TestScheme2:
    def run_both(self, width, height, faults, topology=None, **kwargs):
        fault_mask = mask(width, height, faults)
        scheme1 = apply_labelling_scheme_1(fault_mask, topology)
        scheme2 = apply_labelling_scheme_2(fault_mask, scheme1.labels, topology, **kwargs)
        return scheme1, scheme2

    def test_faulty_nodes_stay_disabled(self):
        _, scheme2 = self.run_both(6, 6, [(2, 2), (3, 3)])
        assert scheme2.labels[2, 2] and scheme2.labels[3, 3]

    def test_diagonal_pair_releases_the_two_corner_fills(self):
        # The 2x2 block of two diagonal faults shrinks back: the two
        # non-faulty corners have two enabled neighbours each.
        _, scheme2 = self.run_both(6, 6, [(2, 2), (3, 3)])
        assert not scheme2.labels[2, 3]
        assert not scheme2.labels[3, 2]
        assert scheme2.labels.sum() == 2

    def test_result_is_orthogonal_convex(self):
        from repro.core.regions import regions_from_masks

        rng = np.random.default_rng(1)
        for _ in range(20):
            nodes = [(int(x), int(y)) for x, y in rng.integers(0, 15, size=(18, 2))]
            fault_mask = mask(15, 15, nodes)
            scheme1 = apply_labelling_scheme_1(fault_mask)
            scheme2 = apply_labelling_scheme_2(fault_mask, scheme1.labels)
            regions = regions_from_masks(scheme2.labels, fault_mask)
            assert all(region.is_orthogonal_convex for region in regions)

    def test_disabled_set_shrinks_but_keeps_faults(self):
        scheme1, scheme2 = self.run_both(10, 10, [(1, 1), (2, 2), (5, 5), (6, 6)])
        assert scheme2.labels.sum() <= scheme1.labels.sum()
        assert (scheme2.labels & ~scheme1.labels).sum() == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_labelling_scheme_2(np.zeros((3, 3), bool), np.zeros((4, 4), bool))

    def test_mesh_corner_node_stays_disabled_without_virtual_neighbours(self):
        # A non-faulty corner wedged between two faults has only two real
        # neighbours, both disabled: it can never collect two enabled
        # neighbours under the faithful mesh semantics.
        faults = [(1, 0), (0, 1), (1, 1)]
        _, scheme2 = self.run_both(5, 5, faults)
        assert scheme2.labels[0, 0]

    def test_mesh_corner_node_released_with_virtual_neighbours(self):
        faults = [(1, 0), (0, 1), (1, 1)]
        _, scheme2 = self.run_both(
            5, 5, faults, missing_neighbours_enabled=True
        )
        assert not scheme2.labels[0, 0]

    def test_rounds_zero_when_nothing_to_release(self):
        _, scheme2 = self.run_both(6, 6, [(2, 2)])
        assert scheme2.rounds == 0

    def test_total_rounds_fp_exceed_fb(self):
        # FP pays the scheme-1 rounds plus the scheme-2 rounds, matching the
        # paper's observation that FP needs more rounds than FB.
        scheme1, scheme2 = self.run_both(12, 12, [(2, 2), (3, 3), (4, 4), (5, 5)])
        assert scheme1.rounds + scheme2.rounds > scheme1.rounds
