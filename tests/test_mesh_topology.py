"""Unit tests for repro.mesh.topology."""

import pytest

from repro.mesh.topology import Mesh2D


class TestMesh2D:
    def test_dimensions_and_node_count(self):
        mesh = Mesh2D(7, 5)
        assert mesh.num_nodes == 35
        assert not mesh.is_square
        assert Mesh2D(4, 4).is_square

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 5)
        with pytest.raises(ValueError):
            Mesh2D(5, -1)

    def test_contains(self, mesh10):
        assert (0, 0) in mesh10
        assert (9, 9) in mesh10
        assert (10, 0) not in mesh10
        assert (0, -1) not in mesh10

    def test_validate_raises_for_outside_nodes(self, mesh10):
        with pytest.raises(ValueError):
            mesh10.validate((10, 3))

    def test_nodes_enumeration(self):
        mesh = Mesh2D(3, 2)
        assert sorted(mesh.nodes()) == [
            (0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1),
        ]

    def test_interior_degree_is_four(self, mesh10):
        assert mesh10.degree((5, 5)) == 4

    def test_corner_degree_is_two(self, mesh10):
        assert mesh10.degree((0, 0)) == 2
        assert mesh10.degree((9, 9)) == 2

    def test_edge_degree_is_three(self, mesh10):
        assert mesh10.degree((0, 5)) == 3

    def test_neighbours_clipped_at_border(self, mesh10):
        assert set(mesh10.neighbours((0, 0))) == {(1, 0), (0, 1)}

    def test_dimension_neighbours_split(self, mesh10):
        xs, ys = mesh10.dimension_neighbours((3, 0))
        assert set(xs) == {(2, 0), (4, 0)}
        assert set(ys) == {(3, 1)}  # (3, -1) does not exist

    def test_adjacent_nodes_definition_2(self, mesh10):
        assert len(mesh10.adjacent_nodes((5, 5))) == 8
        assert len(mesh10.adjacent_nodes((0, 0))) == 3

    def test_distance_is_manhattan(self, mesh10):
        assert mesh10.distance((0, 0), (9, 9)) == 18
        assert mesh10.distance((3, 4), (3, 4)) == 0

    def test_diameter(self):
        # The paper: an n x n mesh has a network diameter of 2(n - 1).
        assert Mesh2D(10, 10).diameter == 18
        assert Mesh2D(100, 100).diameter == 198

    def test_boundary_detection(self, mesh10):
        assert mesh10.is_boundary((0, 5))
        assert mesh10.is_boundary((5, 9))
        assert not mesh10.is_boundary((4, 4))

    def test_normalise_drops_outside_coordinates(self, mesh10):
        assert mesh10.normalise((3, 3)) == (3, 3)
        assert mesh10.normalise((-1, 3)) is None
        assert mesh10.normalise((3, 10)) is None


class TestTorus2D:
    def test_wraparound_neighbours(self, torus10):
        assert set(torus10.neighbours((0, 0))) == {(1, 0), (0, 1), (9, 0), (0, 9)}

    def test_every_node_has_degree_four(self, torus10):
        assert all(torus10.degree(node) == 4 for node in torus10.nodes())

    def test_normalise_wraps(self, torus10):
        assert torus10.normalise((-1, 0)) == (9, 0)
        assert torus10.normalise((10, 12)) == (0, 2)

    def test_distance_uses_wraparound(self, torus10):
        assert torus10.distance((0, 0), (9, 0)) == 1
        assert torus10.distance((0, 0), (5, 5)) == 10

    def test_diameter(self, torus10):
        assert torus10.diameter == 10

    def test_no_boundary_nodes(self, torus10):
        assert not any(torus10.is_boundary(node) for node in torus10.nodes())

    def test_adjacent_nodes_wrap(self, torus10):
        adjacent = torus10.adjacent_nodes((0, 0))
        assert (9, 9) in adjacent
        assert len(adjacent) == 8
