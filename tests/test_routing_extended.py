"""Unit tests for the extended e-cube routing around fault regions."""

import pytest

from repro.core.mfp import build_minimum_polygons
from repro.faults.scenario import generate_scenario
from repro.mesh.topology import Mesh2D
from repro.routing.extended_ecube import ExtendedECubeRouter
from repro.types import MessageType, Orientation


@pytest.fixture
def paper_router(figure2_region):
    """Router for the paper's Figure 2 example: a 10x10 mesh with the
    L-shaped fault polygon {(2,4), (3,4), (4,3)}."""
    return ExtendedECubeRouter(Mesh2D(10, 10), [figure2_region])


class TestFaultFreeRouting:
    def test_routes_follow_ecube_without_faults(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [])
        result = router.route((1, 1), (6, 5))
        assert result.delivered
        assert result.is_minimal
        assert result.abnormal_hops == 0

    def test_route_to_self(self):
        router = ExtendedECubeRouter(Mesh2D(8, 8), [])
        result = router.route((3, 3), (3, 3))
        assert result.delivered
        assert result.hops == 0


class TestPaperFigure2Example:
    def test_route_from_1_3_to_6_4(self, paper_router):
        result = paper_router.route((1, 3), (6, 4))
        assert result.delivered
        # The message routes around the polygon counter-clockwise and
        # becomes normal again at (5,2), then follows the base e-cube
        # routing through (6,2) up to (6,4).
        assert (5, 2) in result.path
        assert (6, 2) in result.path
        assert result.path[-1] == (6, 4)
        assert result.abnormal_hops > 0

    def test_route_never_visits_disabled_nodes(self, paper_router, figure2_region):
        result = paper_router.route((1, 3), (6, 4))
        assert not set(result.path) & set(figure2_region)

    def test_source_or_destination_inside_region_fails(self, paper_router):
        assert not paper_router.route((2, 4), (0, 0)).delivered
        assert not paper_router.route((0, 0), (4, 3)).delivered
        assert paper_router.route((2, 4), (0, 0)).reason == "source disabled"

    def test_unaffected_routes_stay_minimal(self, paper_router):
        result = paper_router.route((0, 0), (9, 0))
        assert result.delivered and result.is_minimal


class TestOrientationRules:
    def test_ns_sn_orientation_is_dont_care(self):
        rule = ExtendedECubeRouter._orientation
        assert rule(MessageType.NS, (3, 5), (3, 0)) is Orientation.CLOCKWISE
        assert rule(MessageType.SN, (3, 0), (3, 5)) is Orientation.CLOCKWISE

    def test_we_bound_orientation(self):
        rule = ExtendedECubeRouter._orientation
        # Above the row of travel (destination row): clockwise.
        assert rule(MessageType.WE, (2, 6), (8, 4)) is Orientation.CLOCKWISE
        # Below the row of travel: counter-clockwise (the Figure 2 case).
        assert rule(MessageType.WE, (2, 3), (6, 4)) is Orientation.COUNTERCLOCKWISE

    def test_ew_bound_orientation_is_mirror(self):
        rule = ExtendedECubeRouter._orientation
        assert rule(MessageType.EW, (7, 6), (1, 4)) is Orientation.COUNTERCLOCKWISE
        assert rule(MessageType.EW, (7, 2), (1, 4)) is Orientation.CLOCKWISE


class TestRoutingAcrossConstructedRegions:
    def test_all_pairs_deliverable_around_a_single_polygon(self):
        region = {(4, 4), (4, 5), (5, 4), (5, 5), (6, 4)}
        router = ExtendedECubeRouter(Mesh2D(12, 12), [region])
        sources = [(0, 0), (0, 11), (11, 0), (11, 11), (3, 6), (8, 3)]
        destinations = [(9, 9), (2, 2), (11, 5), (0, 5), (7, 7)]
        for source in sources:
            for destination in destinations:
                result = router.route(source, destination)
                assert result.delivered, (source, destination, result.reason)
                assert not set(result.path) & region

    def test_detour_is_bounded_by_region_perimeter(self):
        region = {(4, y) for y in range(3, 8)}
        router = ExtendedECubeRouter(Mesh2D(12, 12), [region])
        result = router.route((1, 5), (8, 5))
        assert result.delivered
        assert result.detour <= 2 * len(region) + 4

    def test_routing_with_mfp_regions_from_a_scenario(self):
        # Polygons built from real fault patterns may touch each other
        # diagonally (the router treats that as an obstruction and gives
        # up), so the delivery rate is below 1.0 but still high.
        scenario = generate_scenario(num_faults=40, width=20, model="clustered", seed=21)
        construction = build_minimum_polygons(
            scenario.faults, topology=scenario.topology(), compute_rounds=False
        )
        router = ExtendedECubeRouter(scenario.topology(), construction.regions)
        delivered = 0
        attempted = 0
        for source in [(0, 0), (19, 19), (0, 19), (19, 0), (10, 10)]:
            for destination in [(5, 5), (15, 3), (3, 15), (18, 18)]:
                if router.is_disabled(source) or router.is_disabled(destination):
                    continue
                attempted += 1
                result = router.route(source, destination)
                delivered += result.delivered
        assert attempted > 0
        assert delivered / attempted >= 0.75

    def test_hop_budget_failure_is_reported(self):
        region = {(4, 4)}
        router = ExtendedECubeRouter(Mesh2D(10, 10), [region], max_hops=2)
        result = router.route((0, 4), (9, 4))
        assert not result.delivered
