"""Shared key/alias machinery of the spec registries.

The package keeps three pluggable registries -- constructions
(:mod:`repro.api.registry`), routers (:mod:`repro.routing.registry`) and
traffic workloads (:mod:`repro.routing.traffic`) -- with identical
semantics: case-insensitive keys (``_`` and ``-`` interchangeable),
aliases, collision detection, and a ``replace=True`` mode that may only
take over one key (never hijack another spec's names).  This class is that
machinery, parameterised on the registered noun; the registry modules own
the spec types and the domain-specific wrappers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple


def make_spec_options(
    noun: str,
    spec: Any,
    options: Optional[Any] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Validate/construct a spec's typed option set for one call.

    The shared body behind ``ConstructionSpec.make_options``,
    ``RouterSpec.make_options`` and ``TrafficSpec.make_options``: build
    the spec's ``options_type`` from keyword *overrides*, or validate an
    explicit *options* instance (rejecting mismatched types with the
    registry *noun* in the message) and apply the overrides on top.
    """
    overrides = dict(overrides or {})
    if options is None:
        return spec.options_type(**overrides)
    if not isinstance(options, spec.options_type):
        raise TypeError(
            f"{noun} {spec.key!r} expects "
            f"{spec.options_type.__name__}, got {type(options).__name__}"
        )
    if overrides:
        options = dataclasses.replace(options, **overrides)
    return options


class SpecRegistry:
    """One key/alias registry of spec objects.

    Specs must expose ``key`` and ``aliases`` attributes.  ``specs`` and
    ``aliases`` are plain dicts (key -> spec, alias -> key) and are part
    of the contract: registry modules may re-export them for tests and
    diagnostics.  *on_replace* is called with the normalised key before a
    ``replace=True`` registration swaps a different spec in, so registries
    with satellite state (e.g. the construction registry's incremental
    builders) can disconnect it.
    """

    def __init__(self, noun: str, on_replace: Optional[Callable[[str], Any]] = None) -> None:
        self.noun = noun
        self.specs: Dict[str, Any] = {}
        self.aliases: Dict[str, str] = {}
        self.on_replace = on_replace

    @staticmethod
    def normalise(key: str) -> str:
        """Normalise *key* (case-insensitive, ``_`` == ``-``)."""
        return key.strip().lower().replace("_", "-")

    def register(self, spec: Any, replace: bool = False) -> Any:
        """Register *spec* (and its aliases); ``ValueError`` on collisions.

        ``replace=True`` only licenses taking over *this* spec's key: the
        replacement's names must not hijack other registered specs, and
        the previous spec's aliases stop resolving.  Validation happens
        before any mutation, so a rejected registration leaves the
        registry untouched.
        """
        key = self.normalise(spec.key)
        names = [key] + [self.normalise(alias) for alias in spec.aliases]
        if not replace:
            for name in names:
                if name in self.specs or name in self.aliases:
                    raise ValueError(f"{self.noun} key {name!r} is already registered")
        else:
            if key in self.aliases:
                raise ValueError(
                    f"key {key!r} is an alias of {self.aliases[key]!r}; "
                    f"replace that spec instead"
                )
            for name in names[1:]:
                if name in self.specs or self.aliases.get(name, key) != key:
                    raise ValueError(
                        f"alias {name!r} of replacement spec {key!r} collides "
                        f"with another registered {self.noun}"
                    )
            if self.specs.get(key) is not spec:
                if self.on_replace is not None:
                    self.on_replace(key)
                for alias in [a for a, target in self.aliases.items() if target == key]:
                    del self.aliases[alias]
        self.specs[key] = spec
        for name in names[1:]:
            self.aliases[name] = key
        return spec

    def get(self, key: str) -> Any:
        """Look up a spec by key or alias (case-insensitive)."""
        name = self.normalise(key)
        name = self.aliases.get(name, name)
        try:
            return self.specs[name]
        except KeyError:
            known = ", ".join(sorted(self.specs))
            raise KeyError(
                f"unknown {self.noun} {key!r}; registered keys: {known}"
            ) from None

    def available(self) -> List[Any]:
        """Every registered spec, in registration order."""
        return list(self.specs.values())

    def keys(self) -> Tuple[str, ...]:
        """The registered keys, in registration order."""
        return tuple(self.specs)
