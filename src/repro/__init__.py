"""repro -- Minimum Orthogonal Convex Polygons in 2-D Faulty Meshes.

A faithful, self-contained reproduction of

    Jie Wu and Zhen Jiang,
    "On Constructing the Minimum Orthogonal Convex Polygon in 2-D Faulty
    Meshes", Proc. 18th International Parallel and Distributed Processing
    Symposium (IPDPS), 2004.

The package provides the three fault-region models the paper compares
(rectangular faulty blocks, sub-minimum faulty polygons, minimum faulty
polygons), both centralized solutions and the distributed solution for the
minimum polygons, the fault-injection models and mesh substrate they run
on, the extended e-cube routing application, and the experiment harness
that regenerates the paper's Figures 9-11.

The canonical public surface is :mod:`repro.api`: a construction registry
(string keys ``"fb"``/``"fp"``/``"mfp"``/``"cmfp"``/``"dmfp"`` with one
uniform build protocol), the incremental :class:`~repro.api.MeshSession`,
its routing facade (router registry ``"ecube"``/``"extended-ecube"`` plus
the synthetic traffic registry ``"uniform"``/``"transpose"``/
``"bit-reversal"``/``"hotspot"``/``"nearest-neighbour"``/``"permutation"``,
all reachable via ``session.route(...)``) and the parallel
:class:`~repro.api.SweepExecutor` for construction and routing sweeps.

Quickstart
----------

>>> from repro import MeshSession, generate_scenario
>>> scenario = generate_scenario(num_faults=60, width=40, model="clustered", seed=7)
>>> session = MeshSession.from_scenario(scenario)
>>> fb = session.build("fb")
>>> mfp = session.build("mfp")
>>> mfp.num_disabled_nonfaulty <= fb.num_disabled_nonfaulty
True

The historical loose construction functions (``build_faulty_blocks`` and
friends) remain importable from the top level as deprecation shims; new
code should go through :mod:`repro.api`.
"""

import warnings as _warnings
from importlib import import_module as _import_module

from repro.types import (
    ActivityLabel,
    Coord,
    FaultRegionModel,
    MessageType,
    NodeKind,
    Orientation,
    SafetyLabel,
    Side,
)
from repro.mesh import Mesh2D, StatusGrid, Torus2D
from repro.geometry import (
    Rectangle,
    boundary_ring,
    bounding_rectangle,
    concave_column_sections,
    concave_row_sections,
    concave_sections,
    is_orthogonal_convex,
    kernel_enabled,
    orthogonal_convex_hull,
    use_kernel,
)
from repro.faults import (
    ClusteredFaultModel,
    FaultScenario,
    RandomFaultModel,
    derive_trial_seed,
    generate_scenario,
    make_fault_model,
    sweep_scenarios,
)
from repro.core import (
    FaultComponent,
    FaultRegion,
    FaultyBlockConstruction,
    MinimumPolygonConstruction,
    SubMinimumConstruction,
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    extract_regions,
    find_components,
)
from repro.distributed import (
    DistributedMinimumPolygonConstruction,
    construct_boundary_ring,
)
from repro.routing import (
    ECubeRouter,
    ExtendedECubeRouter,
    RoutingSimulator,
    RoutingStats,
    ecube_path,
)
from repro.sim import (
    FigureSeries,
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
    routing_series,
)
from repro import api
from repro.api import (
    ConstructionResult,
    ConstructionSpec,
    MeshSession,
    RouterSpec,
    RoutingSession,
    SweepExecutor,
    TrafficSpec,
    available_constructions,
    available_routers,
    available_traffic,
    get_construction,
    get_router,
    get_traffic,
    register_construction,
    register_router,
    register_traffic,
)

__version__ = "1.1.0"

#: Legacy loose functions kept as deprecation shims: name -> (module, attr,
#: replacement hint).  They resolve lazily via the module __getattr__ below
#: and emit a DeprecationWarning on first access per import site.
_DEPRECATED = {
    "build_faulty_blocks": (
        "repro.core.faulty_block",
        "build_faulty_blocks",
        'repro.api.get_construction("fb").build(scenario)',
    ),
    "build_sub_minimum_polygons": (
        "repro.core.sub_minimum",
        "build_sub_minimum_polygons",
        'repro.api.get_construction("fp").build(scenario)',
    ),
    "build_minimum_polygons": (
        "repro.core.mfp",
        "build_minimum_polygons",
        'repro.api.get_construction("mfp").build(scenario)',
    ),
    "build_minimum_polygons_via_labelling": (
        "repro.core.mfp",
        "build_minimum_polygons_via_labelling",
        'repro.api.get_construction("mfp").build(scenario, via_labelling=True)',
    ),
    "component_minimum_polygon": (
        "repro.core.mfp",
        "component_minimum_polygon",
        "repro.api.MeshSession.component_hull(component)",
    ),
    "build_minimum_polygons_distributed": (
        "repro.distributed.dmfp",
        "build_minimum_polygons_distributed",
        'repro.api.get_construction("dmfp").build(scenario)',
    ),
    "compare_constructions": (
        "repro.sim.experiments",
        "compare_constructions",
        "repro.api.collect_scenario_metrics(scenario)",
    ),
    "run_sweep": (
        "repro.sim.experiments",
        "run_sweep",
        "repro.api.SweepExecutor(...).run(fault_counts, trials)",
    ),
}


def array_backends():
    """Registered array-backend key -> whether it can run here (probed lazily).

    The hot primitives (mask labelling/hulls, routing-engine scans, netsim
    arbitration) dispatch through the pluggable backend registry of
    :mod:`repro._array_ops`, selected by ``REPRO_ARRAY_BACKEND`` /
    :func:`repro.api.use_backend`.  Calling this probes the optional
    dependencies (importing numba/cupy when installed); a plain ``import
    repro`` never does -- numpy-only users pay no import-time JIT cost.
    """
    from repro._array_ops import backend_status

    return backend_status()


def __getattr__(name):
    """Resolve deprecated top-level names lazily, with a warning."""
    if name in _DEPRECATED:
        module, attr, replacement = _DEPRECATED[name]
        _warnings.warn(
            f"repro.{name} is deprecated; use {replacement} instead "
            f"(the object itself still lives in {module})",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_import_module(module), attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_DEPRECATED))


__all__ = [
    # types
    "Coord",
    "NodeKind",
    "SafetyLabel",
    "ActivityLabel",
    "Side",
    "Orientation",
    "MessageType",
    "FaultRegionModel",
    # mesh
    "Mesh2D",
    "Torus2D",
    "StatusGrid",
    # geometry
    "Rectangle",
    "bounding_rectangle",
    "is_orthogonal_convex",
    "orthogonal_convex_hull",
    "concave_row_sections",
    "concave_column_sections",
    "concave_sections",
    "boundary_ring",
    "kernel_enabled",
    "use_kernel",
    # faults
    "RandomFaultModel",
    "ClusteredFaultModel",
    "make_fault_model",
    "FaultScenario",
    "generate_scenario",
    "sweep_scenarios",
    "derive_trial_seed",
    # canonical API
    "api",
    "MeshSession",
    "RoutingSession",
    "SweepExecutor",
    "ConstructionSpec",
    "ConstructionResult",
    "RouterSpec",
    "TrafficSpec",
    "get_construction",
    "available_constructions",
    "register_construction",
    "get_router",
    "available_routers",
    "register_router",
    "get_traffic",
    "available_traffic",
    "register_traffic",
    "array_backends",
    # core constructions (result types and analysis helpers)
    "apply_labelling_scheme_1",
    "apply_labelling_scheme_2",
    "find_components",
    "FaultComponent",
    "FaultRegion",
    "extract_regions",
    "FaultyBlockConstruction",
    "SubMinimumConstruction",
    "MinimumPolygonConstruction",
    # distributed
    "DistributedMinimumPolygonConstruction",
    "construct_boundary_ring",
    # routing
    "ecube_path",
    "ECubeRouter",
    "ExtendedECubeRouter",
    "RoutingStats",
    "RoutingSimulator",
    # simulation harness
    "FigureSeries",
    "figure9_series",
    "figure10_series",
    "figure11_series",
    "routing_series",
    "format_series_table",
    # deprecated shims (resolved via __getattr__ with a DeprecationWarning)
    "build_faulty_blocks",
    "build_sub_minimum_polygons",
    "build_minimum_polygons",
    "build_minimum_polygons_via_labelling",
    "component_minimum_polygon",
    "build_minimum_polygons_distributed",
    "compare_constructions",
    "run_sweep",
    "__version__",
]
