"""repro -- Minimum Orthogonal Convex Polygons in 2-D Faulty Meshes.

A faithful, self-contained reproduction of

    Jie Wu and Zhen Jiang,
    "On Constructing the Minimum Orthogonal Convex Polygon in 2-D Faulty
    Meshes", Proc. 18th International Parallel and Distributed Processing
    Symposium (IPDPS), 2004.

The package provides the three fault-region models the paper compares
(rectangular faulty blocks, sub-minimum faulty polygons, minimum faulty
polygons), both centralized solutions and the distributed solution for the
minimum polygons, the fault-injection models and mesh substrate they run
on, the extended e-cube routing application, and the experiment harness
that regenerates the paper's Figures 9-11.

Quickstart
----------

>>> from repro import generate_scenario, build_faulty_blocks, build_minimum_polygons
>>> scenario = generate_scenario(num_faults=60, width=40, model="clustered", seed=7)
>>> fb = build_faulty_blocks(scenario.faults, topology=scenario.topology())
>>> mfp = build_minimum_polygons(scenario.faults, topology=scenario.topology())
>>> mfp.num_disabled_nonfaulty <= fb.num_disabled_nonfaulty
True
"""

from repro.types import (
    ActivityLabel,
    Coord,
    FaultRegionModel,
    MessageType,
    NodeKind,
    Orientation,
    SafetyLabel,
    Side,
)
from repro.mesh import Mesh2D, StatusGrid, Torus2D
from repro.geometry import (
    Rectangle,
    boundary_ring,
    bounding_rectangle,
    concave_column_sections,
    concave_row_sections,
    concave_sections,
    is_orthogonal_convex,
    orthogonal_convex_hull,
)
from repro.faults import (
    ClusteredFaultModel,
    FaultScenario,
    RandomFaultModel,
    generate_scenario,
    make_fault_model,
    sweep_scenarios,
)
from repro.core import (
    FaultComponent,
    FaultRegion,
    FaultyBlockConstruction,
    MinimumPolygonConstruction,
    SubMinimumConstruction,
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    build_faulty_blocks,
    build_minimum_polygons,
    build_minimum_polygons_via_labelling,
    build_sub_minimum_polygons,
    component_minimum_polygon,
    extract_regions,
    find_components,
)
from repro.distributed import (
    DistributedMinimumPolygonConstruction,
    build_minimum_polygons_distributed,
    construct_boundary_ring,
)
from repro.routing import ExtendedECubeRouter, RoutingSimulator, ecube_path
from repro.sim import (
    FigureSeries,
    compare_constructions,
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    # types
    "Coord",
    "NodeKind",
    "SafetyLabel",
    "ActivityLabel",
    "Side",
    "Orientation",
    "MessageType",
    "FaultRegionModel",
    # mesh
    "Mesh2D",
    "Torus2D",
    "StatusGrid",
    # geometry
    "Rectangle",
    "bounding_rectangle",
    "is_orthogonal_convex",
    "orthogonal_convex_hull",
    "concave_row_sections",
    "concave_column_sections",
    "concave_sections",
    "boundary_ring",
    # faults
    "RandomFaultModel",
    "ClusteredFaultModel",
    "make_fault_model",
    "FaultScenario",
    "generate_scenario",
    "sweep_scenarios",
    # core constructions
    "apply_labelling_scheme_1",
    "apply_labelling_scheme_2",
    "find_components",
    "FaultComponent",
    "FaultRegion",
    "extract_regions",
    "build_faulty_blocks",
    "FaultyBlockConstruction",
    "build_sub_minimum_polygons",
    "SubMinimumConstruction",
    "build_minimum_polygons",
    "build_minimum_polygons_via_labelling",
    "component_minimum_polygon",
    "MinimumPolygonConstruction",
    # distributed
    "build_minimum_polygons_distributed",
    "DistributedMinimumPolygonConstruction",
    "construct_boundary_ring",
    # routing
    "ecube_path",
    "ExtendedECubeRouter",
    "RoutingSimulator",
    # simulation harness
    "compare_constructions",
    "run_sweep",
    "FigureSeries",
    "figure9_series",
    "figure10_series",
    "figure11_series",
    "format_series_table",
    "__version__",
]
