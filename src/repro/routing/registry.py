"""Pluggable registry of fault-tolerant routers.

Mirrors the construction registry of :mod:`repro.api.registry` on the
routing side: every router registers a :class:`RouterSpec` under a short
string key and is built through one uniform protocol::

    router = get_router("extended-ecube").build(construction)
    router = get_router("ecube").build(regions=[region], topology=mesh)

=================  =====  ========================================================
key                label  router
=================  =====  ========================================================
``ecube``          EC     base dimension-ordered x-y routing; fails on the first
                          hop into a fault region (no detours) -- the baseline
``extended-ecube`` XEC    e-cube extended with boundary-ring traversals around
                          orthogonal convex regions (Section 2.2, the paper's
                          routing application)
=================  =====  ========================================================

``build`` accepts a :class:`repro.api.ConstructionResult` (its topology,
regions and -- when the mask kernel produced one -- the cell-to-region
index grid are all reused, so instantiation is O(1) in region membership
work) or explicit ``regions=``/``topology=`` keywords for ad-hoc region
sets.  Per-router knobs are typed frozen option dataclasses, so option
sets are hashable and can key the per-session router cache of
:class:`repro.api.RoutingSession`.

The registry is open: :func:`register_router` plugs a custom router into
:meth:`repro.api.MeshSession.route`, the routing sweeps and the CLI at
once.  A router only needs ``route(source, destination) -> RouteResult``
plus the enabled-endpoint views (``enabled_arrays`` / ``enabled_mask``)
used by the traffic generators.

Torus caveat: both built-in routers route mesh-style x-y paths -- the
paper's Section 2.2 algorithm has no wrap-around channels -- so on a
:class:`~repro.mesh.topology.Torus2D` the wrap links influence the fault
*regions* (component labelling wraps) but never the routed paths, and
``RouteResult.detour`` is measured against the mesh Manhattan distance.
Wrap-adjacent endpoint pairs (e.g. from the ``nearest-neighbour``
workload) therefore route across the mesh interior; a torus-aware router
can be plugged in through this registry.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._registry import SpecRegistry, make_spec_options
from repro.mesh.topology import Topology
from repro.routing.ecube import ecube_next_hop
from repro.routing.extended_ecube import ExtendedECubeRouter, RouteResult


# -- typed options ------------------------------------------------------------------


@dataclass(frozen=True)
class RouterOptions:
    """Base class for per-router options (frozen, hashable, picklable)."""

    def replace(self, **changes: Any) -> "RouterOptions":
        """Return a copy with *changes* applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ECubeOptions(RouterOptions):
    """Options of the base e-cube router (none yet)."""


@dataclass(frozen=True)
class ExtendedECubeOptions(RouterOptions):
    """Options of the extended e-cube router.

    ``max_hops`` caps the per-message hop budget; ``None`` keeps the
    router's default of ``8 * (width + height)``.
    """

    max_hops: Optional[int] = None


# -- the base e-cube router ---------------------------------------------------------


class ECubeRouter(ExtendedECubeRouter):
    """Base dimension-ordered routing with no fault-region detours.

    Shares the region-index representation (O(1) membership, vectorized
    enabled views) of :class:`ExtendedECubeRouter` but reports a failed
    delivery as soon as the e-cube next hop lands in a fault region --
    the baseline the extended routing is measured against.
    """

    def route(self, source, destination) -> RouteResult:
        """Route one message along the pure x-y path."""
        self.topology.validate(source)
        self.topology.validate(destination)
        if self.is_disabled(source):
            return RouteResult(source, destination, False, (source,), 0, "source disabled")
        if self.is_disabled(destination):
            return RouteResult(
                source, destination, False, (source,), 0, "destination disabled"
            )
        path = [source]
        current = source
        while current != destination:
            nxt = ecube_next_hop(current, destination)
            assert nxt is not None
            if self.is_disabled(nxt):
                return RouteResult(
                    source,
                    destination,
                    False,
                    tuple(path),
                    0,
                    "blocked by a fault region (base e-cube has no detour)",
                )
            path.append(nxt)
            current = nxt
        return RouteResult(source, destination, True, tuple(path), 0)

    def route_counts(self, source, destination):
        """Counters-only routing (see the extended router's method).

        Base e-cube paths are at most ``width + height`` hops, so simply
        delegating to :meth:`route` keeps the two entry points trivially
        identical (the inherited counters loop would wrongly detour).
        """
        result = self.route(source, destination)
        return result.delivered, result.hops, result.abnormal_hops, result.reason


# -- the spec -----------------------------------------------------------------------

#: A builder instantiates the router: ``(topology, regions, region_index, options)``.
Builder = Callable[[Topology, Sequence, Optional[np.ndarray], RouterOptions], Any]


@dataclass(frozen=True)
class RouterSpec:
    """One registered router."""

    key: str
    label: str
    description: str
    builder: Builder
    options_type: type = RouterOptions
    aliases: Tuple[str, ...] = ()

    def make_options(
        self,
        options: Optional[RouterOptions] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> RouterOptions:
        """Validate/construct the option set for one build call."""
        return make_spec_options("router", self, options, overrides)

    def build(
        self,
        construction: Any = None,
        topology: Optional[Topology] = None,
        *,
        regions: Optional[Sequence] = None,
        region_index: Optional[np.ndarray] = None,
        options: Optional[RouterOptions] = None,
        **overrides: Any,
    ):
        """Instantiate the router with the uniform signature.

        *construction* is a :class:`repro.api.ConstructionResult` (or any
        legacy construction object exposing ``grid`` and ``regions``);
        its topology and -- when present and shape-compatible -- its
        region-index grid are reused.  Alternatively pass explicit
        ``regions=`` (any iterable of coordinate sets) with ``topology=``
        and, optionally, a precomputed ``region_index=`` grid.
        """
        opts = self.make_options(options, overrides)
        if construction is not None:
            if topology is None:
                topology = construction.grid.topology
            if regions is None:
                regions = construction.regions
            if region_index is None:
                region_index = getattr(construction, "region_index", None)
            if region_index is not None and region_index.shape != (
                topology.width,
                topology.height,
            ):
                region_index = None
        if topology is None or regions is None:
            raise ValueError(
                "RouterSpec.build needs a construction result or explicit "
                "regions= and topology= keywords"
            )
        return self.builder(topology, regions, region_index, opts)


# -- the registry -------------------------------------------------------------------

_ROUTERS = SpecRegistry("router")


def register_router(spec: RouterSpec, replace: bool = False) -> RouterSpec:
    """Register *spec* (and its aliases) in the global router registry.

    Registration makes the router available to ``get_router``,
    :meth:`repro.api.MeshSession.route`, the routing sweeps of
    :class:`repro.api.SweepExecutor` and the CLI ``route --router``
    option.  Raises ``ValueError`` on key collisions unless *replace*.
    """
    return _ROUTERS.register(spec, replace)


def get_router(key: str) -> RouterSpec:
    """Look up a router by key or alias (case-insensitive)."""
    return _ROUTERS.get(key)


def available_routers() -> List[RouterSpec]:
    """Return every registered router spec, in registration order."""
    return _ROUTERS.available()


def router_keys() -> Tuple[str, ...]:
    """Return the registered router keys, in registration order."""
    return _ROUTERS.keys()


# -- built-in routers ---------------------------------------------------------------


def _build_ecube(topology, regions, region_index, options):
    return ECubeRouter(topology, regions, region_index=region_index)


def _build_extended_ecube(topology, regions, region_index, options):
    return ExtendedECubeRouter(
        topology, regions, max_hops=options.max_hops, region_index=region_index
    )


register_router(
    RouterSpec(
        key="ecube",
        label="EC",
        description="base dimension-ordered x-y routing (no detours)",
        builder=_build_ecube,
        options_type=ECubeOptions,
        aliases=("e-cube", "xy"),
    )
)
register_router(
    RouterSpec(
        key="extended-ecube",
        label="XEC",
        description="e-cube with boundary-ring traversals around convex regions",
        builder=_build_extended_ecube,
        options_type=ExtendedECubeOptions,
        aliases=("extended", "extended-e-cube"),
    )
)
