"""Extended e-cube routing around orthogonal convex fault regions.

The router follows the base e-cube routing while the path ahead is clear.
When the next hop falls inside a fault region the message enters *abnormal*
mode and travels along the region's boundary ring, clockwise or
counter-clockwise according to the rules of Section 2.2:

* NS- and SN-bound messages: the orientation is a don't care (clockwise is
  used here);
* WE-bound messages: clockwise when the message is in a row above its row
  of travel (the destination row), counter-clockwise when below, don't care
  when level;
* EW-bound messages: the mirror image.

The message leaves abnormal mode -- "the region no longer has an effect" --
once it has passed the region along its direction of travel (or reached its
destination column during a row traversal) and the base e-cube next hop is
clear again.

The router requires the regions it is given to be orthogonal convex (that
is the whole point of the fault models in this package); it reports a
failed delivery instead of looping forever when a traversal is obstructed
by another overlapping region or leaves the mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.regions import FaultRegion
from repro.geometry.rectangle import Rectangle
from repro.mesh.topology import Topology
from repro.routing.ecube import (
    column_message_type,
    ecube_next_hop,
    initial_message_type,
    manhattan_distance,
)
from repro.types import Coord, MessageType, Orientation


@dataclass(frozen=True)
class RouteResult:
    """Outcome of routing one message."""

    source: Coord
    destination: Coord
    delivered: bool
    path: Tuple[Coord, ...]
    abnormal_hops: int
    reason: str = ""

    @property
    def hops(self) -> int:
        """Number of link traversals performed."""
        return max(0, len(self.path) - 1)

    @property
    def detour(self) -> int:
        """Extra hops compared to the fault-free minimal path."""
        return self.hops - manhattan_distance(self.source, self.destination)

    @property
    def is_minimal(self) -> bool:
        """Whether the delivered path is a minimal (shortest) path."""
        return self.delivered and self.detour == 0


class ExtendedECubeRouter:
    """Route messages around a fixed set of fault regions.

    Region membership is answered from a whole-grid *region-index* array
    (cell -> region index, ``-1`` outside every region): ``is_disabled`` and
    the abnormal-mode region lookup are O(1) array reads, and instantiating
    a router is O(total region size) in vectorized assignments instead of a
    Python dict insert per node.  Constructions built by the mask kernel
    already carry the index grid (``region_index`` on the construction
    result); passing it here skips even the vectorized build.

    Per-region boundary-ring geometry (the ring walk, its first-occurrence
    position map and the bounding box) lives in
    :class:`repro.routing.engine.RegionGeometry` objects, resolved lazily
    only when a message actually enters abnormal mode around that region --
    and shared across router rebuilds when a session attaches its
    :class:`~repro.routing.engine.RegionRingCache`
    (:meth:`attach_ring_cache`), so ``add_faults`` only recomputes the
    rings of regions the update actually changed.  Normal-mode routing
    advances whole straight runs at a time using the
    :class:`~repro.routing.engine.JumpTables` built lazily from the
    disabled mask, instead of re-deriving the next hop one cell at a time.
    """

    def __init__(
        self,
        topology: Topology,
        regions: Sequence[FaultRegion] | Iterable[Iterable[Coord]],
        max_hops: Optional[int] = None,
        region_index: Optional[np.ndarray] = None,
    ) -> None:
        self.topology = topology
        self._regions: List[FrozenSet[Coord]] = []
        for region in regions:
            if isinstance(region, FaultRegion):
                self._regions.append(frozenset(region.nodes))
            else:
                self._regions.append(frozenset(region))
        width, height = topology.width, topology.height
        self._shape = (width, height)
        #: Region nodes outside the grid (legal for ad-hoc caller-supplied
        #: regions; constructions never produce them).
        self._extra_disabled: Dict[Coord, int] = {}
        if region_index is not None and region_index.shape == self._shape:
            self._region_index = region_index
        else:
            self._region_index = np.full(self._shape, -1, dtype=np.int32)
            for index, nodes in enumerate(self._regions):
                if not nodes:
                    continue
                pts = np.asarray(list(nodes))
                keep = (
                    (pts[:, 0] >= 0)
                    & (pts[:, 0] < width)
                    & (pts[:, 1] >= 0)
                    & (pts[:, 1] < height)
                )
                self._region_index[pts[keep, 0], pts[keep, 1]] = index
                for x, y in pts[~keep]:
                    self._extra_disabled[(int(x), int(y))] = index
        self._disabled_mask = self._region_index >= 0
        self._disabled_set: Optional[Set[Coord]] = None
        # Per-region ring geometry, resolved lazily (and through the shared
        # session cache when one is attached); the validity arrays depend on
        # the full disabled mask, so they are cached per router.
        self._geometry: Dict[int, object] = {}
        self._ring_valid: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._shared_rings = None
        self._tables = None
        self._packed_rings = None
        self._counters: Optional[Dict[str, int]] = None
        self.max_hops = max_hops if max_hops is not None else 8 * (
            topology.width + topology.height
        )

    # -- helpers -----------------------------------------------------------------

    @property
    def disabled(self) -> Set[Coord]:
        """Every node belonging to a fault region, as a coordinate set.

        Kept for callers that want the set view (tests, diagnostics);
        materialised lazily from the region-index grid -- routing itself
        never touches it.
        """
        if self._disabled_set is None:
            xs, ys = np.nonzero(self._disabled_mask)
            self._disabled_set = set(zip(xs.tolist(), ys.tolist()))
            self._disabled_set.update(self._extra_disabled)
        return self._disabled_set

    @property
    def enabled_mask(self) -> np.ndarray:
        """Boolean grid of enabled nodes (the complement of all regions).

        The whole-grid view the traffic generators of
        :mod:`repro.routing.traffic` filter endpoints with; treat it as
        read-only.
        """
        return ~self._disabled_mask

    @property
    def num_enabled(self) -> int:
        """Number of nodes outside every fault region."""
        return int(self._shape[0] * self._shape[1] - np.count_nonzero(self._disabled_mask))

    def enabled_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(xs, ys)`` index arrays of all enabled nodes, ``(x, y)``-sorted."""
        return np.nonzero(~self._disabled_mask)

    def enabled_nodes(self) -> List[Coord]:
        """Every grid node outside all fault regions, in ``(x, y)`` order.

        Vectorized complement of the disabled mask -- the same list the
        simulator previously built with one ``is_disabled`` call per node.
        """
        xs, ys = self.enabled_arrays()
        return list(zip(xs.tolist(), ys.tolist()))

    def is_disabled(self, node: Coord) -> bool:
        """Whether *node* belongs to any fault region."""
        x, y = node
        if 0 <= x < self._shape[0] and 0 <= y < self._shape[1]:
            return bool(self._disabled_mask[x, y])
        return node in self._extra_disabled

    def region_of(self, node: Coord) -> int:
        """Index of the region containing *node* (``-1`` when enabled)."""
        x, y = node
        if 0 <= x < self._shape[0] and 0 <= y < self._shape[1]:
            return int(self._region_index[x, y])
        return self._extra_disabled.get(node, -1)

    @property
    def region_index(self) -> np.ndarray:
        """The whole-grid cell-to-region index array (read-only view)."""
        return self._region_index

    def attach_ring_cache(self, cache) -> None:
        """Resolve ring geometry through a shared :class:`RegionRingCache`.

        Called by :class:`repro.api.RoutingSession` right after building a
        router: the cache is keyed by region identity (the frozen node
        set), so a router rebuilt after ``add_faults`` reuses the rings,
        position maps and bounding boxes of every unchanged region.
        """
        self._shared_rings = cache

    def attach_counters(self, counters: Dict[str, int]) -> None:
        """Report engine-state rebuilds into a shared counter dict.

        Called by :class:`repro.api.RoutingSession` right after building
        a router: full :class:`~repro.routing.engine.JumpTables` builds
        bump ``jump_rebuilds`` and fresh
        :class:`~repro.routing.engine.PackedRings` bump ``ring_rebuilds``
        in ``session.cache_info``, so the win of the fault-delta path
        (``delta_applies``) is observable rather than inferred.
        """
        self._counters = counters

    def _count(self, key: str) -> None:
        if self._counters is not None:
            self._counters[key] = self._counters.get(key, 0) + 1

    def jump_tables(self):
        """The straight-run jump tables of this router's disabled mask.

        Built lazily on the first route (one accumulate scan per
        direction) and shared by the scalar straight-run advance and the
        batch engine of :mod:`repro.routing.engine`.  A session rebuild
        after ``add_faults`` normally skips this build entirely: the
        delta path of :func:`repro.routing.engine.transplant_engine_state`
        patches the previous router's tables instead.
        """
        if self._tables is None:
            from repro.routing.engine import JumpTables

            self._tables = JumpTables.from_disabled(self._disabled_mask)
            self._count("jump_rebuilds")
        return self._tables

    def packed_rings(self):
        """The batch kernel's packed ring arrays (lazily built, cached).

        Like :meth:`jump_tables`, a fresh pack only happens on the first
        batch route of a router the delta path could not seed from a
        predecessor.
        """
        if self._packed_rings is None:
            from repro.routing.engine import PackedRings

            self._packed_rings = PackedRings(self)
            self._count("ring_rebuilds")
        return self._packed_rings

    def region_geometry(self, region_index: int):
        """Boundary-ring geometry of one region (lazily resolved, cached).

        Goes through the attached session ring cache when there is one,
        so unchanged regions keep their geometry across router rebuilds.
        """
        geometry = self._geometry.get(region_index)
        if geometry is None:
            if self._shared_rings is not None:
                geometry = self._shared_rings.geometry(self._regions[region_index])
            else:
                from repro.routing.engine import RegionGeometry

                geometry = RegionGeometry(self._regions[region_index])
            self._geometry[region_index] = geometry
        return geometry

    def ring_validity(self, region_index: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(valid, off_mesh)`` arrays over one region's ring nodes.

        ``valid`` marks ring nodes a traversal may step on (inside the
        mesh and outside every region); ``off_mesh`` distinguishes the
        "left the mesh" failure from the "obstructed" one.  Depends on
        the whole disabled mask, so it is cached per router, not in the
        shared region geometry.
        """
        cached = self._ring_valid.get(region_index)
        if cached is None:
            arrays = self.region_geometry(region_index).arrays(*self._shape)
            clip_x = np.clip(arrays.ring_x, 0, self._shape[0] - 1)
            clip_y = np.clip(arrays.ring_y, 0, self._shape[1] - 1)
            valid = arrays.on_mesh & ~self._disabled_mask[clip_x, clip_y]
            cached = (valid, ~arrays.on_mesh)
            self._ring_valid[region_index] = cached
        return cached

    def _ring(self, region_index: int) -> List[Coord]:
        return self.region_geometry(region_index).ring

    def _ring_position(self, region_index: int, node: Coord) -> Optional[int]:
        """First position of *node* on the region's ring (``None`` if absent)."""
        return self.region_geometry(region_index).positions.get(node)

    def _box(self, region_index: int) -> Rectangle:
        return self.region_geometry(region_index).box

    @staticmethod
    def _orientation(message_type: MessageType, current: Coord, destination: Coord) -> Orientation:
        """Apply the orientation rules of Section 2.2."""
        if message_type in (MessageType.NS, MessageType.SN):
            return Orientation.CLOCKWISE
        above = current[1] > destination[1]
        below = current[1] < destination[1]
        if message_type is MessageType.WE:
            if above:
                return Orientation.CLOCKWISE
            if below:
                return Orientation.COUNTERCLOCKWISE
            return Orientation.CLOCKWISE
        # EW-bound: mirror image.
        if above:
            return Orientation.COUNTERCLOCKWISE
        if below:
            return Orientation.CLOCKWISE
        return Orientation.COUNTERCLOCKWISE

    def _passed_region(
        self,
        message_type: MessageType,
        node: Coord,
        destination: Coord,
        box: Rectangle,
    ) -> bool:
        """Whether the region no longer affects a message at *node*."""
        x, y = node
        if message_type is MessageType.WE:
            return x > box.max_x or x == destination[0]
        if message_type is MessageType.EW:
            return x < box.min_x or x == destination[0]
        if message_type is MessageType.SN:
            return y > box.max_y or y == destination[1]
        return y < box.min_y or y == destination[1]

    def _traverse(
        self,
        ring: List[Coord],
        entry_index: int,
        step: int,
        message_type: MessageType,
        destination: Coord,
        box: Rectangle,
    ) -> Tuple[Optional[List[Coord]], str]:
        """Walk *ring* from position *entry_index* in direction *step* until
        the region is cleared.

        Returns ``(hops, reason)``: the hop list when the traversal succeeds,
        or ``None`` plus a failure reason when it walks off the mesh, into
        another region, or all the way around without clearing the region.
        """
        index = entry_index
        hops: List[Coord] = []
        for _ in range(len(ring)):
            index = (index + step) % len(ring)
            node = ring[index]
            if not self.topology.contains(node):
                return None, "traversal left the mesh"
            if self.is_disabled(node):
                return None, "traversal obstructed by another region"
            hops.append(node)
            if self._passed_region(message_type, node, destination, box):
                follow_up = ecube_next_hop(node, destination)
                if follow_up is None or not self.is_disabled(follow_up):
                    return hops, ""
        return None, "could not clear the fault region"

    # -- routing ------------------------------------------------------------------

    def _walk(
        self, source: Coord, destination: Coord, path: Optional[List[Coord]]
    ) -> Tuple[bool, int, int, str]:
        """The one routing loop behind :meth:`route` and :meth:`route_counts`.

        Appends every hop to *path* when one is given; with ``path=None``
        only the counters are tracked, which skips the per-hop list work
        that dominates long budget-bounded walks.  Returns ``(delivered,
        hops, abnormal_hops, reason)``.
        """
        self.topology.validate(source)
        self.topology.validate(destination)
        if self.is_disabled(source):
            return False, 0, 0, "source disabled"
        if self.is_disabled(destination):
            return False, 0, 0, "destination disabled"

        tables = self.jump_tables()
        current = source
        hops = 0
        abnormal_hops = 0
        dx, dy = destination

        while current != destination and hops < self.max_hops:
            x, y = current
            # Normal mode: advance a whole straight run at once.  The jump
            # tables bound the run by the next blocked cell; the e-cube
            # turn point and the remaining hop budget bound it further.
            # The message type only matters when a region blocks the run,
            # so it is not recomputed at every hop.
            if x != dx:
                if dx > x:
                    sign, free = 1, int(tables.east[x, y]) - x - 1
                else:
                    sign, free = -1, x - int(tables.west[x, y]) - 1
                distance = abs(dx - x)
            else:
                if dy > y:
                    sign, free = 1, int(tables.north[x, y]) - y - 1
                else:
                    sign, free = -1, y - int(tables.south[x, y]) - 1
                distance = abs(dy - y)
            if free:
                run = min(distance, free, self.max_hops - hops)
                if x != dx:
                    if path is not None:
                        path.extend((x + sign * i, y) for i in range(1, run + 1))
                    current = (x + sign * run, y)
                else:
                    if path is not None:
                        path.extend((x, y + sign * i) for i in range(1, run + 1))
                    current = (x, y + sign * run)
                hops += run
                continue

            # Abnormal mode: traverse the ring of the blocking region.
            nxt = (x + sign, y) if x != dx else (x, y + sign)
            message_type = (
                initial_message_type(current, destination)
                if x != dx
                else column_message_type(current, destination)
            )
            region_index = self.region_of(nxt)
            box = self._box(region_index)
            ring = self._ring(region_index)
            entry_index = self._ring_position(region_index, current)
            if entry_index is None:
                return (
                    False,
                    hops,
                    abnormal_hops,
                    "traversal entry point not on the region boundary",
                )
            orientation = self._orientation(message_type, current, destination)
            preferred = 1 if orientation is Orientation.CLOCKWISE else -1
            # A region touching the mesh border can only be circled on one
            # side; when the preferred orientation walks off the mesh (or
            # into another region), retry the opposite orientation, as a
            # real router on a border node would.
            detour, reason = None, "could not clear the fault region"
            for step in (preferred, -preferred):
                detour, reason = self._traverse(
                    ring, entry_index, step, message_type, destination, box
                )
                if detour is not None:
                    break
            if detour is None:
                return False, hops, abnormal_hops, reason
            if path is not None:
                path.extend(detour)
            hops += len(detour)
            abnormal_hops += len(detour)
            current = detour[-1]
            if hops >= self.max_hops:
                break

        if current == destination:
            return True, hops, abnormal_hops, ""
        return False, hops, abnormal_hops, "hop budget exhausted"

    def route(self, source: Coord, destination: Coord) -> RouteResult:
        """Route one message and return the full hop-by-hop result."""
        path: List[Coord] = [source]
        delivered, _, abnormal_hops, reason = self._walk(source, destination, path)
        return RouteResult(
            source, destination, delivered, tuple(path), abnormal_hops, reason
        )

    def route_counts(
        self, source: Coord, destination: Coord
    ) -> Tuple[bool, int, int, str]:
        """Route one message, returning counters only (no path).

        Same loop as :meth:`route` (shared :meth:`_walk`), so the
        delivered flag, hop count, abnormal-hop count and failure reason
        are bit-identical by construction -- it merely skips
        materialising the hop-by-hop path, which dominates the cost of
        long budget-bounded walks.  The batch engine of
        :mod:`repro.routing.engine` finishes straggler messages through
        this entry point.  Returns ``(delivered, hops, abnormal_hops,
        reason)``.
        """
        return self._walk(source, destination, None)
