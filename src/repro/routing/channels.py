"""Virtual-channel assignment and deadlock-freedom evidence.

To guarantee freedom from deadlock, the extended e-cube routing assigns four
virtual channels ``vc0 .. vc3`` to the hops performed *around* fault
regions: EW-bound messages use ``vc0``, WE-bound messages ``vc1``, NS-bound
messages ``vc2`` and SN-bound messages ``vc3``.  Hops performed by the base
e-cube routing use the ordinary dimension-ordered channel (modelled here as
a separate "base" channel per link direction), which is deadlock-free on its
own.

This module turns a set of routed paths into a channel-dependency graph and
checks it for cycles; an acyclic graph is the standard evidence that the
configuration cannot deadlock.  It is used by the routing tests and the
routing ablation benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.routing.ecube import initial_message_type
from repro.routing.extended_ecube import RouteResult
from repro.types import Coord, MessageType

#: Virtual channel index used for abnormal (around-the-region) hops.
ABNORMAL_CHANNEL: Dict[MessageType, int] = {
    MessageType.EW: 0,
    MessageType.WE: 1,
    MessageType.NS: 2,
    MessageType.SN: 3,
}

#: Channel identifier: (from-node, to-node, virtual channel index).
Channel = Tuple[Coord, Coord, int]

#: Index used for base e-cube hops (outside any region traversal).
BASE_CHANNEL = 4


@dataclass(frozen=True)
class VirtualChannelAssignment:
    """The channel sequence used by one routed message."""

    result: RouteResult
    channels: Tuple[Channel, ...]

    @property
    def uses_abnormal_channels(self) -> bool:
        """Whether the message needed any around-the-region channel."""
        return any(channel[2] != BASE_CHANNEL for channel in self.channels)


def hop_direction(current: Coord, nxt: Coord, topology=None) -> Tuple[int, int]:
    """The unit direction of one hop, normalising torus wrap hops.

    Mesh hops are always unit steps; on a torus a wrap hop shows up as a
    jump of ``width - 1`` (or ``height - 1``) in the raw coordinate delta.
    Passing the *topology* folds those jumps back onto the physical link
    actually crossed (east wrap ``width-1 -> 0`` is a ``+1`` hop, and so
    on), so channel classification sees the real link direction.
    """
    dx, dy = nxt[0] - current[0], nxt[1] - current[1]
    if topology is not None and (abs(dx) > 1 or abs(dy) > 1):
        width, height = topology.width, topology.height
        if dx == width - 1:
            dx = -1
        elif dx == -(width - 1):
            dx = 1
        if dy == height - 1:
            dy = -1
        elif dy == -(height - 1):
            dy = 1
    return dx, dy


def assign_channels(
    result: RouteResult, topology=None
) -> VirtualChannelAssignment:
    """Assign a virtual channel to every hop of a routed message.

    The message class (and therefore the abnormal channel) is re-evaluated
    at every hop exactly as the router does: EW/WE while row hops remain,
    NS/SN afterwards.  A hop that does not follow the base e-cube next hop
    is an abnormal hop and uses the class channel; base hops use the shared
    dimension-ordered channel.

    Pass *topology* when the paths may contain torus wrap hops: the hop
    direction is then normalised onto the physical wrap link (see
    :func:`hop_direction`).  A wrap hop that steps in the message's mesh
    e-cube direction would be a torus shortcut the mesh-based expectation
    cannot anticipate, so every wrap hop classifies as abnormal (the
    conservative choice -- abnormal channels are the ones proven safe for
    non-e-cube steps).
    """
    channels: List[Channel] = []
    path = result.path
    for current, nxt in zip(path, path[1:]):
        message_type = initial_message_type(current, result.destination)
        dest_x, dest_y = result.destination
        expected_dx = 1 if dest_x > current[0] else -1 if dest_x < current[0] else 0
        expected_dy = 1 if dest_y > current[1] else -1 if dest_y < current[1] else 0
        raw_dx, raw_dy = nxt[0] - current[0], nxt[1] - current[1]
        dx, dy = hop_direction(current, nxt, topology)
        wrapped = (dx, dy) != (raw_dx, raw_dy)
        is_base_hop = not wrapped and (
            (expected_dx != 0 and (dx, dy) == (expected_dx, 0))
            or (expected_dx == 0 and (dx, dy) == (0, expected_dy))
        )
        if is_base_hop:
            channels.append((current, nxt, BASE_CHANNEL))
        else:
            channels.append((current, nxt, ABNORMAL_CHANNEL[message_type]))
    return VirtualChannelAssignment(result=result, channels=tuple(channels))


def channel_dependency_graph(
    assignments: Iterable[VirtualChannelAssignment],
) -> Dict[Channel, Set[Channel]]:
    """Build the channel-dependency graph of a set of routed messages.

    There is an edge from channel ``a`` to channel ``b`` when some message
    holds ``a`` while requesting ``b`` (i.e. uses them on consecutive hops).
    """
    graph: Dict[Channel, Set[Channel]] = defaultdict(set)
    for assignment in assignments:
        for held, requested in zip(assignment.channels, assignment.channels[1:]):
            graph[held].add(requested)
        for channel in assignment.channels:
            graph.setdefault(channel, set())
    return dict(graph)


def has_cyclic_dependency(graph: Dict[Channel, Set[Channel]]) -> bool:
    """Return ``True`` when the channel-dependency graph contains a cycle."""
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[Channel, int] = {node: WHITE for node in graph}
    for start in graph:
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[Channel, Iterable[Channel]]] = [(start, iter(graph[start]))]
        colour[start] = GRAY
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for successor in iterator:
                state = colour.get(successor, WHITE)
                if state == GRAY:
                    return True
                if state == WHITE:
                    colour[successor] = GRAY
                    stack.append((successor, iter(graph.get(successor, set()))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return False
