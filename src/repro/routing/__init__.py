"""Fault-tolerant, deadlock-free routing substrate.

Section 2.2 of the paper motivates the minimum faulty polygon model through
its application: Chalasani and Boppana's *extended e-cube* routing steers
messages around orthogonal convex fault regions using four virtual channels.
This subpackage implements that application so that the impact of the fault
models (FB / FP / MFP) on routing can be measured:

* :mod:`repro.routing.ecube` -- the base dimension-ordered (x-y) routing;
* :mod:`repro.routing.extended_ecube` -- routing around fault regions with
  the EW/WE/NS/SN message classes and the clockwise / counter-clockwise
  orientation rules;
* :mod:`repro.routing.registry` -- the pluggable router registry
  (``get_router("ecube" | "extended-ecube")``) with the uniform
  ``RouterSpec.build(construction, ...)`` protocol;
* :mod:`repro.routing.traffic` -- the declarative synthetic traffic
  workloads (uniform, transpose, bit reversal, hotspot, nearest neighbour,
  permutation) generated as vectorized endpoint index arrays;
* :mod:`repro.routing.engine` -- the routing-engine registry
  (``get_engine("scalar" | "batch")``): the vectorized lockstep batch
  kernel (straight-run jump tables + precomputed ring arrays) next to the
  per-message scalar loop, bit-identical and switchable via
  ``REPRO_ROUTE_ENGINE`` / :func:`~repro.routing.engine.use_engine`;
* :mod:`repro.routing.channels` -- the four-virtual-channel assignment and a
  channel-dependency-cycle check (deadlock-freedom evidence);
* :mod:`repro.routing.stats` -- the aggregate :class:`RoutingStats` record
  shared by every routing entry point;
* :mod:`repro.routing.simulator` -- the legacy whole-network simulator,
  kept as a deprecation shim over the registry/traffic machinery.

The canonical way to run routing experiments is
:meth:`repro.api.MeshSession.route`, which caches routers per construction
and invalidates them on fault updates.
"""

from repro.routing.ecube import ecube_path, ecube_next_hop, initial_message_type
from repro.routing.engine import (
    BatchRouteOutcome,
    EngineSpec,
    JumpTables,
    RegionGeometry,
    RegionRingCache,
    available_engines,
    default_engine,
    engine_keys,
    get_engine,
    register_engine,
    route_batch,
    set_default_engine,
    use_engine,
)
from repro.routing.extended_ecube import ExtendedECubeRouter, RouteResult
from repro.routing.channels import (
    VirtualChannelAssignment,
    channel_dependency_graph,
    has_cyclic_dependency,
)
from repro.routing.registry import (
    ECubeOptions,
    ECubeRouter,
    ExtendedECubeOptions,
    RouterOptions,
    RouterSpec,
    available_routers,
    get_router,
    register_router,
    router_keys,
)
from repro.routing.stats import MissingRouteResultsError, RoutingStats
from repro.routing.traffic import (
    BitReversalOptions,
    HotspotOptions,
    NearestNeighbourOptions,
    PermutationOptions,
    TrafficBatch,
    TrafficContext,
    TrafficOptions,
    TrafficSpec,
    TransposeOptions,
    UniformOptions,
    available_traffic,
    get_traffic,
    register_traffic,
    traffic_keys,
)
from repro.routing.simulator import RoutingSimulator

__all__ = [
    "ecube_path",
    "ecube_next_hop",
    "initial_message_type",
    "ExtendedECubeRouter",
    "ECubeRouter",
    "RouteResult",
    "VirtualChannelAssignment",
    "channel_dependency_graph",
    "has_cyclic_dependency",
    # router registry
    "RouterSpec",
    "RouterOptions",
    "ECubeOptions",
    "ExtendedECubeOptions",
    "get_router",
    "register_router",
    "router_keys",
    "available_routers",
    # traffic registry
    "TrafficSpec",
    "TrafficBatch",
    "TrafficContext",
    "TrafficOptions",
    "UniformOptions",
    "TransposeOptions",
    "BitReversalOptions",
    "HotspotOptions",
    "NearestNeighbourOptions",
    "PermutationOptions",
    "get_traffic",
    "register_traffic",
    "traffic_keys",
    "available_traffic",
    # engine registry
    "EngineSpec",
    "BatchRouteOutcome",
    "JumpTables",
    "RegionGeometry",
    "RegionRingCache",
    "get_engine",
    "register_engine",
    "engine_keys",
    "available_engines",
    "route_batch",
    "default_engine",
    "set_default_engine",
    "use_engine",
    # stats + legacy simulator
    "RoutingStats",
    "MissingRouteResultsError",
    "RoutingSimulator",
]
