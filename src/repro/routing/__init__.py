"""Fault-tolerant, deadlock-free routing substrate.

Section 2.2 of the paper motivates the minimum faulty polygon model through
its application: Chalasani and Boppana's *extended e-cube* routing steers
messages around orthogonal convex fault regions using four virtual channels.
This subpackage implements that application so that the impact of the fault
models (FB / FP / MFP) on routing can be measured:

* :mod:`repro.routing.ecube` -- the base dimension-ordered (x-y) routing;
* :mod:`repro.routing.extended_ecube` -- routing around fault regions with
  the EW/WE/NS/SN message classes and the clockwise / counter-clockwise
  orientation rules;
* :mod:`repro.routing.channels` -- the four-virtual-channel assignment and a
  channel-dependency-cycle check (deadlock-freedom evidence);
* :mod:`repro.routing.simulator` -- a whole-network routing experiment
  (delivery rate, hop counts, detour overhead) used by the routing ablation
  benchmark.
"""

from repro.routing.ecube import ecube_path, ecube_next_hop, initial_message_type
from repro.routing.extended_ecube import ExtendedECubeRouter, RouteResult
from repro.routing.channels import (
    VirtualChannelAssignment,
    channel_dependency_graph,
    has_cyclic_dependency,
)
from repro.routing.simulator import RoutingSimulator, RoutingStats

__all__ = [
    "ecube_path",
    "ecube_next_hop",
    "initial_message_type",
    "ExtendedECubeRouter",
    "RouteResult",
    "VirtualChannelAssignment",
    "channel_dependency_graph",
    "has_cyclic_dependency",
    "RoutingSimulator",
    "RoutingStats",
]
