"""Declarative synthetic traffic workloads for routing experiments.

The routing evaluation of the fault-tolerant-routing literature runs the
standard synthetic traffic suite -- uniform random, matrix transpose, bit
reversal, hotspot, nearest neighbour and random permutation -- over the
fault regions under test.  This module provides those workloads as a
pluggable registry of :class:`TrafficSpec` objects, mirroring the
construction registry of :mod:`repro.api.registry`:

========  ==================  ================================================
key       label               endpoint pattern
========  ==================  ================================================
``uniform``            UR     independent uniform source/destination pairs
``transpose``          TP     ``(x, y) -> (y, x)`` fixed partners
``bit-reversal``       BR     per-dimension bit-reversed fixed partners
``hotspot``            HS     uniform sources, a fraction of traffic aimed at
                              a few hotspot nodes
``nearest-neighbour``  NN     destinations within a small Manhattan radius
``permutation``        RP     one random enabled-node permutation per batch
``poisson``            PO     open-loop arrival process: endpoints drawn by a
                              wrapped spatial pattern, injection times from a
                              Poisson process of the requested rate
``bursty``             BU     open-loop bursty (on/off) arrivals: back-to-back
                              bursts separated by exponential idle gaps
========  ==================  ================================================

The two arrival workloads additionally stamp ``TrafficBatch.inject_time``
(cycle numbers, nondecreasing) for the open-loop network simulator of
:mod:`repro.netsim`; the closed-loop routing paths simply ignore the
timestamps, so they are usable anywhere a spatial workload is.

Generation is *vectorized on the mask-kernel representation*: a
:class:`TrafficContext` carries the enabled endpoints as the ``(xs, ys)``
index arrays plus the boolean enabled mask produced by the region-index
grid of :class:`repro.routing.extended_ecube.ExtendedECubeRouter`, and
every generator draws/filters whole index arrays -- no per-pair Python
runs during generation.  Patterns whose partner function can land on a
disabled node (transpose, bit reversal, nearest neighbour) pre-filter the
valid sources with mask operations instead of rejection loops, so a batch
of *count* messages costs O(grid + count) regardless of the fault load.

All generators are deterministic functions of their seed: the same seed
produces bit-identical endpoint batches in any process (asserted by
``tests/test_routing_traffic.py``), which is what makes parallel routing
sweeps through :class:`repro.api.SweepExecutor` reproducible.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro._registry import SpecRegistry, make_spec_options
from repro.geometry import masks
from repro.mesh.topology import Topology
from repro.types import Coord


# -- typed options ------------------------------------------------------------------


@dataclass(frozen=True)
class TrafficOptions:
    """Base class for per-workload options (frozen, hashable, picklable)."""

    def replace(self, **changes: Any) -> "TrafficOptions":
        """Return a copy with *changes* applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class UniformOptions(TrafficOptions):
    """Options of the uniform random workload (none yet)."""


@dataclass(frozen=True)
class TransposeOptions(TrafficOptions):
    """Options of the transpose workload (none yet)."""


@dataclass(frozen=True)
class BitReversalOptions(TrafficOptions):
    """Options of the bit-reversal workload (none yet)."""


@dataclass(frozen=True)
class HotspotOptions(TrafficOptions):
    """Options of the hotspot workload.

    ``num_hotspots`` enabled nodes are drawn per batch; each message aims
    at one of them with probability ``fraction`` and at a uniform random
    destination otherwise.
    """

    num_hotspots: int = 4
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_hotspots < 1:
            raise ValueError("num_hotspots must be at least 1")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")


@dataclass(frozen=True)
class NearestNeighbourOptions(TrafficOptions):
    """Options of the nearest-neighbour workload.

    Destinations lie within Manhattan distance ``radius`` of the source
    (the default radius 1 is the classic 4-neighbour pattern).
    """

    radius: int = 1

    def __post_init__(self) -> None:
        if self.radius < 1:
            raise ValueError("radius must be at least 1")


@dataclass(frozen=True)
class PermutationOptions(TrafficOptions):
    """Options of the random-permutation workload (none yet)."""


@dataclass(frozen=True)
class ArrivalOptions(TrafficOptions):
    """Base options shared by the open-loop arrival processes.

    ``pattern`` names the spatial workload that draws the endpoint pairs
    (any non-arrival traffic key), ``rate`` is the aggregate injection
    rate in messages per cycle across the whole network, and
    ``pattern_options`` is forwarded to the spatial workload's generator.
    """

    pattern: str = "uniform"
    rate: float = 1.0
    pattern_options: Optional[TrafficOptions] = None

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError("rate must be positive (messages per cycle)")


@dataclass(frozen=True)
class PoissonArrivalOptions(ArrivalOptions):
    """Options of the Poisson arrival process (memoryless inter-arrivals)."""


@dataclass(frozen=True)
class BurstyArrivalOptions(ArrivalOptions):
    """Options of the bursty (on/off) arrival process.

    Messages arrive in back-to-back bursts of ``burst`` messages (one per
    cycle); the idle gaps between bursts are exponential with a mean
    chosen so the long-run rate still matches ``rate``.
    """

    burst: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst < 1:
            raise ValueError("burst must be at least 1")


# -- endpoint batches ---------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class TrafficBatch:
    """One generated batch of message endpoints, as aligned index arrays.

    The arrays stay in numpy-land until :meth:`pairs` materialises the
    coordinate tuples for the (per-message, Python-level) router loop.
    """

    src_x: np.ndarray
    src_y: np.ndarray
    dst_x: np.ndarray
    dst_y: np.ndarray
    #: Optional per-message injection cycles (int64, nondecreasing), stamped
    #: by the open-loop arrival workloads; ``None`` for closed-loop batches
    #: (the network simulator then injects everything at cycle 0).
    inject_time: Optional[np.ndarray] = None

    @classmethod
    def empty(cls) -> "TrafficBatch":
        """A zero-message batch (no valid endpoint pair exists)."""
        nothing = np.empty(0, dtype=np.int64)
        return cls(nothing, nothing, nothing, nothing)

    def __len__(self) -> int:
        return int(self.src_x.size)

    def pairs(self) -> Iterator[Tuple[Coord, Coord]]:
        """Yield ``(source, destination)`` coordinate tuples."""
        return zip(
            zip(self.src_x.tolist(), self.src_y.tolist()),
            zip(self.dst_x.tolist(), self.dst_y.tolist()),
        )

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(src_x, src_y, dst_x, dst_y)`` index arrays."""
        return self.src_x, self.src_y, self.dst_x, self.dst_y


@dataclass(frozen=True, eq=False)
class TrafficContext:
    """Everything a workload needs about the mesh under test.

    ``enabled_xs`` / ``enabled_ys`` list the endpoint candidates in
    ``(x, y)`` order (the ``nonzero`` order of the router's enabled mask);
    ``enabled_mask`` is the whole-grid boolean complement of the fault
    regions, so partner validity checks are O(1) array reads.
    """

    topology: Topology
    enabled_xs: np.ndarray
    enabled_ys: np.ndarray
    enabled_mask: np.ndarray

    @classmethod
    def from_router(cls, router) -> "TrafficContext":
        """Build the context from a router's region-index representation."""
        xs, ys = router.enabled_arrays()
        return cls(
            topology=router.topology,
            enabled_xs=xs,
            enabled_ys=ys,
            enabled_mask=router.enabled_mask,
        )

    @classmethod
    def from_topology(
        cls, topology: Topology, disabled: Mapping | frozenset | set | tuple = ()
    ) -> "TrafficContext":
        """Build the context from a topology and an explicit disabled set."""
        mask = np.ones((topology.width, topology.height), dtype=bool)
        for x, y in disabled:
            mask[x, y] = False
        xs, ys = np.nonzero(mask)
        return cls(topology=topology, enabled_xs=xs, enabled_ys=ys, enabled_mask=mask)

    @property
    def num_enabled(self) -> int:
        """Number of endpoint candidates."""
        return int(self.enabled_xs.size)

    @property
    def wraps(self) -> bool:
        """Whether the topology has wrap-around links (torus)."""
        return self.topology.normalise((-1, 0)) is not None


# -- the spec and registry ----------------------------------------------------------

#: A generator draws *count* endpoint pairs: ``(context, count, rng, options)``.
Generator = Callable[[TrafficContext, int, np.random.Generator, TrafficOptions], TrafficBatch]


@dataclass(frozen=True)
class TrafficSpec:
    """One registered synthetic traffic workload."""

    key: str
    label: str
    description: str
    generator: Generator
    options_type: type = TrafficOptions
    aliases: Tuple[str, ...] = ()

    def make_options(
        self,
        options: Optional[TrafficOptions] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> TrafficOptions:
        """Validate/construct the option set for one generation call."""
        return make_spec_options("traffic", self, options, overrides)

    def generate(
        self,
        context: TrafficContext,
        count: int,
        *,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
        options: Optional[TrafficOptions] = None,
        **overrides: Any,
    ) -> TrafficBatch:
        """Generate a batch of *count* endpoint pairs.

        Pass either a *seed* (a fresh generator is derived from it; the
        deterministic sweep path) or an explicit *rng* whose state advances
        across calls (the legacy stateful-simulator path).  Workloads whose
        partner function admits no valid pair on this mesh (for example a
        transpose whose partners are all disabled) return an empty batch,
        as does a mesh with fewer than two enabled nodes.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        opts = self.make_options(options, overrides)
        if count <= 0 or context.num_enabled < 2:
            return TrafficBatch.empty()
        return self.generator(context, count, rng, opts)


_WORKLOADS = SpecRegistry("traffic")


def register_traffic(spec: TrafficSpec, replace: bool = False) -> TrafficSpec:
    """Register *spec* (and its aliases) in the global workload registry.

    Registration makes the workload available to ``get_traffic``,
    :meth:`repro.api.MeshSession.route`, the routing sweeps of
    :class:`repro.api.SweepExecutor` and the CLI ``route --traffic``
    option.  Raises ``ValueError`` on key collisions unless *replace*.
    """
    return _WORKLOADS.register(spec, replace)


def get_traffic(key: str) -> TrafficSpec:
    """Look up a traffic workload by key or alias (case-insensitive)."""
    return _WORKLOADS.get(key)


def available_traffic() -> List[TrafficSpec]:
    """Return every registered workload spec, in registration order."""
    return _WORKLOADS.available()


def traffic_keys() -> Tuple[str, ...]:
    """Return the registered workload keys, in registration order."""
    return _WORKLOADS.keys()


# -- generators ---------------------------------------------------------------------


def _bump_collisions(src: np.ndarray, dst: np.ndarray, num: int) -> np.ndarray:
    """Replace ``dst == src`` draws with the next enabled index (mod *num*)."""
    return np.where(src == dst, (dst + 1) % num, dst)


def _uniform(context, count, rng, options):
    """Independent uniform source/destination draws.

    Bit-for-bit the draw the legacy ``RoutingSimulator.random_pairs`` used:
    one ``(count, 2)`` integer draw with same-index collisions bumped to
    the next enabled node, so the legacy and the session path produce
    identical batches from identical generator state.
    """
    num = context.num_enabled
    indices = rng.integers(0, num, size=(count, 2))
    src, dst = indices[:, 0], indices[:, 1]
    dst = _bump_collisions(src, dst, num)
    return TrafficBatch(
        context.enabled_xs[src],
        context.enabled_ys[src],
        context.enabled_xs[dst],
        context.enabled_ys[dst],
    )


def _fixed_partner(context, count, rng, partner_x, partner_y):
    """Draw sources whose fixed partner is a valid, distinct enabled node.

    *partner_x* / *partner_y* give each enabled node's partner coordinates
    (aligned with the context's enabled arrays).  Partners outside the
    grid, on disabled nodes, or equal to their source are filtered with
    one vectorized mask pass; sources are then drawn uniformly among the
    surviving candidates.
    """
    width, height = context.topology.width, context.topology.height
    in_grid = (
        (partner_x >= 0)
        & (partner_x < width)
        & (partner_y >= 0)
        & (partner_y < height)
    )
    valid = in_grid.copy()
    valid[in_grid] &= context.enabled_mask[partner_x[in_grid], partner_y[in_grid]]
    valid &= (partner_x != context.enabled_xs) | (partner_y != context.enabled_ys)
    candidates = np.nonzero(valid)[0]
    if candidates.size == 0:
        return TrafficBatch.empty()
    draws = candidates[rng.integers(0, candidates.size, size=count)]
    return TrafficBatch(
        context.enabled_xs[draws],
        context.enabled_ys[draws],
        partner_x[draws],
        partner_y[draws],
    )


def _transpose(context, count, rng, options):
    """Matrix transpose: ``(x, y)`` sends to ``(y, x)``.

    On a rectangular mesh, partners falling outside the grid are filtered
    out together with the disabled ones.
    """
    return _fixed_partner(
        context, count, rng, context.enabled_ys.copy(), context.enabled_xs.copy()
    )


def _reverse_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Reverse the low *bits* bits of every value (vectorized)."""
    result = np.zeros_like(values)
    remaining = values.copy()
    for _ in range(bits):
        result = (result << 1) | (remaining & 1)
        remaining >>= 1
    return result


def _bit_reversal(context, count, rng, options):
    """Bit reversal: each coordinate is bit-reversed within its dimension.

    The classic pattern assumes power-of-two dimensions; on other sizes
    the reversed coordinate can exceed the dimension, and those partners
    are filtered out like any other invalid partner.
    """
    bits_x = max(1, (context.topology.width - 1).bit_length())
    bits_y = max(1, (context.topology.height - 1).bit_length())
    partner_x = _reverse_bits(context.enabled_xs, bits_x)
    partner_y = _reverse_bits(context.enabled_ys, bits_y)
    return _fixed_partner(context, count, rng, partner_x, partner_y)


def _hotspot(context, count, rng, options):
    """Hotspot: uniform sources, a traffic fraction aimed at a few nodes."""
    num = context.num_enabled
    num_hotspots = min(options.num_hotspots, num)
    hotspots = rng.choice(num, size=num_hotspots, replace=False)
    src = rng.integers(0, num, size=count)
    dst = rng.integers(0, num, size=count)
    aimed = rng.random(count) < options.fraction
    dst = np.where(aimed, hotspots[rng.integers(0, num_hotspots, size=count)], dst)
    dst = _bump_collisions(src, dst, num)
    return TrafficBatch(
        context.enabled_xs[src],
        context.enabled_ys[src],
        context.enabled_xs[dst],
        context.enabled_ys[dst],
    )


def _nearest_neighbour(context, count, rng, options):
    """Nearest neighbour: destinations within a small Manhattan radius.

    The candidate (source, offset) combinations are enumerated with mask
    shifts -- the same ``_shift`` primitive that powers the mask kernel --
    one per offset of the Manhattan ball, so only pairs whose destination
    is an enabled node (wrapping on a torus) are ever drawn.

    Note that on a torus the *workload* wraps but the built-in routers do
    not (they route mesh x-y paths; see :mod:`repro.routing.registry`), so
    wrap-adjacent pairs are routed across the mesh interior.
    """
    radius = options.radius
    wrap = context.wraps
    width, height = context.topology.width, context.topology.height
    src_x_parts: List[np.ndarray] = []
    src_y_parts: List[np.ndarray] = []
    dst_x_parts: List[np.ndarray] = []
    dst_y_parts: List[np.ndarray] = []
    for dx in range(-radius, radius + 1):
        for dy in range(-radius, radius + 1):
            if not 0 < abs(dx) + abs(dy) <= radius:
                continue
            # reachable[x, y] == enabled[x + dx, y + dy] (False off-mesh).
            reachable = masks._shift(context.enabled_mask, -dx, -dy, wrap)
            xs, ys = np.nonzero(context.enabled_mask & reachable)
            if xs.size == 0:
                continue
            src_x_parts.append(xs)
            src_y_parts.append(ys)
            if wrap:
                dst_x_parts.append((xs + dx) % width)
                dst_y_parts.append((ys + dy) % height)
            else:
                dst_x_parts.append(xs + dx)
                dst_y_parts.append(ys + dy)
    if not src_x_parts:
        return TrafficBatch.empty()
    src_x = np.concatenate(src_x_parts)
    src_y = np.concatenate(src_y_parts)
    dst_x = np.concatenate(dst_x_parts)
    dst_y = np.concatenate(dst_y_parts)
    draws = rng.integers(0, src_x.size, size=count)
    return TrafficBatch(src_x[draws], src_y[draws], dst_x[draws], dst_y[draws])


def _permutation(context, count, rng, options):
    """Random permutation: one fixed random partner per enabled node.

    A fresh permutation of the enabled nodes is drawn per batch; fixed
    points (a node mapped to itself) are bumped to the next enabled node.
    """
    num = context.num_enabled
    perm = rng.permutation(num)
    src = rng.integers(0, num, size=count)
    dst = _bump_collisions(src, perm[src], num)
    return TrafficBatch(
        context.enabled_xs[src],
        context.enabled_ys[src],
        context.enabled_xs[dst],
        context.enabled_ys[dst],
    )


# -- open-loop arrival processes ----------------------------------------------------


def _spatial_batch(context, count, rng, options: ArrivalOptions) -> TrafficBatch:
    """Draw the endpoint pairs of an arrival batch from its spatial pattern."""
    spec = get_traffic(options.pattern)
    if issubclass(spec.options_type, ArrivalOptions):
        raise ValueError(
            f"arrival workloads cannot nest: pattern {spec.key!r} is itself "
            "an arrival process; pick a spatial workload (e.g. 'uniform')"
        )
    return spec.generate(context, count, rng=rng, options=options.pattern_options)


def _with_inject_times(batch: TrafficBatch, times: np.ndarray) -> TrafficBatch:
    return TrafficBatch(
        batch.src_x, batch.src_y, batch.dst_x, batch.dst_y, inject_time=times
    )


def _poisson_arrival(context, count, rng, options):
    """Poisson process: i.i.d. exponential inter-arrival gaps at ``rate``.

    The endpoint pairs come first (one draw of the spatial pattern with the
    same generator), then the injection cycles, so the spatial batch is
    bit-identical to the plain pattern's batch under the same seed.
    """
    batch = _spatial_batch(context, count, rng, options)
    if len(batch) == 0:
        return batch
    gaps = rng.exponential(1.0 / options.rate, size=len(batch))
    times = np.floor(np.cumsum(gaps)).astype(np.int64)
    return _with_inject_times(batch, times)


def _bursty_arrival(context, count, rng, options):
    """Bursty on/off arrivals: bursts of back-to-back messages, idle gaps.

    Each burst injects ``burst`` messages on consecutive cycles; the gap
    from one burst's start to the next is ``burst - 1`` busy cycles plus an
    exponential idle stretch whose mean keeps the long-run rate at
    ``rate``.
    """
    batch = _spatial_batch(context, count, rng, options)
    n = len(batch)
    if n == 0:
        return batch
    burst = options.burst
    num_bursts = -(-n // burst)
    idle_mean = max(burst / options.rate - (burst - 1), 1e-9)
    idle = rng.exponential(idle_mean, size=num_bursts)
    starts = np.cumsum(idle + (burst - 1)) - (burst - 1)
    burst_index = np.arange(n) // burst
    offset_in_burst = np.arange(n) % burst
    times = np.floor(starts[burst_index] + offset_in_burst).astype(np.int64)
    return _with_inject_times(batch, times)


# -- built-in workloads -------------------------------------------------------------

register_traffic(
    TrafficSpec(
        key="uniform",
        label="UR",
        description="independent uniform random source/destination pairs",
        generator=_uniform,
        options_type=UniformOptions,
        aliases=("uniform-random", "random"),
    )
)
register_traffic(
    TrafficSpec(
        key="transpose",
        label="TP",
        description="matrix transpose: (x, y) sends to (y, x)",
        generator=_transpose,
        options_type=TransposeOptions,
        aliases=("matrix-transpose",),
    )
)
register_traffic(
    TrafficSpec(
        key="bit-reversal",
        label="BR",
        description="per-dimension bit-reversed fixed partners",
        generator=_bit_reversal,
        options_type=BitReversalOptions,
        aliases=("bitrev", "bit-reverse"),
    )
)
register_traffic(
    TrafficSpec(
        key="hotspot",
        label="HS",
        description="uniform sources with a traffic fraction aimed at hotspots",
        generator=_hotspot,
        options_type=HotspotOptions,
        aliases=("hot-spot",),
    )
)
register_traffic(
    TrafficSpec(
        key="nearest-neighbour",
        label="NN",
        description="destinations within a small Manhattan radius of the source",
        generator=_nearest_neighbour,
        options_type=NearestNeighbourOptions,
        aliases=("nearest-neighbor", "neighbour", "nn"),
    )
)
register_traffic(
    TrafficSpec(
        key="permutation",
        label="RP",
        description="one random enabled-node permutation per batch",
        generator=_permutation,
        options_type=PermutationOptions,
        aliases=("random-permutation",),
    )
)
register_traffic(
    TrafficSpec(
        key="poisson",
        label="PO",
        description="open-loop Poisson arrivals over a wrapped spatial pattern",
        generator=_poisson_arrival,
        options_type=PoissonArrivalOptions,
        aliases=("poisson-arrival", "open-loop"),
    )
)
register_traffic(
    TrafficSpec(
        key="bursty",
        label="BU",
        description="open-loop bursty (on/off) arrivals over a wrapped spatial pattern",
        generator=_bursty_arrival,
        options_type=BurstyArrivalOptions,
        aliases=("bursty-arrival", "on-off"),
    )
)
