"""Vectorized lockstep batch routing engine.

The scalar :class:`~repro.routing.extended_ecube.ExtendedECubeRouter`
routes one message at a time, one Python loop iteration per hop -- clear,
and kept as the path-collecting / deadlock-check oracle, but far too slow
for the million-message sweeps the evaluation harness is growing towards.
This module routes an entire traffic batch *in lockstep*: every message is
a row of a frontier state array (position, hop count, abnormal-hop count,
outcome code), and each round of the kernel advances every still-active
message at once with whole-array NumPy operations.  Two ingredients make a
round O(active messages) instead of O(hops):

* **Straight-run jump tables** (:class:`JumpTables`): for every cell, the
  next blocked cell in each of the four directions, precomputed from the
  disabled mask with four ``minimum``/``maximum.accumulate`` scans.  A
  normal-mode e-cube message advances a whole straight run per round --
  ``min(distance to the turn point, distance to the next blocked cell,
  remaining hop budget)`` -- so its total round count is O(#turns +
  #region encounters), not O(path length).
* **Precomputed ring arrays** (:class:`RegionGeometry` /
  :class:`RingArrays`): per region, the boundary-ring coordinates as index
  arrays, a searchable entry-position table, and the geometric half of the
  Section 2.2 "passed the region" predicate per message type.  An
  abnormal-mode traversal then resolves as one vectorized lookup per
  (region, orientation, message-type) group: the ring sequence relative to
  each entry point is materialised as an index matrix and the first
  exit/failure positions fall out of two ``argmax`` reductions --
  including the opposite-orientation retry of border-hugging regions.

The kernel reproduces the scalar router's semantics *bit-identically*
(same per-message outcome, hop count, abnormal-hop count and failure
reason; asserted by the differential suite in
``tests/test_routing_engine.py`` and by ``benchmarks/bench_routing_engine.py``,
which refuses to report a speedup unless the aggregate stats match).

Engines are a registry (``get_engine("scalar" | "batch")``) mirroring the
construction/router/traffic registries, and the default selection can be
switched globally (environment variable ``REPRO_ROUTE_ENGINE``) or locally
(:func:`use_engine`), mirroring the mask-kernel toggle of
:mod:`repro.geometry.masks`:

* ``auto`` (the default): the batch engine whenever it can serve the
  request -- per-route results not requested and the router is one of the
  built-ins it understands -- the scalar loop otherwise;
* ``scalar`` / ``batch``: force one engine.  Passing ``engine=`` explicitly
  to :meth:`repro.api.RoutingSession.route` is strict (a batch request it
  cannot serve raises); the ambient default falls back to ``scalar``
  silently, so ``REPRO_ROUTE_ENGINE=batch`` never breaks a
  ``check_deadlock`` caller.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro import _array_ops
from repro._registry import SpecRegistry
from repro.geometry.boundary import boundary_ring
from repro.geometry.rectangle import bounding_rectangle
from repro.routing.stats import RoutingStats
from repro.types import Coord

# -- message-type and outcome codes -------------------------------------------------

#: Integer codes of the four message classes (rows of ``RingArrays.geo_passed``).
MT_WE, MT_EW, MT_SN, MT_NS = 0, 1, 2, 3

#: Per-message outcome codes of :class:`BatchRouteOutcome`.
ACTIVE = 0
DELIVERED = 1
FAIL_SOURCE = 2
FAIL_DESTINATION = 3
FAIL_ENTRY = 4
FAIL_LEFT_MESH = 5
FAIL_OBSTRUCTED = 6
FAIL_NO_CLEAR = 7
FAIL_BUDGET = 8
FAIL_BLOCKED = 9

#: Outcome code -> the scalar router's failure-reason string (empty for
#: delivered messages), so reason histograms compare bit-identically.
REASONS: Dict[int, str] = {
    DELIVERED: "",
    FAIL_SOURCE: "source disabled",
    FAIL_DESTINATION: "destination disabled",
    FAIL_ENTRY: "traversal entry point not on the region boundary",
    FAIL_LEFT_MESH: "traversal left the mesh",
    FAIL_OBSTRUCTED: "traversal obstructed by another region",
    FAIL_NO_CLEAR: "could not clear the fault region",
    FAIL_BUDGET: "hop budget exhausted",
    FAIL_BLOCKED: "blocked by a fault region (base e-cube has no detour)",
}

#: Upper bound on the (messages x ring length) cells materialised per
#: traversal chunk; bounds the kernel's peak memory on huge groups.
_TRAVERSAL_CHUNK_CELLS = 1 << 18

#: When the active frontier shrinks to this many messages, the kernel
#: finishes them through the scalar router instead of paying a full
#: lockstep round per remaining straight run.  The long tail of a batch
#: is a handful of messages weaving between many regions; routing them
#: scalar is bit-identical (the scalar router *is* the reference
#: semantics) and turns hundreds of near-empty rounds into a few calls.
#: Benchmarked best around 4..16 on the 100x100 / 300x300 reference
#: scenarios (2 000 messages) with the counters-only scalar finish.
_SCALAR_FINISH_THRESHOLD = 8


# -- straight-run jump tables -------------------------------------------------------


@dataclass(frozen=True, eq=False)
class JumpTables:
    """Per-row / per-column next-blocked-cell tables of one disabled mask.

    ``east[x, y]`` is the smallest ``x' > x`` with ``(x', y)`` disabled
    (sentinel ``width`` when the run is clear to the border), and likewise
    for the other three directions (sentinels ``-1`` / ``height`` / ``-1``).
    The free-run length ahead of a cell is then one subtraction, so both
    the scalar router's straight-run advance and the batch kernel's
    normal-mode rounds read one table entry per run instead of probing the
    mask one hop at a time.
    """

    east: np.ndarray
    west: np.ndarray
    north: np.ndarray
    south: np.ndarray

    @classmethod
    def from_disabled(cls, disabled: np.ndarray) -> "JumpTables":
        """Build the four tables through the active array backend."""
        east, west, north, south = _array_ops.active_ops().jump_tables(
            np.ascontiguousarray(disabled)
        )
        return cls(east=east, west=west, north=north, south=south)

    def stacked(self) -> np.ndarray:
        """The four tables as one ``(4, width, height)`` array.

        Lets the kernel gather every active message's next blocked cell
        with a single fancy index -- ``stacked[direction, x, y]`` --
        instead of four boolean-masked gathers per round.  Directions are
        ordered east, west, north, south.
        """
        return np.stack([self.east, self.west, self.north, self.south])

    def apply_fault_delta(
        self, disabled: np.ndarray, changed_x: np.ndarray, changed_y: np.ndarray
    ) -> "JumpTables":
        """Tables for *disabled*, re-deriving only the touched lines.

        ``east[x, y]`` / ``west[x, y]`` depend only on the cells of line
        *y*, and ``north`` / ``south`` only on column *x*; a fault update
        that changed the cells ``(changed_x, changed_y)`` therefore only
        needs the scan re-run on those lines and columns -- the sub-array
        ``disabled[:, ys]`` (respectively ``disabled[xs, :]``) goes
        through the same backend primitive as a full build, so the result
        equals :meth:`from_disabled` bit for bit (asserted by the
        differential suite in ``tests/test_engine_deltas.py``).  The
        untouched lines are copied from this table.
        """
        xs = np.unique(np.asarray(changed_x, dtype=np.int64))
        ys = np.unique(np.asarray(changed_y, dtype=np.int64))
        east, west, north, south = self.east, self.west, self.north, self.south
        ops = _array_ops.active_ops()
        if ys.size:
            east, west = east.copy(), west.copy()
            sub_east, sub_west, _, _ = ops.jump_tables(
                np.ascontiguousarray(disabled[:, ys])
            )
            east[:, ys] = sub_east
            west[:, ys] = sub_west
        if xs.size:
            north, south = north.copy(), south.copy()
            _, _, sub_north, sub_south = ops.jump_tables(
                np.ascontiguousarray(disabled[xs, :])
            )
            north[xs, :] = sub_north
            south[xs, :] = sub_south
        return JumpTables(east=east, west=west, north=north, south=south)


# -- per-region ring geometry -------------------------------------------------------


class RingArrays:
    """The batch-kernel view of one region's boundary ring.

    Everything here depends only on the region's own shape and the mesh
    dimensions -- never on the surrounding disabled mask -- so the arrays
    are cached on the :class:`RegionGeometry` and shared across routers
    through the session ring cache.
    """

    __slots__ = (
        "shape",
        "ring_x",
        "ring_y",
        "on_mesh",
        "geo_passed",
        "entry_keys",
        "entry_positions",
    )

    def __init__(self, geometry: "RegionGeometry", width: int, height: int) -> None:
        ring = geometry.ring
        length = len(ring)
        self.shape = (width, height)
        self.ring_x = np.fromiter((node[0] for node in ring), np.int64, count=length)
        self.ring_y = np.fromiter((node[1] for node in ring), np.int64, count=length)
        self.on_mesh = (
            (self.ring_x >= 0)
            & (self.ring_x < width)
            & (self.ring_y >= 0)
            & (self.ring_y < height)
        )
        box = geometry.box
        # The geometric half of ``_passed_region`` per message type; the
        # destination-dependent half (``coord == destination coord``) is
        # OR-ed in per traversal group.
        self.geo_passed = np.stack(
            [
                self.ring_x > box.max_x,  # WE
                self.ring_x < box.min_x,  # EW
                self.ring_y > box.max_y,  # SN
                self.ring_y < box.min_y,  # NS
            ]
        )
        # Entry lookup: first ring position of every on-mesh ring node
        # (the scalar position map keeps the first occurrence too).
        positions = np.nonzero(self.on_mesh)[0]
        keys = self.ring_x[positions] * height + self.ring_y[positions]
        order = np.lexsort((positions, keys))
        keys, positions = keys[order], positions[order]
        first = np.ones(keys.size, dtype=bool)
        first[1:] = keys[1:] != keys[:-1]
        self.entry_keys = keys[first]
        self.entry_positions = positions[first]

    def __len__(self) -> int:
        return int(self.ring_x.size)


class RegionGeometry:
    """Boundary-ring geometry of one fault region, keyed by its node set.

    Carries exactly the per-region data the routers previously rebuilt
    lazily from scratch -- the clockwise boundary-ring walk, the
    first-occurrence ring position map and the bounding box -- plus the
    lazily built :class:`RingArrays` the batch kernel traverses.  All of
    it depends only on the region's own shape, so one geometry object
    serves every router built over the same region (see
    :class:`RegionRingCache`).
    """

    __slots__ = ("nodes", "ring", "positions", "box", "_arrays")

    def __init__(self, nodes: Iterable[Coord]) -> None:
        self.nodes: FrozenSet[Coord] = frozenset(nodes)
        self.ring: List[Coord] = boundary_ring(self.nodes)
        positions: Dict[Coord, int] = {}
        for position, member in enumerate(self.ring):
            positions.setdefault(member, position)
        self.positions = positions
        self.box = bounding_rectangle(self.nodes)
        self._arrays: Optional[RingArrays] = None

    def arrays(self, width: int, height: int) -> RingArrays:
        """The batch-kernel ring arrays for a ``width x height`` mesh."""
        if self._arrays is None or self._arrays.shape != (width, height):
            self._arrays = RingArrays(self, width, height)
        return self._arrays


class RegionRingCache:
    """A bounded cache of :class:`RegionGeometry`, keyed by region identity.

    Owned by :class:`repro.api.RoutingSession` and attached to every
    router it builds: a router rebuilt after ``add_faults`` then reuses
    the rings, position maps and bounding boxes of every region the
    update did not touch (region identity is the frozen node set, so a
    changed region misses naturally).  Evicts least-recently-used entries
    beyond *max_entries* so long fault-injection sessions stay bounded.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[FrozenSet[Coord], RegionGeometry]" = OrderedDict()
        self._counters = counters
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, key: str) -> None:
        if self._counters is not None:
            self._counters[key] = self._counters.get(key, 0) + 1

    def geometry(self, nodes: Iterable[Coord]) -> RegionGeometry:
        """Fetch (or build and remember) the geometry of one region."""
        key = frozenset(nodes)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._count("ring_misses")
            entry = RegionGeometry(key)
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        else:
            self.hits += 1
            self._count("ring_hits")
            self._entries.move_to_end(key)
        return entry


# -- per-message outcomes -----------------------------------------------------------


@dataclass(eq=False)
class BatchRouteOutcome:
    """Per-message outcome arrays of one lockstep batch route.

    ``status`` holds one outcome code per message (``DELIVERED`` or a
    ``FAIL_*`` code); ``hops`` / ``abnormal_hops`` the link traversals
    performed; ``minimal_hops`` the fault-free Manhattan distance the
    detour is measured against.  :meth:`fold_into` accumulates the arrays
    into a :class:`~repro.routing.stats.RoutingStats` exactly as the
    scalar per-message ``record`` loop would.
    """

    status: np.ndarray
    hops: np.ndarray
    abnormal_hops: np.ndarray
    minimal_hops: np.ndarray

    def __len__(self) -> int:
        return int(self.status.size)

    @property
    def delivered(self) -> np.ndarray:
        """Boolean mask of delivered messages."""
        return self.status == DELIVERED

    def reason_counts(self) -> Dict[str, int]:
        """Failure-reason histogram (scalar router's reason strings)."""
        codes, counts = np.unique(
            self.status[self.status > DELIVERED], return_counts=True
        )
        return {REASONS[int(code)]: int(count) for code, count in zip(codes, counts)}

    def fold_into(self, stats: RoutingStats) -> RoutingStats:
        """Accumulate the per-message outcomes into *stats* (vectorized)."""
        delivered = self.delivered
        num_delivered = int(np.count_nonzero(delivered))
        hops = self.hops[delivered]
        detours = hops - self.minimal_hops[delivered]
        stats.attempted += len(self)
        stats.delivered += num_delivered
        stats.failed += len(self) - num_delivered
        stats.total_hops += int(hops.sum())
        stats.total_detour += int(detours.sum())
        stats.minimal_routes += int(np.count_nonzero(detours == 0))
        stats.abnormal_routes += int(
            np.count_nonzero(self.abnormal_hops[delivered] > 0)
        )
        stats._deadlock_free = None
        return stats


# -- the lockstep kernel ------------------------------------------------------------


def supports_router(router: Any) -> bool:
    """Whether the batch kernel understands *router*'s routing semantics.

    Exactly the two built-in routers qualify (checked by concrete type, so
    a custom subclass with an overridden ``route`` falls back to the
    scalar engine instead of being silently misrouted).
    """
    from repro.routing.extended_ecube import ExtendedECubeRouter
    from repro.routing.registry import ECubeRouter

    return type(router) in (ECubeRouter, ExtendedECubeRouter)


def _pack_geo_bits(geo_passed: np.ndarray) -> np.ndarray:
    """Pack the ``(4, L)`` per-message-type passed flags into one uint8 bit
    per type -- a single gather plus a shift beats a two-array advanced
    index in the traversal scans."""
    bits = geo_passed[MT_WE].astype(np.uint8)
    for message_type in (MT_EW, MT_SN, MT_NS):
        bits |= geo_passed[message_type].astype(np.uint8) << message_type
    return bits


#: One region's immutable packed-ring arrays, keyed by the region's node
#: set: ``(ring_x, ring_y, off_mesh, geo_bits, entry_keys, entry_positions)``.
#: Everything here depends only on the region's own shape (the validity
#: against the surrounding disabled mask is recomputed at concatenation
#: time), so segments survive fault deltas unchanged.
RingSegment = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class PackedRings:
    """Encountered regions' ring arrays, concatenated for mixed gathers.

    A frontier round blocks messages on *different* regions with
    *different* orientations and message types; resolving them one
    (region, orientation, type) group at a time degenerates into tiny
    arrays and Python overhead.  Packing rings into flat arrays with
    per-region offsets lets one round resolve every blocked message in a
    single padded ``(messages x longest-ring)`` traversal, whatever mix
    of regions it hit.

    Packing is *incremental*: a region's ring is appended the first round
    a message actually blocks on it (:meth:`ensure`), so the kernel --
    like the scalar router -- never walks the ring of a region no
    message encounters.  The per-region geometry comes from the router's
    (possibly session-shared) :class:`RegionGeometry` objects, so ring
    walks are still reused across router rebuilds.

    Internally every packed region is held as a :data:`RingSegment` keyed
    by the region's frozen node set; the flat arrays are concatenated
    from the segments, and the only mask-dependent part -- which ring
    nodes a traversal may step on -- is re-gathered from the router's
    disabled mask at concatenation time.  That split is what makes
    :meth:`apply_fault_delta` possible: after a fault update, every
    region whose node set survived keeps its segment (no ring walk, no
    re-packing), and only the validity gather is recomputed.
    """

    __slots__ = (
        "shape",
        "start",
        "length",
        "packed",
        "ring_x",
        "ring_y",
        "valid",
        "off_mesh",
        "geo_bits",
        "entry_keys",
        "entry_positions",
        "_segments",
        "_order",
        "_total",
        "_dirty",
    )

    def __init__(self, router: Any) -> None:
        width, height = router.enabled_mask.shape
        self.shape = (width, height)
        num_regions = len(router._regions)
        self.start = np.zeros(num_regions, dtype=np.int64)
        self.length = np.zeros(num_regions, dtype=np.int64)
        self.packed = np.zeros(num_regions, dtype=bool)
        self._segments: Dict[FrozenSet[Coord], RingSegment] = {}
        #: ``(region index, node set)`` pairs in packing order; the index
        #: half is only valid for this instance's router.
        self._order: List[Tuple[int, FrozenSet[Coord]]] = []
        self._total = 0
        #: Adopted segments whose flat arrays have not been concatenated
        #: yet; the rebuild is deferred to the first :meth:`ensure` so a
        #: fault delta never pays for regions no message routes through.
        self._dirty = False
        empty = np.empty(0, dtype=np.int64)
        self.ring_x = self.ring_y = self.entry_keys = self.entry_positions = empty
        self.valid = self.off_mesh = empty.astype(bool)
        self.geo_bits = empty.astype(np.uint8)

    def _segment(self, router: Any, region: int) -> RingSegment:
        """Fetch (or build from the region geometry) one region's segment."""
        nodes = router._regions[region]
        segment = self._segments.get(nodes)
        if segment is None:
            arrays = router.region_geometry(region).arrays(*self.shape)
            segment = (
                arrays.ring_x,
                arrays.ring_y,
                ~arrays.on_mesh,
                _pack_geo_bits(arrays.geo_passed),
                arrays.entry_keys,
                arrays.entry_positions,
            )
            self._segments[nodes] = segment
        return segment

    def ensure(self, router: Any, regions: np.ndarray) -> None:
        """Append any of *regions* not packed yet and extend the arrays.

        At most one array update per kernel round (all of the round's
        new regions are appended together); rounds whose regions are all
        known cost one boolean gather.  New regions *extend* the
        existing flat arrays in place -- the sorted entry table absorbs
        them with a binary-search merge -- so a round that encounters
        one new region never re-concatenates, re-sorts or re-validates
        the regions already packed.  The full :meth:`_rebuild` only runs
        when a fault delta invalidated the concatenation (the disabled
        mask changed under every packed node).
        """
        missing = regions[~self.packed[regions]]
        if missing.size == 0:
            if self._dirty:
                self._rebuild(router)
                self._dirty = False
            return
        append_from = len(self._order)
        for region in np.unique(missing).tolist():
            segment = self._segment(router, region)
            self.start[region] = self._total
            self.length[region] = segment[0].size
            self.packed[region] = True
            self._order.append((region, router._regions[region]))
            self._total += segment[0].size
        if self._dirty or append_from == 0:
            self._rebuild(router)
        else:
            self._append(router, append_from)
        self._dirty = False

    def _append(self, router: Any, append_from: int) -> None:
        """Extend the flat arrays with the segments packed at
        ``_order[append_from:]``, leaving the already-built prefix alone.

        The validity gather runs over the new ring nodes only (the
        disabled mask is fixed for this router instance, so the prefix's
        gather stays correct), and the entry table -- kept sorted for
        :meth:`entries_of` -- merges the new keys in by binary search
        instead of re-sorting the whole table.
        """
        width, height = self.shape
        cells = width * height
        fresh = self._order[append_from:]
        segments = [self._segments[nodes] for _, nodes in fresh]
        new_x = np.concatenate([s[0] for s in segments])
        new_y = np.concatenate([s[1] for s in segments])
        new_off = np.concatenate([s[2] for s in segments])
        self.ring_x = np.concatenate([self.ring_x, new_x])
        self.ring_y = np.concatenate([self.ring_y, new_y])
        self.off_mesh = np.concatenate([self.off_mesh, new_off])
        self.geo_bits = np.concatenate(
            [self.geo_bits] + [s[3] for s in segments]
        )
        keys = np.concatenate(
            [region * cells + s[4] for (region, _), s in zip(fresh, segments)]
        )
        positions = np.concatenate([s[5] for s in segments])
        order = np.argsort(keys)
        keys, positions = keys[order], positions[order]
        insert_at = np.searchsorted(self.entry_keys, keys)
        self.entry_keys = np.insert(self.entry_keys, insert_at, keys)
        self.entry_positions = np.insert(
            self.entry_positions, insert_at, positions
        )
        clip_x = np.clip(new_x, 0, width - 1)
        clip_y = np.clip(new_y, 0, height - 1)
        disabled = ~router.enabled_mask
        self.valid = np.concatenate(
            [self.valid, ~new_off & ~disabled[clip_x, clip_y]]
        )

    def _rebuild(self, router: Any) -> None:
        """Concatenate the packed segments into the kernel's flat arrays.

        The entry table gets one sort to stay binary-searchable (regions
        pack in encounter order), and the validity of every packed ring
        node is gathered from the router's *current* disabled mask --
        the one per-node property that depends on the other regions.
        """
        width, height = self.shape
        cells = width * height
        segments = [self._segments[nodes] for _, nodes in self._order]
        self.ring_x = np.concatenate([s[0] for s in segments])
        self.ring_y = np.concatenate([s[1] for s in segments])
        self.off_mesh = np.concatenate([s[2] for s in segments])
        self.geo_bits = np.concatenate([s[3] for s in segments])
        keys = np.concatenate(
            [region * cells + s[4] for (region, _), s in zip(self._order, segments)]
        )
        positions = np.concatenate([s[5] for s in segments])
        order = np.argsort(keys)
        self.entry_keys = keys[order]
        self.entry_positions = positions[order]
        clip_x = np.clip(self.ring_x, 0, width - 1)
        clip_y = np.clip(self.ring_y, 0, height - 1)
        disabled = ~router.enabled_mask
        self.valid = ~self.off_mesh & ~disabled[clip_x, clip_y]

    def apply_fault_delta(self, router: Any) -> "PackedRings":
        """Packed rings for *router*, reusing every surviving region's segment.

        Regions are matched to the new router by node-set identity: a
        region a fault update did not touch keeps its packed ring arrays
        (re-keyed to its possibly-shifted region index) and only pays the
        validity gather against the new disabled mask; changed or new
        regions pack lazily on first encounter, as always.  Segments of
        vanished regions are dropped so long fault-churn sessions stay
        bounded.  The concatenation itself is deferred to the first
        :meth:`ensure`, so applying a delta is O(surviving regions) dict
        work and routing never rebuilds arrays for regions it does not
        touch.  The result is bit-identical to a freshly packed
        :class:`PackedRings` over the same encounter sequence (asserted
        by ``tests/test_engine_deltas.py``).
        """
        fresh = PackedRings(router)
        index_of = {nodes: index for index, nodes in enumerate(router._regions)}
        fresh._segments = {
            nodes: segment
            for nodes, segment in self._segments.items()
            if nodes in index_of
        }
        for _, nodes in self._order:
            region = index_of.get(nodes)
            if region is None:
                continue
            segment = fresh._segments[nodes]
            fresh.start[region] = fresh._total
            fresh.length[region] = segment[0].size
            fresh.packed[region] = True
            fresh._order.append((region, nodes))
            fresh._total += segment[0].size
        fresh._dirty = bool(fresh._order)
        return fresh

    def entries_of(
        self, region: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Ring-relative entry position per ``(region, node)`` (``-1`` absent)."""
        if self.entry_keys.size == 0:
            return np.full(region.shape, -1, dtype=np.int64)
        cells = self.shape[0] * self.shape[1]
        keys = region * cells + x * self.shape[1] + y
        found_at = np.minimum(
            np.searchsorted(self.entry_keys, keys), self.entry_keys.size - 1
        )
        return np.where(
            self.entry_keys[found_at] == keys, self.entry_positions[found_at], -1
        )


#: Lanes scanned by the first traversal pass.  Most detours exit (or
#: fail) within a handful of ring hops, so a short window resolves the
#: bulk of a round; only rows with neither an exit nor a failure inside
#: the window pay for the full ring scan.
_TRAVERSAL_WINDOW = 16


def _scan_lanes(
    packed: PackedRings,
    disabled: np.ndarray,
    message_type: np.ndarray,
    step: np.ndarray,
    entry: np.ndarray,
    dest_x: np.ndarray,
    dest_y: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    lane_lo: int,
    lane_hi: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Scan ring lanes ``lane_lo+1 .. lane_hi`` of every row at once.

    A lane *k* is the ring node *k* steps from the row's entry point in
    its travel direction.  Returns ``(has_exit, first_exit, has_fail,
    first_fail)`` with 1-based absolute lane numbers: the first exit
    position (node passed the region *and* the e-cube follow-up hop is
    clear -- :meth:`ExtendedECubeRouter._passed_region` semantics) and
    the first failure position (node off the mesh or inside another
    region).  Lanes beyond a row's own ring length are masked out.

    The scan itself is an array-backend primitive
    (:attr:`repro._array_ops.ArrayOps.scan_lanes`): the numpy backend
    materialises the padded ``(rows x lanes)`` matrix and argmax-reduces
    it; the numba backend walks each row's lanes with early exit.
    """
    return _array_ops.active_ops().scan_lanes(
        packed.ring_x,
        packed.ring_y,
        packed.valid,
        packed.geo_bits,
        packed.shape[0],
        packed.shape[1],
        disabled,
        message_type,
        step,
        entry,
        dest_x,
        dest_y,
        lengths,
        starts,
        lane_lo,
        lane_hi,
    )


def _traverse_packed(
    packed: PackedRings,
    disabled: np.ndarray,
    region: np.ndarray,
    message_type: np.ndarray,
    step: np.ndarray,
    entry: np.ndarray,
    dest_x: np.ndarray,
    dest_y: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve one round's ring traversals for a region-mixed message set.

    Rows may block on different regions, orientations and message types.
    A short windowed :func:`_scan_lanes` pass resolves the typical rows;
    rows with neither an exit nor a failure inside the window re-scan the
    rest of their ring.  Everything is chunked so peak memory stays
    bounded.  Returns ``(ok, hops, landing_x, landing_y, fail_code)``
    arrays over the set (landing and failure fields are only meaningful
    where ``ok`` / a failure says so).
    """
    count = entry.size
    lengths = packed.length[region]
    starts = packed.start[region]
    has_exit = np.zeros(count, dtype=bool)
    has_fail = np.zeros(count, dtype=bool)
    first_exit = np.zeros(count, dtype=np.int64)
    first_fail = np.zeros(count, dtype=np.int64)
    longest = int(lengths.max()) if count else 0
    window = min(_TRAVERSAL_WINDOW, longest)
    chunk = max(1, _TRAVERSAL_CHUNK_CELLS // max(1, window))
    for chunk_start in range(0, count, chunk):
        rows = slice(chunk_start, min(chunk_start + chunk, count))
        (
            has_exit[rows],
            first_exit[rows],
            has_fail[rows],
            first_fail[rows],
        ) = _scan_lanes(
            packed, disabled, message_type[rows], step[rows], entry[rows],
            dest_x[rows], dest_y[rows], lengths[rows], starts[rows],
            0, window,
        )
    unresolved = np.nonzero(~has_exit & ~has_fail & (lengths > window))[0]
    if unresolved.size:
        tail_longest = int(lengths[unresolved].max())
        chunk = max(1, _TRAVERSAL_CHUNK_CELLS // max(1, tail_longest))
        for chunk_start in range(0, unresolved.size, chunk):
            rows = unresolved[chunk_start : chunk_start + chunk]
            (
                has_exit[rows],
                first_exit[rows],
                has_fail[rows],
                first_fail[rows],
            ) = _scan_lanes(
                packed, disabled, message_type[rows], step[rows], entry[rows],
                dest_x[rows], dest_y[rows], lengths[rows], starts[rows],
                window, tail_longest,
            )
    ok = has_exit & (~has_fail | (first_exit < first_fail))
    # Landing / failing nodes recomputed from the winning lane numbers --
    # no per-lane matrices survive the scans.
    landing = starts + (entry + step * first_exit) % lengths
    failing = starts + (entry + step * first_fail) % lengths
    fail_code = np.where(
        has_fail,
        np.where(packed.off_mesh[failing], FAIL_LEFT_MESH, FAIL_OBSTRUCTED),
        FAIL_NO_CLEAR,
    ).astype(np.int8)
    return ok, first_exit, packed.ring_x[landing], packed.ring_y[landing], fail_code


#: Failure-reason string -> outcome code (the inverse of :data:`REASONS`),
#: used when the scalar router finishes a batch's straggler tail.
_REASON_CODES = {reason: code for code, reason in REASONS.items() if code != DELIVERED}


def _finish_scalar(
    router: Any,
    live: np.ndarray,
    src_x: np.ndarray,
    src_y: np.ndarray,
    dst_x: np.ndarray,
    dst_y: np.ndarray,
    status: np.ndarray,
    hops: np.ndarray,
    abnormal: np.ndarray,
) -> None:
    """Route the remaining frontier through the scalar router (the oracle).

    Replays each straggler from its source -- the router is deterministic,
    so the outcome equals continuing the lockstep trajectory -- and writes
    the per-message fields the kernel would have produced.  Uses the
    counters-only ``route_counts`` entry point: stragglers walk long
    budget-bounded paths whose hop-by-hop materialisation nobody reads.
    """
    for message in live.tolist():
        delivered, taken, abnormal_taken, reason = router.route_counts(
            (int(src_x[message]), int(src_y[message])),
            (int(dst_x[message]), int(dst_y[message])),
        )
        status[message] = DELIVERED if delivered else _REASON_CODES[reason]
        hops[message] = taken
        abnormal[message] = abnormal_taken


def route_batch(
    router: Any,
    batch: Any,
    *,
    scalar_finish: Optional[int] = None,
) -> BatchRouteOutcome:
    """Route every message of *batch* through *router* in lockstep.

    *router* must be one of the built-in routers (see
    :func:`supports_router`); *batch* is a
    :class:`~repro.routing.traffic.TrafficBatch` (or anything exposing
    ``as_arrays()``).  The hop budget is the router's own ``max_hops``
    (cap it at router construction, via ``ExtendedECubeOptions``), so the
    lockstep rounds and the scalar tail always agree on it.  Per-message
    outcomes -- including hop counts, abnormal-hop counts and the scalar
    router's failure reasons -- are bit-identical to routing each pair
    through ``router.route``.

    *scalar_finish* overrides the frontier size below which the kernel
    hands the straggler tail to the scalar router (default
    ``_SCALAR_FINISH_THRESHOLD``; ``0`` forces a pure lockstep run, which
    the differential tests use to exercise the kernel on small batches).
    """
    from repro.routing.registry import ECubeRouter

    if not supports_router(router):
        raise ValueError(
            "the batch engine only understands the built-in routers "
            "(ECubeRouter / ExtendedECubeRouter); route this batch with "
            "the scalar engine instead"
        )
    detours = type(router) is not ECubeRouter
    disabled = ~router.enabled_mask
    width, height = disabled.shape
    budget_cap = router.max_hops
    stacked_tables = getattr(router, "_jump_stack", None)
    if stacked_tables is None:
        stacked_tables = router._jump_stack = router.jump_tables().stacked()
    region_index = router.region_index

    src_x, src_y, dst_x, dst_y = (
        np.asarray(axis, dtype=np.int64) for axis in batch.as_arrays()
    )
    total = int(src_x.size)
    status = np.zeros(total, dtype=np.int8)
    hops = np.zeros(total, dtype=np.int64)
    abnormal = np.zeros(total, dtype=np.int64)
    minimal = np.abs(src_x - dst_x) + np.abs(src_y - dst_y)
    outcome = BatchRouteOutcome(status, hops, abnormal, minimal)
    if total == 0:
        return outcome

    source_disabled = disabled[src_x, src_y]
    status[source_disabled] = FAIL_SOURCE
    destination_disabled = ~source_disabled & disabled[dst_x, dst_y]
    status[destination_disabled] = FAIL_DESTINATION

    # Frontier state, compacted to the still-active messages every round.
    live = np.nonzero(status == ACTIVE)[0]
    cur_x = src_x[live].copy()
    cur_y = src_y[live].copy()
    to_x = dst_x[live].copy()
    to_y = dst_y[live].copy()
    live_hops = np.zeros(live.size, dtype=np.int64)
    live_abnormal = np.zeros(live.size, dtype=np.int64)
    packed: Optional[PackedRings] = None
    finish_threshold = (
        _SCALAR_FINISH_THRESHOLD if scalar_finish is None else scalar_finish
    )

    def finalize(done: np.ndarray, codes: np.ndarray) -> None:
        indices = live[done]
        status[indices] = codes
        hops[indices] = live_hops[done]
        abnormal[indices] = live_abnormal[done]

    def compact(keep: np.ndarray) -> None:
        nonlocal live, cur_x, cur_y, to_x, to_y, live_hops, live_abnormal
        live = live[keep]
        cur_x, cur_y = cur_x[keep], cur_y[keep]
        to_x, to_y = to_x[keep], to_y[keep]
        live_hops, live_abnormal = live_hops[keep], live_abnormal[keep]

    while live.size:
        if live.size <= finish_threshold:
            _finish_scalar(
                router, live, src_x, src_y, dst_x, dst_y, status, hops, abnormal
            )
            break
        # -- terminal checks (same order as the scalar loop head) ------------
        arrived = (cur_x == to_x) & (cur_y == to_y)
        if detours:
            over_budget = ~arrived & (live_hops + 1 > budget_cap)
        else:
            # The base e-cube router has no hop budget (its paths are
            # minimal, always far below the default cap).
            over_budget = np.zeros(live.size, dtype=bool)
        done = arrived | over_budget
        if done.any():
            finalize(
                done,
                np.where(arrived[done], DELIVERED, FAIL_BUDGET).astype(np.int8),
            )
            compact(~done)
            if not live.size:
                break

        # -- normal mode: advance whole straight runs ------------------------
        x_phase = cur_x != to_x
        along = np.where(x_phase, to_x - cur_x, to_y - cur_y)
        sign = np.sign(along)
        dist = np.abs(along)
        # Direction index into the stacked jump tables: 0 east, 1 west,
        # 2 north, 3 south.
        direction = np.where(x_phase, 0, 2) + (sign < 0)
        coordinate = np.where(x_phase, cur_x, cur_y)
        next_block = stacked_tables[direction, cur_x, cur_y]
        free = np.where(sign > 0, next_block - coordinate, coordinate - next_block) - 1
        if detours:
            run = np.minimum(dist, np.minimum(free, budget_cap - live_hops))
        else:
            run = np.minimum(dist, free)
        run = np.where(free > 0, run, 0)
        cur_x = cur_x + np.where(x_phase, sign * run, 0)
        cur_y = cur_y + np.where(x_phase, 0, sign * run)
        live_hops = live_hops + run
        # A message whose run was truncated by a blocked cell (not by the
        # turn point or the hop budget) sits adjacent to the block now --
        # its next scalar iteration would enter abnormal mode, so handle
        # it this round instead of paying another round to rediscover it.
        at_wall = (run == free) & (run < dist)
        if detours:
            blocked = at_wall & (live_hops < budget_cap)
        else:
            blocked = at_wall
        if not blocked.any():
            continue
        if not detours:
            finalize(blocked, np.full(int(blocked.sum()), FAIL_BLOCKED, np.int8))
            compact(~blocked)
            continue

        # -- abnormal mode: one packed traversal for the whole round ---------
        if packed is None:
            packed = router.packed_rings()
        rows = np.nonzero(blocked)[0]
        at_x, at_y = cur_x[rows], cur_y[rows]
        go_x, go_y = to_x[rows], to_y[rows]
        row_phase = x_phase[rows]
        row_sign = sign[rows]
        next_x = np.where(row_phase, at_x + row_sign, at_x)
        next_y = np.where(row_phase, at_y, at_y + row_sign)
        regions = region_index[next_x, next_y].astype(np.int64)
        message_type = np.where(
            row_phase,
            np.where(row_sign > 0, MT_WE, MT_EW),
            np.where(row_sign > 0, MT_SN, MT_NS),
        )
        # Orientation rules of Section 2.2 (+1 clockwise, -1 counter-).
        below = at_y < go_y
        preferred = np.ones(rows.size, dtype=np.int64)
        preferred[(message_type == MT_WE) & below] = -1
        preferred[message_type == MT_EW] = -1
        preferred[(message_type == MT_EW) & below] = 1

        new_x, new_y = at_x.copy(), at_y.copy()
        gained = np.zeros(rows.size, dtype=np.int64)
        fail_code = np.zeros(rows.size, dtype=np.int8)

        packed.ensure(router, regions)
        entry = packed.entries_of(regions, at_x, at_y)
        missing = entry < 0
        if missing.any():
            fail_code[missing] = FAIL_ENTRY
        walkers = np.nonzero(~missing)[0]
        if walkers.size:
            ok, taken, land_x, land_y, code = _traverse_packed(
                packed, disabled, regions[walkers], message_type[walkers],
                preferred[walkers], entry[walkers], go_x[walkers], go_y[walkers],
            )
            # A region touching the mesh border can only be circled on one
            # side: retry the opposite orientation, as the scalar does.
            if not ok.all():
                retry = np.nonzero(~ok)[0]
                again = walkers[retry]
                ok2, taken2, land_x2, land_y2, code2 = _traverse_packed(
                    packed, disabled, regions[again], message_type[again],
                    -preferred[again], entry[again], go_x[again], go_y[again],
                )
                ok[retry] = ok2
                taken[retry] = np.where(ok2, taken2, taken[retry])
                land_x[retry] = np.where(ok2, land_x2, land_x[retry])
                land_y[retry] = np.where(ok2, land_y2, land_y[retry])
                # The scalar reports the reason of the *last* traversal.
                code[retry] = code2
            succeeded = walkers[ok]
            new_x[succeeded] = land_x[ok]
            new_y[succeeded] = land_y[ok]
            gained[succeeded] = taken[ok]
            fail_code[walkers[~ok]] = code[~ok]

        failed_rows = fail_code > 0
        if failed_rows.any():
            finalize_at = rows[failed_rows]
            indices = live[finalize_at]
            status[indices] = fail_code[failed_rows]
            hops[indices] = live_hops[finalize_at]
            abnormal[indices] = live_abnormal[finalize_at]
        moved = rows[~failed_rows]
        cur_x[moved] = new_x[~failed_rows]
        cur_y[moved] = new_y[~failed_rows]
        live_hops[moved] += gained[~failed_rows]
        live_abnormal[moved] += gained[~failed_rows]
        if failed_rows.any():
            keep = np.ones(live.size, dtype=bool)
            keep[rows[failed_rows]] = False
            compact(keep)
    return outcome


# -- incremental engine deltas ------------------------------------------------------

_engine_deltas = os.environ.get("REPRO_ENGINE_DELTAS", "1").strip().lower() not in (
    "0",
    "false",
    "off",
    "no",
)


def engine_deltas_enabled() -> bool:
    """Whether fault updates delta-patch the engine state (default on)."""
    return _engine_deltas


def set_engine_deltas(enabled: bool) -> bool:
    """Switch the ambient delta behaviour; returns the previous value."""
    global _engine_deltas
    previous = _engine_deltas
    _engine_deltas = bool(enabled)
    return previous


@contextmanager
def use_engine_deltas(enabled: bool = True):
    """Context manager scoping the delta on/off switch.

    Mirrors :func:`repro.geometry.masks.use_kernel`; the benchmarks and
    the differential suite use it to compare delta-patched engine state
    against full rebuilds::

        with use_engine_deltas(False):
            stats = session.route("mfp", messages=2000)   # full rebuilds
    """
    previous = set_engine_deltas(enabled)
    try:
        yield
    finally:
        set_engine_deltas(previous)


def transplant_engine_state(old_router: Any, new_router: Any) -> bool:
    """Delta-patch *new_router*'s engine state from *old_router*'s.

    Called by :class:`repro.api.RoutingSession` when a fault update
    forces a router rebuild: instead of letting the new router re-derive
    its jump tables and packed rings from scratch, the old router's are
    carried over with :meth:`JumpTables.apply_fault_delta` (only the
    rows/columns containing changed cells re-scanned) and
    :meth:`PackedRings.apply_fault_delta` (only changed regions dropped;
    surviving rings stay packed).  Lazily-unbuilt state on the old router
    stays unbuilt on the new one.  Returns whether anything was
    transplanted.  The patched state is bit-identical to a full rebuild
    -- that is the whole contract, enforced by
    ``tests/test_engine_deltas.py`` and ``benchmarks/bench_serve.py``.
    """
    if type(old_router) is not type(new_router):
        return False
    if old_router._disabled_mask.shape != new_router._disabled_mask.shape:
        return False
    transplanted = False
    old_tables = old_router._tables
    if old_tables is not None:
        changed_x, changed_y = np.nonzero(
            old_router._disabled_mask != new_router._disabled_mask
        )
        if changed_x.size:
            new_router._tables = old_tables.apply_fault_delta(
                new_router._disabled_mask, changed_x, changed_y
            )
        else:
            # The update happened entirely inside already-disabled regions
            # (or re-enabled nothing the construction had kept disabled):
            # the tables are still exact.
            new_router._tables = old_tables
        transplanted = True
    old_packed = old_router._packed_rings
    if old_packed is not None:
        new_router._packed_rings = old_packed.apply_fault_delta(new_router)
        transplanted = True
    return transplanted


# -- the engine registry ------------------------------------------------------------

#: A runner routes one batch into *stats*: ``(router, batch, stats) -> stats``.
Runner = Callable[[Any, Any, RoutingStats], RoutingStats]


@dataclass(frozen=True)
class EngineSpec:
    """One registered routing engine."""

    key: str
    label: str
    description: str
    runner: Runner
    #: ``supports(router, collect_results)`` -> can this engine serve the
    #: request?  The scalar engine always can; the batch engine cannot
    #: collect per-route results or drive custom routers.
    supports: Callable[[Any, bool], bool]
    aliases: Tuple[str, ...] = ()


def _run_scalar(router: Any, batch: Any, stats: RoutingStats) -> RoutingStats:
    for source, destination in batch.pairs():
        stats.record(router.route(source, destination))
    return stats


def _run_batch(router: Any, batch: Any, stats: RoutingStats) -> RoutingStats:
    if stats.collect_results:
        raise ValueError(
            "the batch engine does not materialise per-route results; use "
            "engine='scalar' for collect_results / check_deadlock runs"
        )
    return route_batch(router, batch).fold_into(stats)


def _scalar_supports(router: Any, collect_results: bool) -> bool:
    return True


def _batch_supports(router: Any, collect_results: bool) -> bool:
    return not collect_results and supports_router(router)


_ENGINES = SpecRegistry("engine")


def register_engine(spec: EngineSpec, replace: bool = False) -> EngineSpec:
    """Register *spec* (and its aliases) in the global engine registry.

    Registration makes the engine available to ``get_engine``,
    :meth:`repro.api.RoutingSession.route`, the routing sweeps and the
    CLI ``--engine`` option.  Raises ``ValueError`` on key collisions
    unless *replace*.
    """
    return _ENGINES.register(spec, replace)


def get_engine(key: str) -> EngineSpec:
    """Look up a routing engine by key or alias (case-insensitive)."""
    return _ENGINES.get(key)


def available_engines() -> List[EngineSpec]:
    """Return every registered engine spec, in registration order."""
    return _ENGINES.available()


def engine_keys() -> Tuple[str, ...]:
    """Return the registered engine keys, in registration order."""
    return _ENGINES.keys()


register_engine(
    EngineSpec(
        key="scalar",
        label="SC",
        description="per-message Python loop over router.route (the oracle)",
        runner=_run_scalar,
        supports=_scalar_supports,
        aliases=("loop",),
    )
)
register_engine(
    EngineSpec(
        key="batch",
        label="BA",
        description="lockstep NumPy kernel (jump tables + ring arrays)",
        runner=_run_batch,
        supports=_batch_supports,
        aliases=("vectorized", "lockstep"),
    )
)


# -- default-engine switch (mirrors the mask-kernel toggle) -------------------------

_default_engine = SpecRegistry.normalise(os.environ.get("REPRO_ROUTE_ENGINE", "auto"))


def default_engine() -> str:
    """The ambient engine selection (``auto`` unless switched)."""
    return _default_engine


def set_default_engine(key: str) -> str:
    """Set the ambient engine selection; returns the previous value.

    *key* is ``auto`` or any registered engine key/alias (validated
    eagerly, like the registry lookups).
    """
    global _default_engine
    key = SpecRegistry.normalise(key)
    if key != "auto":
        key = get_engine(key).key
    previous = _default_engine
    _default_engine = key
    return previous


@contextmanager
def use_engine(key: str):
    """Temporarily switch the ambient engine selection (context manager).

    Mirrors :func:`repro.geometry.masks.use_kernel`::

        with use_engine("scalar"):
            stats = session.route("mfp", messages=2000)   # forced scalar

    The ambient selection is lenient: a default the request cannot honour
    (e.g. ``batch`` with ``check_deadlock=True``) falls back to the
    scalar engine instead of raising, unlike an explicit ``engine=``
    argument.
    """
    previous = set_default_engine(key)
    try:
        yield
    finally:
        set_default_engine(previous)


def resolve_engine(
    router: Any, engine: Optional[str] = None, collect_results: bool = False
) -> EngineSpec:
    """Resolve the engine that will route one batch.

    ``engine=None`` uses the ambient default (:func:`default_engine`),
    falling back to ``scalar`` when the default cannot serve the request.
    An explicit engine key is strict -- asking the batch engine for
    per-route results (or for a custom router it does not understand)
    raises ``ValueError``.  ``auto`` (explicit or ambient) picks the
    batch engine whenever it can serve the request.
    """
    explicit = engine is not None
    key = SpecRegistry.normalise(engine) if explicit else default_engine()
    if key == "auto":
        batch = get_engine("batch")
        if batch.supports(router, collect_results):
            return batch
        return get_engine("scalar")
    spec = get_engine(key)
    if not spec.supports(router, collect_results):
        if explicit:
            raise ValueError(
                f"engine {spec.key!r} cannot serve this request "
                f"(collect_results={collect_results}, router "
                f"{type(router).__name__}); use engine='scalar' or 'auto'"
            )
        return get_engine("scalar")
    return spec
