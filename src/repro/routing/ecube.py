"""Base e-cube (dimension-ordered x-y) routing.

The e-cube routing sends a message along its row (the X dimension) until it
reaches the destination column, then along the column (the Y dimension).  In
a fault-free mesh this is minimal and deadlock-free; the extended e-cube
routing of :mod:`repro.routing.extended_ecube` falls back to it between
fault-region traversals.
"""

from __future__ import annotations

from typing import List, Optional

from repro.types import Coord, MessageType


def initial_message_type(source: Coord, destination: Coord) -> MessageType:
    """Classify a message by its initial direction of travel.

    A message with row hops to perform is WE- or EW-bound; a message that
    starts in its destination column is immediately SN- or NS-bound.  A
    message to self is classified as WE by convention (it performs no hops).
    """
    if destination[0] > source[0]:
        return MessageType.WE
    if destination[0] < source[0]:
        return MessageType.EW
    if destination[1] > source[1]:
        return MessageType.SN
    return MessageType.NS


def column_message_type(source: Coord, destination: Coord) -> MessageType:
    """Classify the column phase of a message (SN or NS)."""
    return MessageType.SN if destination[1] >= source[1] else MessageType.NS


def ecube_next_hop(current: Coord, destination: Coord) -> Optional[Coord]:
    """Return the next hop of the base e-cube routing (``None`` on arrival)."""
    x, y = current
    dx, dy = destination
    if x < dx:
        return (x + 1, y)
    if x > dx:
        return (x - 1, y)
    if y < dy:
        return (x, y + 1)
    if y > dy:
        return (x, y - 1)
    return None


def ecube_path(source: Coord, destination: Coord) -> List[Coord]:
    """Return the full e-cube path from *source* to *destination*.

    The path includes both endpoints; its length is ``manhattan + 1``.
    """
    path = [source]
    current = source
    while current != destination:
        nxt = ecube_next_hop(current, destination)
        assert nxt is not None
        path.append(nxt)
        current = nxt
    return path


def manhattan_distance(a: Coord, b: Coord) -> int:
    """Return the minimal hop count between two mesh nodes."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
