"""Whole-network routing experiments.

The simulator routes a batch of random messages through a mesh whose fault
regions come from one of the fault-region constructions, and summarises how
the construction choice affects the routing layer: how many node pairs are
still routable, how long the paths get, and how often messages have to
travel around a region.  The routing ablation benchmark uses it to compare
FB, FP and MFP regions built from the same fault pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regions import FaultRegion
from repro.mesh.topology import Mesh2D, Topology
from repro.routing.channels import (
    assign_channels,
    channel_dependency_graph,
    has_cyclic_dependency,
)
from repro.routing.ecube import manhattan_distance
from repro.routing.extended_ecube import ExtendedECubeRouter, RouteResult
from repro.types import Coord


@dataclass
class RoutingStats:
    """Aggregate statistics of one routing experiment.

    ``collect_results`` keeps every individual :class:`RouteResult` in
    ``results``.  It is off by default: large sweeps route millions of
    messages and only need the scalar aggregates, so the unbounded
    per-message list would dominate memory.  Opt in for tests and for
    post-hoc path analysis (e.g. :meth:`RoutingSimulator.deadlock_free`).
    """

    attempted: int = 0
    delivered: int = 0
    failed: int = 0
    total_hops: int = 0
    total_detour: int = 0
    minimal_routes: int = 0
    abnormal_routes: int = 0
    results: List[RouteResult] = field(default_factory=list)
    collect_results: bool = False

    @property
    def delivery_rate(self) -> float:
        """Fraction of attempted messages that reached their destination."""
        return self.delivered / self.attempted if self.attempted else 1.0

    @property
    def mean_hops(self) -> float:
        """Average number of hops over delivered messages."""
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def mean_detour(self) -> float:
        """Average extra hops (over the fault-free minimum) of delivered messages."""
        return self.total_detour / self.delivered if self.delivered else 0.0

    @property
    def minimal_fraction(self) -> float:
        """Fraction of delivered messages that used a minimal path."""
        return self.minimal_routes / self.delivered if self.delivered else 1.0

    @property
    def abnormal_fraction(self) -> float:
        """Fraction of delivered messages that had to route around a region."""
        return self.abnormal_routes / self.delivered if self.delivered else 0.0

    def record(self, result: RouteResult) -> None:
        """Fold one route result into the aggregate."""
        self.attempted += 1
        if self.collect_results:
            self.results.append(result)
        if not result.delivered:
            self.failed += 1
            return
        self.delivered += 1
        self.total_hops += result.hops
        self.total_detour += result.detour
        if result.is_minimal:
            self.minimal_routes += 1
        if result.abnormal_hops:
            self.abnormal_routes += 1


class RoutingSimulator:
    """Route random messages through a mesh with fault regions."""

    def __init__(
        self,
        topology: Topology,
        regions: Sequence[FaultRegion] | Iterable[Iterable[Coord]],
        seed: int = 0,
        collect_results: bool = False,
        region_index: Optional[np.ndarray] = None,
    ) -> None:
        self.topology = topology
        self.collect_results = collect_results
        self.router = ExtendedECubeRouter(topology, regions, region_index=region_index)
        self.rng = np.random.default_rng(seed)
        # Enabled endpoints as index arrays, in the same (x, y) order as
        # iterating topology.nodes(); coordinate tuples are only built for
        # the pairs actually drawn, so instantiating a simulator costs one
        # nonzero() instead of materialising ~width*height tuples.
        self._enabled_xs, self._enabled_ys = self.router.enabled_arrays()

    @classmethod
    def from_construction(
        cls,
        construction,
        seed: int = 0,
        topology: Optional[Topology] = None,
        collect_results: bool = False,
    ) -> "RoutingSimulator":
        """Build a simulator from a construction result.

        Accepts a :class:`repro.api.ConstructionResult` or any legacy
        construction object exposing ``grid`` and ``regions``, so a
        registry key is all that is needed to go from fault set to routing
        experiment::

            result = repro.api.get_construction("mfp").build(scenario)
            stats = RoutingSimulator.from_construction(result, seed=1).run(500)

        Constructions built by the mask kernel carry a region-index grid;
        it is handed to the router so region membership is an O(1) array
        read from the start.
        """
        if topology is None:
            topology = construction.grid.topology
        region_index = getattr(construction, "region_index", None)
        if region_index is not None and region_index.shape != (
            topology.width,
            topology.height,
        ):
            region_index = None
        return cls(
            topology,
            construction.regions,
            seed=seed,
            collect_results=collect_results,
            region_index=region_index,
        )

    @property
    def num_enabled(self) -> int:
        """Number of nodes still available as message endpoints."""
        return int(self._enabled_xs.size)

    def random_pairs(self, count: int) -> List[Tuple[Coord, Coord]]:
        """Draw random (source, destination) pairs among enabled nodes."""
        num = self.num_enabled
        if num < 2:
            return []
        indices = self.rng.integers(0, num, size=(count, 2))
        sources, destinations = indices[:, 0], indices[:, 1]
        destinations = np.where(
            sources == destinations, (destinations + 1) % num, destinations
        )
        return list(
            zip(
                zip(
                    self._enabled_xs[sources].tolist(),
                    self._enabled_ys[sources].tolist(),
                ),
                zip(
                    self._enabled_xs[destinations].tolist(),
                    self._enabled_ys[destinations].tolist(),
                ),
            )
        )

    def run(self, num_messages: int = 1000) -> RoutingStats:
        """Route *num_messages* random messages and return the statistics."""
        stats = RoutingStats(collect_results=self.collect_results)
        for source, destination in self.random_pairs(num_messages):
            stats.record(self.router.route(source, destination))
        return stats

    def deadlock_free(self, stats: RoutingStats) -> bool:
        """Check the channel-dependency graph of delivered routes for cycles."""
        if stats.delivered and not stats.results:
            raise ValueError(
                "deadlock_free() needs the individual route results; run the "
                "simulator with collect_results=True"
            )
        assignments = [
            assign_channels(result) for result in stats.results if result.delivered
        ]
        graph = channel_dependency_graph(assignments)
        return not has_cyclic_dependency(graph)
