"""Legacy whole-network routing simulator (deprecated shim).

.. deprecated:: 1.2
    :class:`RoutingSimulator` predates the unified routing API.  New code
    should go through :meth:`repro.api.MeshSession.route` (or build a
    router via ``repro.api.get_router(...)`` and generate workloads via
    ``repro.api.get_traffic(...)``)::

        session = MeshSession.from_scenario(scenario)
        stats = session.route("mfp", traffic="uniform", messages=500, seed=1)

    The shim delegates to exactly that machinery -- the extended e-cube
    router from the router registry and the ``uniform`` workload from the
    traffic registry -- so the statistics it produces are bit-identical to
    the session path on the same seed (asserted by
    ``tests/test_api_routing.py``).

:class:`RoutingStats` moved to :mod:`repro.routing.stats` and is re-exported
here unchanged for backward compatibility.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regions import FaultRegion
from repro.mesh.topology import Topology
from repro.routing.registry import get_router
from repro.routing.stats import MissingRouteResultsError, RoutingStats
from repro.routing.traffic import TrafficContext, get_traffic
from repro.types import Coord

__all__ = ["MissingRouteResultsError", "RoutingSimulator", "RoutingStats"]

_DEPRECATION_MESSAGE = (
    "RoutingSimulator is deprecated; use repro.api.MeshSession.route(...) "
    "(or repro.api.get_router(...).build(...) with a repro.api.get_traffic(...) "
    "workload) instead"
)


class RoutingSimulator:
    """Route random messages through a mesh with fault regions (deprecated)."""

    def __init__(
        self,
        topology: Topology,
        regions: Sequence[FaultRegion] | Iterable[Iterable[Coord]],
        seed: int = 0,
        collect_results: bool = False,
        region_index: Optional[np.ndarray] = None,
    ) -> None:
        warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        self.topology = topology
        self.collect_results = collect_results
        self.router = get_router("extended-ecube").build(
            regions=regions, topology=topology, region_index=region_index
        )
        self.rng = np.random.default_rng(seed)
        self._context = TrafficContext.from_router(self.router)
        # Kept as public-ish attributes for backward compatibility.
        self._enabled_xs = self._context.enabled_xs
        self._enabled_ys = self._context.enabled_ys

    @classmethod
    def from_construction(
        cls,
        construction,
        seed: int = 0,
        topology: Optional[Topology] = None,
        collect_results: bool = False,
    ) -> "RoutingSimulator":
        """Build a simulator from a construction result (deprecated).

        Use ``repro.api.get_router("extended-ecube").build(construction)``
        or :meth:`repro.api.MeshSession.route` instead.
        """
        if topology is None:
            topology = construction.grid.topology
        region_index = getattr(construction, "region_index", None)
        if region_index is not None and region_index.shape != (
            topology.width,
            topology.height,
        ):
            region_index = None
        with warnings.catch_warnings():
            # One warning per entry point: the constructor's would point
            # at this classmethod rather than the caller.
            warnings.simplefilter("ignore", DeprecationWarning)
            simulator = cls(
                topology,
                construction.regions,
                seed=seed,
                collect_results=collect_results,
                region_index=region_index,
            )
        warnings.warn(
            "RoutingSimulator.from_construction is deprecated; use "
            'repro.api.get_router("extended-ecube").build(construction) or '
            "repro.api.MeshSession.route(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return simulator

    @property
    def num_enabled(self) -> int:
        """Number of nodes still available as message endpoints."""
        return self._context.num_enabled

    def random_pairs(self, count: int) -> List[Tuple[Coord, Coord]]:
        """Draw random (source, destination) pairs among enabled nodes.

        Delegates to the ``uniform`` workload of the traffic registry on
        the simulator's stateful generator, so consecutive calls keep
        advancing ``self.rng`` exactly as the historical implementation
        did.
        """
        batch = get_traffic("uniform").generate(self._context, count, rng=self.rng)
        return list(batch.pairs())

    def run(self, num_messages: int = 1000, check_deadlock: bool = False) -> RoutingStats:
        """Route *num_messages* random messages and return the statistics.

        *check_deadlock* runs the channel-dependency analysis on the
        delivered routes; per-route result collection is enabled
        automatically for that run, so the check cannot raise
        :class:`MissingRouteResultsError`.
        """
        stats = RoutingStats(
            collect_results=self.collect_results or check_deadlock,
            enabled=self.num_enabled,
            traffic="uniform",
            router="extended-ecube",
        )
        for source, destination in self.random_pairs(num_messages):
            stats.record(self.router.route(source, destination))
        if check_deadlock:
            stats.deadlock_free()
        return stats

    def deadlock_free(self, stats: RoutingStats) -> bool:
        """Check the channel-dependency graph of delivered routes for cycles.

        Raises :class:`MissingRouteResultsError` (a ``ValueError``) when
        *stats* was recorded without ``collect_results=True``; prefer
        ``run(check_deadlock=True)``, which collects automatically.
        """
        return stats.deadlock_free()
