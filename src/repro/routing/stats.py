"""Aggregate routing statistics and deadlock-freedom analysis.

:class:`RoutingStats` folds per-message :class:`RouteResult` records into
the scalar aggregates the evaluation harness reports (delivery rate, mean
hops, detour overhead, abnormal-route fraction).  It is shared by the
legacy :class:`repro.routing.simulator.RoutingSimulator` and the canonical
:meth:`repro.api.MeshSession.route` path, so both produce bit-identical
records on the same message batch.

Deadlock-freedom evidence (the channel-dependency-cycle check of
:mod:`repro.routing.channels`) needs the individual route results, which
large sweeps do not keep by default.  Requesting the check without them is
a structured :class:`MissingRouteResultsError` -- and the run entry points
(``RoutingSimulator.run(check_deadlock=True)``,
``MeshSession.route(check_deadlock=True)``) auto-enable result collection
so the footgun cannot trigger mid-analysis at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.routing.channels import (
    assign_channels,
    channel_dependency_graph,
    has_cyclic_dependency,
)
from repro.routing.extended_ecube import RouteResult


class MissingRouteResultsError(ValueError):
    """Channel-dependency analysis needs per-route results that were not kept.

    Raised when :meth:`RoutingStats.deadlock_free` is called on statistics
    recorded without ``collect_results=True``.  Subclasses ``ValueError``
    for backward compatibility with callers that caught the old error.
    """


@dataclass
class RoutingStats:
    """Aggregate statistics of one routing experiment.

    ``collect_results`` keeps every individual :class:`RouteResult` in
    ``results``.  It is off by default: large sweeps route millions of
    messages and only need the scalar aggregates, so the unbounded
    per-message list would dominate memory.  Opt in for tests and for
    post-hoc path analysis (e.g. :meth:`deadlock_free`).

    The ``model`` / ``traffic`` / ``router`` labels and the ``enabled``
    endpoint count are filled in by :meth:`repro.api.MeshSession.route` so
    a stats record is self-describing in sweep tables; ad-hoc batches leave
    them at their defaults.
    """

    attempted: int = 0
    delivered: int = 0
    failed: int = 0
    total_hops: int = 0
    total_detour: int = 0
    minimal_routes: int = 0
    abnormal_routes: int = 0
    results: List[RouteResult] = field(default_factory=list)
    collect_results: bool = False
    #: Number of enabled endpoint nodes of the experiment (0 = unknown).
    enabled: int = 0
    #: Construction / traffic-pattern / router registry labels (optional).
    model: str = ""
    traffic: str = ""
    router: str = ""
    #: Engine registry key that produced the record (``"scalar"`` /
    #: ``"batch"``; empty for ad-hoc accumulation).  The batch engine is
    #: asserted bit-identical to the scalar loop on every aggregate field,
    #: so the label is provenance, not a caveat.
    engine: str = ""
    #: Simulator registry key when the record describes the routed paths of
    #: a :mod:`repro.netsim` contention run (``"array"`` / ``"scalar"``;
    #: empty for contention-free routing).  Like ``engine``, provenance:
    #: the simulators are asserted bit-identical.
    sim: str = ""
    #: Effective array-backend key (:mod:`repro._array_ops`) the run's hot
    #: primitives dispatched to (``"numpy"`` / ``"numba"`` / ...; empty for
    #: ad-hoc accumulation).  Provenance like ``engine``/``sim``: backends
    #: are asserted bit-identical, and a backend that fell back (numba
    #: without numba installed) reports the backend that actually ran.
    backend: str = ""
    #: Cached deadlock-freedom verdict (filled by :meth:`deadlock_free`).
    _deadlock_free: Optional[bool] = field(default=None, repr=False)

    @property
    def delivery_rate(self) -> float:
        """Fraction of attempted messages that reached their destination."""
        return self.delivered / self.attempted if self.attempted else 1.0

    @property
    def mean_hops(self) -> float:
        """Average number of hops over delivered messages."""
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def mean_detour(self) -> float:
        """Average extra hops (over the fault-free minimum) of delivered messages."""
        return self.total_detour / self.delivered if self.delivered else 0.0

    @property
    def minimal_fraction(self) -> float:
        """Fraction of delivered messages that used a minimal path."""
        return self.minimal_routes / self.delivered if self.delivered else 1.0

    @property
    def abnormal_fraction(self) -> float:
        """Fraction of delivered messages that had to route around a region."""
        return self.abnormal_routes / self.delivered if self.delivered else 0.0

    def record(self, result: RouteResult) -> None:
        """Fold one route result into the aggregate."""
        self.attempted += 1
        self._deadlock_free = None
        if self.collect_results:
            self.results.append(result)
        if not result.delivered:
            self.failed += 1
            return
        self.delivered += 1
        self.total_hops += result.hops
        self.total_detour += result.detour
        if result.is_minimal:
            self.minimal_routes += 1
        if result.abnormal_hops:
            self.abnormal_routes += 1

    def deadlock_free(self) -> bool:
        """Check the channel-dependency graph of delivered routes for cycles.

        Needs the individual route results: raises
        :class:`MissingRouteResultsError` when messages were delivered but
        ``collect_results`` was off.  Ask the run entry point for the check
        (``check_deadlock=True``) to have collection enabled automatically.
        The verdict is cached until further results are recorded.
        """
        if self._deadlock_free is None:
            if self.delivered and not self.results:
                raise MissingRouteResultsError(
                    "deadlock_free() needs the individual route results; run "
                    "with collect_results=True (or request check_deadlock=True "
                    "so collection is enabled automatically). Note that the "
                    "network simulator (repro.netsim) checks deadlock "
                    "dynamically instead: session.simulate(...) reports a "
                    "'deadlocked' verdict without keeping per-route results."
                )
            assignments = [
                assign_channels(result) for result in self.results if result.delivered
            ]
            graph = channel_dependency_graph(assignments)
            self._deadlock_free = not has_cyclic_dependency(graph)
        return self._deadlock_free
