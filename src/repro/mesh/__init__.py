"""2-D mesh / torus topology and node-status substrate.

The constructions in the paper run on a 2-D ``n x n`` mesh (or torus) of
processors.  This subpackage provides:

* :class:`~repro.mesh.topology.Mesh2D` and
  :class:`~repro.mesh.topology.Torus2D` -- the interconnect topology with
  dimension-wise neighbourhoods (used by the labelling schemes), 8-adjacency
  (used by the component merge process), and the usual graph metrics.
* :class:`~repro.mesh.status.StatusGrid` -- a numpy-backed container for the
  per-node labels produced by the constructions (faulty, safe/unsafe,
  enabled/disabled) with the counting helpers the evaluation needs.
"""

from repro.mesh.topology import Mesh2D, Torus2D, Topology
from repro.mesh.status import StatusGrid

__all__ = ["Mesh2D", "Torus2D", "Topology", "StatusGrid"]
