"""2-D mesh and torus topologies.

A node ``u`` has an address ``(u_x, u_y)`` with ``u_x, u_y in
{0, ..., n-1}`` (the package supports rectangular ``width x height`` meshes;
the paper uses square ``n x n`` meshes).  Two nodes are connected when their
addresses differ by exactly one in exactly one dimension; the torus adds the
wrap-around links.  The interior node degree is 4 and the network diameter of
an ``n x n`` mesh is ``2(n - 1)``.

The topology objects are deliberately lightweight: they provide coordinate
validation, neighbourhood enumeration (4-neighbourhood, dimension-wise
neighbourhoods for the labelling schemes, and 8-adjacency for the component
merge process) and distance/path helpers used by the routing substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.types import Coord


@dataclass(frozen=True)
class Topology:
    """Base class for 2-D grid topologies.

    Concrete subclasses (:class:`Mesh2D`, :class:`Torus2D`) define how
    coordinates outside the ``[0, width) x [0, height)`` address space are
    treated: the mesh drops them, the torus wraps them.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("topology dimensions must be positive")

    # -- basic queries --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the network."""
        return self.width * self.height

    @property
    def is_square(self) -> bool:
        """Whether the topology is the paper's square ``n x n`` shape."""
        return self.width == self.height

    def contains(self, node: Coord) -> bool:
        """Return ``True`` when *node* is a valid address in this topology."""
        x, y = node
        return 0 <= x < self.width and 0 <= y < self.height

    def __contains__(self, node: Coord) -> bool:
        return self.contains(node)

    def nodes(self) -> Iterator[Coord]:
        """Yield every node address, column-major."""
        for x in range(self.width):
            for y in range(self.height):
                yield (x, y)

    def validate(self, node: Coord) -> Coord:
        """Return *node* unchanged if valid, else raise ``ValueError``."""
        if not self.contains(node):
            raise ValueError(f"node {node} outside {self.width}x{self.height} topology")
        return node

    # -- wrapping (overridden by Torus2D) --------------------------------------

    def normalise(self, node: Coord) -> Coord | None:
        """Map an unbounded coordinate into the address space.

        The mesh returns ``None`` for out-of-range coordinates; the torus
        wraps them around.
        """
        return node if self.contains(node) else None

    # -- neighbourhoods --------------------------------------------------------

    def neighbours(self, node: Coord) -> List[Coord]:
        """Return the physical link neighbours of *node* (degree <= 4)."""
        x, y = node
        candidates = [(x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)]
        result = []
        for candidate in candidates:
            mapped = self.normalise(candidate)
            if mapped is not None:
                result.append(mapped)
        return result

    def dimension_neighbours(self, node: Coord) -> Tuple[List[Coord], List[Coord]]:
        """Return ``(x_dimension_neighbours, y_dimension_neighbours)``.

        Labelling scheme 1 marks a non-faulty node unsafe when it has a
        faulty-or-unsafe neighbour in *both* dimensions, so the two
        neighbour groups must be distinguishable.
        """
        x, y = node
        xs = [self.normalise((x - 1, y)), self.normalise((x + 1, y))]
        ys = [self.normalise((x, y - 1)), self.normalise((x, y + 1))]
        return [n for n in xs if n is not None], [n for n in ys if n is not None]

    def adjacent_nodes(self, node: Coord) -> List[Coord]:
        """Return the paper's Definition 2 adjacency (the 8 surrounding nodes)."""
        x, y = node
        candidates = [
            (x - 1, y - 1),
            (x - 1, y),
            (x - 1, y + 1),
            (x, y - 1),
            (x, y + 1),
            (x + 1, y - 1),
            (x + 1, y),
            (x + 1, y + 1),
        ]
        result = []
        for candidate in candidates:
            mapped = self.normalise(candidate)
            if mapped is not None:
                result.append(mapped)
        return result

    def degree(self, node: Coord) -> int:
        """Return the physical degree of *node*."""
        return len(self.neighbours(node))

    # -- metrics ---------------------------------------------------------------

    def distance(self, a: Coord, b: Coord) -> int:
        """Return the minimum hop count between two nodes (fault-free)."""
        raise NotImplementedError

    @property
    def diameter(self) -> int:
        """Return the network diameter (fault-free)."""
        raise NotImplementedError

    def is_boundary(self, node: Coord) -> bool:
        """Return ``True`` when *node* lies on the physical mesh border.

        A torus has no border; every node reports ``False``.
        """
        return False


class Mesh2D(Topology):
    """A 2-D mesh: no wrap-around links, border nodes have reduced degree."""

    def distance(self, a: Coord, b: Coord) -> int:
        self.validate(a)
        self.validate(b)
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    @property
    def diameter(self) -> int:
        return (self.width - 1) + (self.height - 1)

    def is_boundary(self, node: Coord) -> bool:
        x, y = node
        return x in (0, self.width - 1) or y in (0, self.height - 1)


class Torus2D(Topology):
    """A 2-D torus: the mesh plus wrap-around links in both dimensions."""

    def normalise(self, node: Coord) -> Coord:
        x, y = node
        return (x % self.width, y % self.height)

    def distance(self, a: Coord, b: Coord) -> int:
        self.validate(a)
        self.validate(b)
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        return min(dx, self.width - dx) + min(dy, self.height - dy)

    @property
    def diameter(self) -> int:
        return self.width // 2 + self.height // 2
