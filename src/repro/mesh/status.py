"""Per-node status storage for fault-region constructions.

A construction run produces, for every node, a final classification
(:class:`~repro.types.NodeKind`): faulty (black), disabled non-faulty (gray)
or enabled non-faulty (white).  Intermediate labels from the two labelling
schemes (safe/unsafe, enabled/disabled) are also stored so that the
behaviour of the growing and shrinking phases can be inspected and tested.

The grid is numpy-backed: the evaluation sweeps run thousands of
constructions on a 100 x 100 mesh, and the counting queries (how many
non-faulty nodes are disabled, how large is each region, ...) are the hot
path of the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set

import numpy as np

from repro.geometry.masks import validated_coords
from repro.mesh.topology import Topology
from repro.types import ActivityLabel, Coord, NodeKind, SafetyLabel


class StatusGrid:
    """Node-status arrays for one topology.

    The grid keeps three aligned boolean arrays indexed by ``[x, y]``:

    * ``faulty`` -- the injected fault set (never changed by constructions),
    * ``unsafe`` -- labelling scheme 1 output (grown fault regions),
    * ``disabled`` -- labelling scheme 2 / construction output (the nodes a
      router must treat as part of a fault region).

    The convention throughout the package is that faulty nodes are always
    unsafe and always disabled.
    """

    def __init__(self, topology: Topology, faults: Iterable[Coord] = ()) -> None:
        self.topology = topology
        width, height = topology.width, topology.height
        self.faulty = np.zeros((width, height), dtype=bool)
        self.unsafe = np.zeros((width, height), dtype=bool)
        self.disabled = np.zeros((width, height), dtype=bool)
        # One validated fancy-index assignment instead of a per-fault
        # mark_faulty() loop -- construction sweeps build thousands of
        # grids per second.
        coords = validated_coords(faults, width, height, kind="node", where="topology")
        if coords.size:
            self.faulty[coords[:, 0], coords[:, 1]] = True
            self.unsafe[coords[:, 0], coords[:, 1]] = True
            self.disabled[coords[:, 0], coords[:, 1]] = True

    # -- mutation --------------------------------------------------------------

    def mark_faulty(self, node: Coord) -> None:
        """Inject a fault at *node*; the node becomes unsafe and disabled."""
        self.topology.validate(node)
        self.faulty[node] = True
        self.unsafe[node] = True
        self.disabled[node] = True

    def mark_unsafe(self, node: Coord) -> None:
        """Apply the unsafe label (labelling scheme 1) to *node*."""
        self.topology.validate(node)
        self.unsafe[node] = True

    def mark_disabled(self, node: Coord) -> None:
        """Mark *node* as part of a fault region (disabled for routing)."""
        self.topology.validate(node)
        self.disabled[node] = True

    def mark_enabled(self, node: Coord) -> None:
        """Re-enable a non-faulty node (labelling scheme 2 shrinking)."""
        self.topology.validate(node)
        if self.faulty[node]:
            raise ValueError(f"faulty node {node} can never be enabled")
        self.disabled[node] = False

    def reset_labels(self) -> None:
        """Clear the unsafe/disabled labels, keeping the fault set."""
        self.unsafe = self.faulty.copy()
        self.disabled = self.faulty.copy()

    # -- single-node queries ----------------------------------------------------

    def is_faulty(self, node: Coord) -> bool:
        """Return ``True`` when *node* is an injected fault."""
        return bool(self.faulty[node])

    def is_unsafe(self, node: Coord) -> bool:
        """Return ``True`` when *node* carries the unsafe label."""
        return bool(self.unsafe[node])

    def is_disabled(self, node: Coord) -> bool:
        """Return ``True`` when *node* belongs to a fault region."""
        return bool(self.disabled[node])

    def safety_label(self, node: Coord) -> SafetyLabel:
        """Return the labelling-scheme-1 label of *node*."""
        return SafetyLabel.UNSAFE if self.unsafe[node] else SafetyLabel.SAFE

    def activity_label(self, node: Coord) -> ActivityLabel:
        """Return the labelling-scheme-2 label of *node*."""
        return ActivityLabel.DISABLED if self.disabled[node] else ActivityLabel.ENABLED

    def kind(self, node: Coord) -> NodeKind:
        """Return the final colour of *node* (black / gray / white)."""
        if self.faulty[node]:
            return NodeKind.FAULTY
        if self.disabled[node]:
            return NodeKind.DISABLED
        return NodeKind.ENABLED

    # -- set queries -------------------------------------------------------------

    def fault_set(self) -> Set[Coord]:
        """Return the injected fault set."""
        return {(int(x), int(y)) for x, y in zip(*np.nonzero(self.faulty))}

    def unsafe_set(self) -> Set[Coord]:
        """Return every node carrying the unsafe label."""
        return {(int(x), int(y)) for x, y in zip(*np.nonzero(self.unsafe))}

    def disabled_set(self) -> Set[Coord]:
        """Return every node belonging to a fault region (faulty included)."""
        return {(int(x), int(y)) for x, y in zip(*np.nonzero(self.disabled))}

    def disabled_nonfaulty_set(self) -> Set[Coord]:
        """Return the non-faulty nodes sacrificed to the fault regions."""
        mask = self.disabled & ~self.faulty
        return {(int(x), int(y)) for x, y in zip(*np.nonzero(mask))}

    # -- counters -----------------------------------------------------------------

    @property
    def num_faulty(self) -> int:
        """Number of injected faults."""
        return int(self.faulty.sum())

    @property
    def num_unsafe(self) -> int:
        """Number of unsafe nodes (faulty nodes included)."""
        return int(self.unsafe.sum())

    @property
    def num_disabled(self) -> int:
        """Number of disabled nodes (faulty nodes included)."""
        return int(self.disabled.sum())

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Number of non-faulty nodes disabled by the construction.

        This is the quantity plotted in the paper's Figure 9.
        """
        return int((self.disabled & ~self.faulty).sum())

    @property
    def num_enabled(self) -> int:
        """Number of nodes still available to the routing layer."""
        return self.topology.num_nodes - self.num_disabled

    # -- presentation ---------------------------------------------------------------

    def render(self, bounds: "tuple[int, int, int, int] | None" = None) -> str:
        """Render an ASCII picture of the grid (``#`` faulty, ``o`` disabled).

        ``bounds`` is an optional ``(min_x, min_y, max_x, max_y)`` window;
        by default the full grid is drawn.  Rows are printed north-to-south
        so the picture matches the paper's figures.
        """
        if bounds is None:
            min_x, min_y = 0, 0
            max_x, max_y = self.topology.width - 1, self.topology.height - 1
        else:
            min_x, min_y, max_x, max_y = bounds
        lines: List[str] = []
        for y in range(max_y, min_y - 1, -1):
            cells = []
            for x in range(min_x, max_x + 1):
                if self.faulty[x, y]:
                    cells.append("#")
                elif self.disabled[x, y]:
                    cells.append("o")
                elif self.unsafe[x, y]:
                    cells.append("+")
                else:
                    cells.append(".")
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def copy(self) -> "StatusGrid":
        """Return a deep copy of this grid (same topology object)."""
        clone = StatusGrid(self.topology)
        clone.faulty = self.faulty.copy()
        clone.unsafe = self.unsafe.copy()
        clone.disabled = self.disabled.copy()
        return clone

    def __iter__(self) -> Iterator[Coord]:
        return self.topology.nodes()
