"""Orthogonal convexity tests and the minimum orthogonal convex hull.

The paper's Definition 1:

    A fault region is *orthogonal convex* if and only if, for any horizontal
    or vertical line, whenever two nodes on the line are inside the region,
    all the nodes on the line between them are also inside the region.

The *minimum orthogonal convex hull* of a node set ``S`` is the smallest
orthogonal convex superset of ``S``.  It is computed by repeatedly filling
every concave row and column section (Definition 3) until a fixed point is
reached.  Every orthogonal convex superset of ``S`` must contain every node
added by such a fill step, so the fixed point is contained in all of them;
and the fixed point is itself orthogonal convex, hence it is the unique
minimum.  This function is the reference the centralized and distributed
minimum-faulty-polygon constructions are validated against.

Two implementations coexist.  The public functions dispatch to the
vectorized bitmask kernel of :mod:`repro.geometry.masks` (the region is
rasterised into its bounding box and the spans are filled with whole-array
operations); the original per-cell set implementations are kept under
``*_sets`` names as the differential-test oracle and as the fallback for
pathologically sparse regions.  Both produce bit-identical results, which
``tests/test_geometry_masks.py`` asserts on randomized inputs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.geometry import masks
from repro.types import Coord


def _rows_and_columns(
    region: Iterable[Coord],
) -> Tuple[Dict[int, List[int]], Dict[int, List[int]]]:
    """Group a region into per-row column lists and per-column row lists."""
    rows: Dict[int, List[int]] = defaultdict(list)
    cols: Dict[int, List[int]] = defaultdict(list)
    for x, y in region:
        rows[y].append(x)
        cols[x].append(y)
    return rows, cols


# -- set-based oracle implementations ------------------------------------------------


def is_orthogonal_convex_sets(region: Iterable[Coord]) -> bool:
    """Set-based oracle for :func:`is_orthogonal_convex`."""
    region_set = set(region)
    rows, cols = _rows_and_columns(region_set)
    for y, xs in rows.items():
        lo, hi = min(xs), max(xs)
        if hi - lo + 1 != len(set(xs)):
            return False
        # Contiguity also requires that every intermediate cell is present.
        for x in range(lo, hi + 1):
            if (x, y) not in region_set:
                return False
    for x, ys in cols.items():
        lo, hi = min(ys), max(ys)
        for y in range(lo, hi + 1):
            if (x, y) not in region_set:
                return False
    return True


def orthogonal_convexity_violations_sets(region: Iterable[Coord]) -> Set[Coord]:
    """Set-based oracle for :func:`orthogonal_convexity_violations`."""
    region_set = set(region)
    missing: Set[Coord] = set()
    rows, cols = _rows_and_columns(region_set)
    for y, xs in rows.items():
        for x in range(min(xs), max(xs) + 1):
            if (x, y) not in region_set:
                missing.add((x, y))
    for x, ys in cols.items():
        for y in range(min(ys), max(ys) + 1):
            if (x, y) not in region_set:
                missing.add((x, y))
    return missing


def orthogonal_convex_hull_sets(region: Iterable[Coord]) -> FrozenSet[Coord]:
    """Set-based oracle for :func:`orthogonal_convex_hull`."""
    current: Set[Coord] = set(region)
    if not current:
        return frozenset()
    while True:
        missing = orthogonal_convexity_violations_sets(current)
        if not missing:
            return frozenset(current)
        current |= missing


# -- kernel-backed public API --------------------------------------------------------


def is_orthogonal_convex(region: Iterable[Coord]) -> bool:
    """Return ``True`` when *region* satisfies the paper's Definition 1.

    Equivalent formulation: in every row the occupied column indices form a
    contiguous run, and in every column the occupied row indices form a
    contiguous run.  The empty region and single nodes are trivially
    orthogonal convex.
    """
    region_set = set(region)
    if masks.kernel_enabled():
        local = masks.try_local_mask(region_set)
        if local is not None:
            return masks.is_convex_mask(local[0])
    return is_orthogonal_convex_sets(region_set)


def orthogonal_convexity_violations(region: Iterable[Coord]) -> Set[Coord]:
    """Return the nodes that must be added to make *region* orthogonal convex.

    Only the *first layer* of violations is returned (the nodes lying on a
    horizontal or vertical segment between two region nodes but outside the
    region); adding them may expose further violations.  Use
    :func:`orthogonal_convex_hull` for the transitive closure.
    """
    region_set = set(region)
    if masks.kernel_enabled():
        local = masks.try_local_mask(region_set)
        if local is not None:
            mask, offset = local
            return set(masks.mask_to_coords(masks.span_violations(mask), offset))
    return orthogonal_convexity_violations_sets(region_set)


def orthogonal_convex_hull(region: Iterable[Coord]) -> FrozenSet[Coord]:
    """Return the minimum orthogonal convex superset of *region*.

    The hull is computed by iterating the concave-section fill to a fixed
    point.  For a connected component a single pass usually suffices, but a
    fill along one axis can expose a new gap along the other, so the loop
    runs until no node is added.  The result is returned as a frozenset so
    that it can be hashed/cached by callers.

    The empty region yields the empty hull.
    """
    region_set = set(region)
    if masks.kernel_enabled():
        local = masks.try_local_mask(region_set)
        if local is not None:
            mask, offset = local
            return masks.mask_to_frozenset(masks.hull_mask(mask), offset)
    return orthogonal_convex_hull_sets(region_set)


def hull_fill_nodes(region: Iterable[Coord]) -> FrozenSet[Coord]:
    """Return only the nodes *added* by the minimum orthogonal convex hull.

    These are exactly the non-faulty nodes a minimum faulty polygon disables
    for a faulty component equal to *region*.
    """
    region_set = set(region)
    return frozenset(orthogonal_convex_hull(region_set) - region_set)
