"""Orthogonal geometry utilities on the integer grid.

This subpackage provides the purely combinatorial geometry the fault-region
constructions are built on:

* :class:`~repro.geometry.rectangle.Rectangle` -- axis-aligned integer
  rectangles (the shape of a rectangular faulty block and of the virtual
  faulty block grown from a component's bounding box).
* :func:`~repro.geometry.orthogonal.is_orthogonal_convex` -- the paper's
  Definition 1.
* :func:`~repro.geometry.orthogonal.orthogonal_convex_hull` -- the minimum
  orthogonal convex superset of a set of nodes, computed by iteratively
  filling concave row/column sections (the reference implementation that the
  centralized and distributed constructions are validated against).
* :func:`~repro.geometry.sections.concave_row_sections` /
  :func:`~repro.geometry.sections.concave_column_sections` -- the paper's
  Definition 3.
* :func:`~repro.geometry.boundary.boundary_ring` -- the ring of non-member
  nodes surrounding a component, walked clockwise starting from the
  west-most south-west corner (used by the distributed solution).
* :mod:`~repro.geometry.masks` -- the vectorized bitmask kernel backing the
  primitives above on large meshes (switchable via
  :func:`~repro.geometry.masks.use_kernel`; the set-based implementations
  remain the differential-test oracle).
"""

from repro.geometry import masks
from repro.geometry.masks import kernel_enabled, use_kernel
from repro.geometry.rectangle import Rectangle, bounding_rectangle
from repro.geometry.orthogonal import (
    is_orthogonal_convex,
    orthogonal_convex_hull,
    orthogonal_convexity_violations,
)
from repro.geometry.sections import (
    Section,
    concave_column_sections,
    concave_row_sections,
    concave_sections,
)
from repro.geometry.boundary import (
    BoundaryNode,
    boundary_nodes,
    boundary_ring,
    region_perimeter,
)

__all__ = [
    "masks",
    "kernel_enabled",
    "use_kernel",
    "Rectangle",
    "bounding_rectangle",
    "is_orthogonal_convex",
    "orthogonal_convex_hull",
    "orthogonal_convexity_violations",
    "Section",
    "concave_row_sections",
    "concave_column_sections",
    "concave_sections",
    "BoundaryNode",
    "boundary_nodes",
    "boundary_ring",
    "region_perimeter",
]
