"""Axis-aligned integer rectangles.

A rectangular faulty block is represented by its two opposite corners
``[(min_x, min_y), (max_x, max_y)]`` exactly as in the paper.  The same
representation is reused for the *virtual faulty block* of a component
(its bounding box) in the centralized minimum-faulty-polygon construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Set

from repro.types import Coord


@dataclass(frozen=True, order=True)
class Rectangle:
    """A closed axis-aligned rectangle of grid nodes.

    ``Rectangle(min_x, min_y, max_x, max_y)`` contains every node ``(x, y)``
    with ``min_x <= x <= max_x`` and ``min_y <= y <= max_y``.  Degenerate
    rectangles (a single row, column or node) are allowed; an *empty*
    rectangle is not representable and construction raises ``ValueError``
    when ``max`` is smaller than ``min`` in either dimension.
    """

    min_x: int
    min_y: int
    max_x: int
    max_y: int

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"degenerate rectangle bounds: "
                f"[{self.min_x},{self.max_x}] x [{self.min_y},{self.max_y}]"
            )

    # -- size ---------------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of columns covered by the rectangle."""
        return self.max_x - self.min_x + 1

    @property
    def height(self) -> int:
        """Number of rows covered by the rectangle."""
        return self.max_y - self.min_y + 1

    @property
    def area(self) -> int:
        """Number of nodes contained in the rectangle."""
        return self.width * self.height

    @property
    def corners(self) -> List[Coord]:
        """The four corners ``(min,min), (min,max), (max,min), (max,max)``."""
        return [
            (self.min_x, self.min_y),
            (self.min_x, self.max_y),
            (self.max_x, self.min_y),
            (self.max_x, self.max_y),
        ]

    # -- membership / relations ---------------------------------------------

    def __contains__(self, node: Coord) -> bool:
        x, y = node
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rectangle") -> bool:
        """Return ``True`` when *other* lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rectangle") -> bool:
        """Return ``True`` when the two rectangles share at least one node."""
        return not (
            other.max_x < self.min_x
            or self.max_x < other.min_x
            or other.max_y < self.min_y
            or self.max_y < other.min_y
        )

    def intersection(self, other: "Rectangle") -> "Rectangle | None":
        """Return the overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rectangle(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union_bounds(self, other: "Rectangle") -> "Rectangle":
        """Return the smallest rectangle containing both rectangles."""
        return Rectangle(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: int = 1) -> "Rectangle":
        """Return this rectangle grown by *margin* nodes on every side."""
        return Rectangle(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clipped(self, bounds: "Rectangle") -> "Rectangle | None":
        """Return this rectangle clipped to *bounds* (``None`` if disjoint)."""
        return self.intersection(bounds)

    def on_perimeter(self, node: Coord) -> bool:
        """Return ``True`` when *node* lies on the rectangle's outline."""
        x, y = node
        if node not in self:
            return False
        return (
            x == self.min_x or x == self.max_x or y == self.min_y or y == self.max_y
        )

    # -- iteration ------------------------------------------------------------

    def nodes(self) -> Iterator[Coord]:
        """Yield every node contained in the rectangle (column-major)."""
        for x in range(self.min_x, self.max_x + 1):
            for y in range(self.min_y, self.max_y + 1):
                yield (x, y)

    def node_set(self) -> Set[Coord]:
        """Return the contained nodes as a set."""
        return set(self.nodes())

    def rows(self) -> Iterator[int]:
        """Yield every row index (``y`` value) covered by the rectangle."""
        return iter(range(self.min_y, self.max_y + 1))

    def columns(self) -> Iterator[int]:
        """Yield every column index (``x`` value) covered by the rectangle."""
        return iter(range(self.min_x, self.max_x + 1))

    def __iter__(self) -> Iterator[Coord]:
        return self.nodes()

    def __len__(self) -> int:
        return self.area

    # -- presentation ---------------------------------------------------------

    def as_corner_pair(self) -> str:
        """Render in the paper's ``[(min_x,min_y);(max_x,max_y)]`` notation."""
        return f"[({self.min_x},{self.min_y});({self.max_x},{self.max_y})]"

    @classmethod
    def from_nodes(cls, nodes: Iterable[Coord]) -> "Rectangle":
        """Return the bounding rectangle of a non-empty node collection."""
        return bounding_rectangle(nodes)


def bounding_rectangle(nodes: Iterable[Coord]) -> Rectangle:
    """Return the smallest :class:`Rectangle` containing every node given.

    Raises ``ValueError`` on an empty collection: an empty fault component
    has no bounding box and callers are expected to filter these out.
    """
    iterator = iter(nodes)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding_rectangle() of an empty node collection")
    min_x = max_x = first[0]
    min_y = max_y = first[1]
    for x, y in iterator:
        if x < min_x:
            min_x = x
        elif x > max_x:
            max_x = x
        if y < min_y:
            min_y = y
        elif y > max_y:
            max_y = y
    return Rectangle(min_x, min_y, max_x, max_y)
