"""NumPy bitmask kernel for the hot geometric primitives.

Every region-level primitive of the construction pipeline -- grouping
faults into 8-connected components, testing a region for orthogonal
convexity (Definition 1), filling a region to its minimum orthogonal convex
hull, and extracting boundary rings and perimeters -- was originally
implemented over Python sets of coordinate tuples.  Those implementations
are clear and remain the differential-test oracle, but they cost an
interpreted loop iteration per node, which dominates the runtime of
large-mesh sweeps.

This module reimplements the primitives as whole-grid boolean-array
operations built on the same ``_shift`` machinery that powers the labelling
schemes in :mod:`repro.core.labelling`:

* **Connected-component labelling** (:func:`label_mask`): iterative
  minimum-label propagation -- every occupied cell starts with its linear
  index and repeatedly adopts the smallest label visible among its 4 or 8
  neighbours, exactly one shifted-array minimum per direction per round.
  When :mod:`scipy.ndimage` is importable its C implementation is used
  instead; both paths are canonicalised to the same deterministic label
  order (ascending lexicographic minimum node), so results are
  bit-identical to the BFS oracle in :mod:`repro.core.components`.
  The labelling, span-fill and hull primitives dispatch through the
  pluggable array-backend facade (:mod:`repro._array_ops`,
  ``REPRO_ARRAY_BACKEND``), so a JIT backend accelerates them without
  touching this module.
* **Orthogonal convexity / hull** (:func:`is_convex_mask`,
  :func:`span_violations`, :func:`hull_mask`): per-row and per-column
  occupied spans are computed with two ``argmax`` sweeps; a region is
  convex iff the span fill adds nothing, and the minimum hull is the span
  fill iterated to its fixed point (the same fixed point as the set-based
  :func:`repro.geometry.orthogonal.orthogonal_convex_hull`).
* **Rings and perimeters** (:func:`ring_mask`, :func:`perimeter_mask`):
  binary morphology -- the boundary ring is the 8-dilation minus the
  region, the perimeter counts the exposed cell sides via four shifts.

The kernel can be switched off globally (environment variable
``REPRO_MASK_KERNEL=0``) or locally (:func:`use_kernel`), which makes every
rewired consumer fall back to its legacy set-based implementation; the
differential benchmark ``benchmarks/bench_kernel.py`` uses the switch to
time both paths on the same inputs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro import _array_ops
from repro.types import Coord

_shift_impl = None


def _shift(mask: np.ndarray, dx: int, dy: int, wrap: bool, fill=None) -> np.ndarray:
    """The shared shifted-view primitive of :mod:`repro.core.labelling`.

    Imported lazily: ``repro.core`` transitively imports this module, so a
    top-level import would be circular.
    """
    global _shift_impl
    if _shift_impl is None:
        from repro.core.labelling import _shift as shift

        _shift_impl = shift
    return _shift_impl(mask, dx, dy, wrap, fill)


#: Neighbour offsets of the two adjacency notions used by the paper.
_OFFSETS_4: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
_OFFSETS_8: Tuple[Tuple[int, int], ...] = _OFFSETS_4 + (
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
)

#: Largest local bounding-box area (cells) the kernel will materialise as a
#: dense mask; a sparser region falls back to the set-based oracle.  16M
#: boolean cells is ~16 MB -- far beyond any mesh the benchmarks sweep.
MAX_LOCAL_AREA = 16_000_000

_kernel_enabled = os.environ.get("REPRO_MASK_KERNEL", "1") != "0"


def kernel_enabled() -> bool:
    """Whether the mask kernel currently backs the geometric primitives."""
    return _kernel_enabled


def set_kernel_enabled(enabled: bool) -> bool:
    """Switch the kernel on/off globally; returns the previous setting."""
    global _kernel_enabled
    previous = _kernel_enabled
    _kernel_enabled = bool(enabled)
    return previous


@contextmanager
def use_kernel(enabled: bool):
    """Context manager scoping a kernel on/off switch (used by benchmarks)."""
    previous = set_kernel_enabled(enabled)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


# -- mask <-> coordinate conversions -------------------------------------------------


def validated_coords(
    coords: Iterable[Coord],
    width: int,
    height: int,
    kind: str = "node",
    where: str = "grid",
) -> np.ndarray:
    """Return *coords* as a validated ``(n, 2)`` int array.

    Raises ``ValueError`` naming the first coordinate (in iteration order)
    outside the ``width x height`` bounds; *kind*/*where* parametrise the
    message so callers keep their historical wording.  Shared by
    :func:`repro.core.labelling.faults_to_mask` and
    :class:`repro.mesh.status.StatusGrid`.
    """
    pts = np.asarray(coords if isinstance(coords, np.ndarray) else list(coords))
    if pts.size == 0:
        return pts.reshape(0, 2)
    pts = pts.reshape(-1, 2)
    xs, ys = pts[:, 0], pts[:, 1]
    bad = (xs < 0) | (xs >= width) | (ys < 0) | (ys >= height)
    if bad.any():
        x, y = pts[int(np.argmax(bad))]
        raise ValueError(
            f"{kind} {(int(x), int(y))} outside {width}x{height} {where}"
        )
    return pts


def coords_to_local_mask(
    coords: Iterable[Coord], pad: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rasterise *coords* into a tight local mask.

    Returns ``(mask, (min_x, min_y))`` where ``mask[x - min_x, y - min_y]``
    is ``True`` for every coordinate; *pad* adds a margin of empty cells on
    every side (needed when a dilation must not fall off the array).  The
    empty collection yields a ``(0, 0)`` mask.
    """
    pts = np.asarray(coords if isinstance(coords, np.ndarray) else list(coords))
    if pts.size == 0:
        return np.zeros((0, 0), dtype=bool), (0, 0)
    pts = pts.reshape(-1, 2)
    min_x = int(pts[:, 0].min()) - pad
    min_y = int(pts[:, 1].min()) - pad
    width = int(pts[:, 0].max()) + pad - min_x + 1
    height = int(pts[:, 1].max()) + pad - min_y + 1
    mask = np.zeros((width, height), dtype=bool)
    mask[pts[:, 0] - min_x, pts[:, 1] - min_y] = True
    return mask, (min_x, min_y)


def try_local_mask(
    coords: Iterable[Coord], pad: int = 0, max_area: int = MAX_LOCAL_AREA
) -> Optional[Tuple[np.ndarray, Tuple[int, int]]]:
    """Like :func:`coords_to_local_mask`, but ``None`` when the bounding box
    is too sparse to rasterise (the caller then uses its set-based path)."""
    pts = np.asarray(coords if isinstance(coords, np.ndarray) else list(coords))
    if pts.size == 0:
        return np.zeros((0, 0), dtype=bool), (0, 0)
    pts = pts.reshape(-1, 2)
    spread_x = int(pts[:, 0].max()) - int(pts[:, 0].min()) + 1 + 2 * pad
    spread_y = int(pts[:, 1].max()) - int(pts[:, 1].min()) + 1 + 2 * pad
    if spread_x * spread_y > max_area:
        return None
    return coords_to_local_mask(pts, pad=pad)


def mask_to_coords(mask: np.ndarray, offset: Tuple[int, int] = (0, 0)) -> List[Coord]:
    """Return the ``True`` cells of *mask* as plain-int coordinate tuples.

    ``np.nonzero`` scans in C order, so the list is sorted lexicographically
    by ``(x, y)`` -- the same order the set-based code obtains from
    ``sorted()``.
    """
    xs, ys = np.nonzero(mask)
    return list(zip((xs + offset[0]).tolist(), (ys + offset[1]).tolist()))


def mask_to_frozenset(
    mask: np.ndarray, offset: Tuple[int, int] = (0, 0)
) -> FrozenSet[Coord]:
    """Return the ``True`` cells of *mask* as a frozenset of coordinates."""
    return frozenset(mask_to_coords(mask, offset))


# -- connected-component labelling ---------------------------------------------------


def _propagate_labels(mask: np.ndarray, offsets) -> np.ndarray:
    """Minimum-label propagation over *mask* (numpy reference; see
    :func:`repro._array_ops.propagate_labels`)."""
    return _array_ops.propagate_labels(mask, offsets)


def _canonicalise(labels: np.ndarray, count: int) -> np.ndarray:
    """Relabel 1..count in ascending order of each component's first cell
    (see :func:`repro._array_ops.canonicalise_labels`)."""
    return _array_ops.canonicalise_labels(labels, count)


def label_mask(mask: np.ndarray, connectivity: int = 8) -> Tuple[np.ndarray, int]:
    """Label the connected components of a boolean ``[x, y]`` mask.

    Returns ``(labels, count)`` where ``labels`` holds ``0`` on empty cells
    and ``1..count`` on occupied cells; labels are assigned in ascending
    lexicographic order of each component's minimum node, matching the
    deterministic discovery order of the set-based BFS.  *connectivity* is
    ``8`` (the paper's Definition 2, diagonal contact merges) or ``4`` (the
    physical link adjacency used for fault regions).
    """
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, not {connectivity}")
    width, height = mask.shape
    out = np.zeros((width, height), dtype=np.int32)
    xs, ys = np.nonzero(mask)
    if xs.size == 0:
        return out, 0
    # Work on the tight bounding box of the occupied cells: the labelling
    # cost scales with the box area, not the full grid.
    x0, x1 = int(xs.min()), int(xs.max())
    y0, y1 = int(ys.min()), int(ys.max())
    sub = np.ascontiguousarray(mask[x0 : x1 + 1, y0 : y1 + 1])
    labels, count = _array_ops.active_ops().label_components(sub, connectivity)
    out[x0 : x1 + 1, y0 : y1 + 1] = labels
    return out, int(count)


def grouped_nonzero(
    labels: np.ndarray, count: int
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Split the occupied cells of a label array by label.

    Returns, for each label ``1..count`` in order, the ``(xs, ys)`` index
    arrays of its cells sorted lexicographically by ``(x, y)``.
    """
    xs, ys = np.nonzero(labels)
    values = labels[xs, ys]
    order = np.argsort(values, kind="stable")  # keeps C-order within a label
    xs, ys, values = xs[order], ys[order], values[order]
    bounds = np.searchsorted(values, np.arange(1, count + 2))
    return [
        (xs[bounds[i] : bounds[i + 1]], ys[bounds[i] : bounds[i + 1]])
        for i in range(count)
    ]


def nonconvex_labels(labels: np.ndarray, count: int) -> np.ndarray:
    """Labels (``1..count``) whose cell sets violate Definition 1.

    A region is orthogonal convex iff in every row its occupied columns form
    a contiguous run, and in every column its occupied rows do.  Both checks
    run over *all* regions at once: the occupied cells are sorted by
    ``(label, x, y)`` (free: ``np.nonzero`` scan order) and by
    ``(label, y, x)`` (one lexsort), and a region is flagged when two
    consecutive cells of the same label and line differ by more than one.
    This is what lets the convexity repair after piling touch no Python
    per-region loop in the (overwhelmingly common) all-convex case.
    """
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    return _array_ops.active_ops().nonconvex_labels(labels, count)


# -- orthogonal convexity ------------------------------------------------------------


def span_fill(mask: np.ndarray) -> np.ndarray:
    """One concave-section fill pass: row spans union column spans.

    This is the mask form of
    :func:`repro.geometry.orthogonal.orthogonal_convexity_violations` plus
    the region itself.
    """
    if mask.size == 0:
        return mask.copy()
    return _array_ops.active_ops().span_fill(mask)


def span_violations(mask: np.ndarray) -> np.ndarray:
    """The first layer of orthogonal-convexity violations of *mask*."""
    return span_fill(mask) & ~mask


def is_convex_mask(mask: np.ndarray) -> bool:
    """Whether *mask* satisfies the paper's Definition 1."""
    if mask.size == 0:
        return True
    return not span_violations(mask).any()


def hull_mask(mask: np.ndarray) -> np.ndarray:
    """The minimum orthogonal convex hull of *mask* (span-fill fixed point)."""
    if mask.size == 0:
        return mask.copy()
    return _array_ops.active_ops().hull_fixpoint(mask)


# -- morphology: rings and perimeters ------------------------------------------------


def dilate_mask(mask: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """Binary dilation of *mask* by one cell (zero fill beyond the array)."""
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, not {connectivity}")
    if mask.size == 0:
        return mask.copy()
    out = mask.copy()
    for dx, dy in _OFFSETS_8 if connectivity == 8 else _OFFSETS_4:
        out |= _shift(mask, dx, dy, wrap=False)
    return out


def ring_mask(mask: np.ndarray, connectivity: int = 8) -> np.ndarray:
    """The boundary ring of *mask*: its dilation minus the region itself.

    With the default 8-connectivity this is exactly the member set of the
    clockwise boundary ring (side nodes plus outer corners, see
    :func:`repro.geometry.boundary.ring_members`).  The caller must provide
    one cell of padding (``coords_to_local_mask(..., pad=1)``) when ring
    cells outside the region's bounding box matter.
    """
    return dilate_mask(mask, connectivity) & ~mask


def perimeter_mask(mask: np.ndarray) -> int:
    """Number of exposed (cell, side) edges of *mask*.

    Matches :func:`repro.geometry.boundary.region_perimeter`: a side is
    exposed when the 4-neighbour across it is outside the region (cells
    beyond the array count as outside).
    """
    if mask.size == 0:
        return 0
    total = 0
    for dx, dy in _OFFSETS_4:
        total += int((mask & ~_shift(mask, dx, dy, wrap=False)).sum())
    return total
