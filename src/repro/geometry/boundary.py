"""Boundary nodes, corners, and the clockwise boundary ring of a component.

The distributed minimum-faulty-polygon construction (Section 3.2 of the
paper) is driven by the *boundary nodes* of a faulty component: nodes that
are outside every faulty component but adjacent to this component.  A
boundary node immediately north of a component node is a *north boundary
node*, and similarly for south, east and west; a node may carry several
boundary sides at once.  Together with the *outer corner* nodes (nodes that
are only diagonally adjacent to the component) the boundary nodes form a
ring surrounding the component.  The initiation message of the distributed
solution travels clockwise along this ring starting from the west-most
south-west corner.

This module computes the boundary-side classification and produces the
clockwise ring walk.  The walk is a pure-geometry traversal on an unbounded
grid: a component that touches the mesh edge still has a well-defined walk
(some positions of the walk may fall outside the physical mesh; the
distributed engine accounts for them as border-node bookkeeping, see
``repro.distributed.ring``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.geometry import masks
from repro.types import Coord, Side

#: Unit steps for the four cardinal directions, in clockwise order starting
#: from north.  ``y`` grows northwards.
_DIRECTIONS: Tuple[Tuple[int, int], ...] = ((0, 1), (1, 0), (0, -1), (-1, 0))
_NORTH, _EAST, _SOUTH, _WEST = 0, 1, 2, 3


@dataclass(frozen=True)
class BoundaryNode:
    """A node on the boundary ring of a component.

    ``sides`` lists the boundary sides the node holds with respect to the
    component (empty for a pure outer-corner node, which belongs to the ring
    but is not an east/south/west/north boundary node).
    """

    position: Coord
    sides: frozenset = field(default_factory=frozenset)

    @property
    def is_outer_corner(self) -> bool:
        """True when the node touches the component only diagonally."""
        return not self.sides


def four_neighbours(node: Coord) -> List[Coord]:
    """Return the four dimension-wise neighbours of *node* (unbounded grid)."""
    x, y = node
    return [(x, y + 1), (x + 1, y), (x, y - 1), (x - 1, y)]


def eight_neighbours(node: Coord) -> List[Coord]:
    """Return the eight adjacent nodes of *node* (the paper's Definition 2)."""
    x, y = node
    return [
        (x - 1, y - 1),
        (x - 1, y),
        (x - 1, y + 1),
        (x, y - 1),
        (x, y + 1),
        (x + 1, y - 1),
        (x + 1, y),
        (x + 1, y + 1),
    ]


def boundary_nodes(region: Iterable[Coord]) -> Dict[Coord, Set[Side]]:
    """Classify the 4-adjacent outside nodes of *region* by boundary side.

    Returns a mapping from node position to the set of sides it holds.  A
    node directly north of some region node is a north boundary node with
    respect to that region, etc.  Outer corners (diagonal-only adjacency) are
    *not* included here; see :func:`ring_members`.
    """
    region_set = set(region)
    result: Dict[Coord, Set[Side]] = {}
    for x, y in region_set:
        for neighbour, side in (
            ((x, y + 1), Side.NORTH),
            ((x, y - 1), Side.SOUTH),
            ((x + 1, y), Side.EAST),
            ((x - 1, y), Side.WEST),
        ):
            if neighbour in region_set:
                continue
            result.setdefault(neighbour, set()).add(side)
    return result


def ring_members(region: Iterable[Coord]) -> Dict[Coord, BoundaryNode]:
    """Return every node of the boundary ring (side nodes and outer corners)."""
    region_set = set(region)
    sides = boundary_nodes(region_set)
    members: Dict[Coord, BoundaryNode] = {}
    for node in region_set:
        for neighbour in eight_neighbours(node):
            if neighbour in region_set:
                continue
            members.setdefault(
                neighbour,
                BoundaryNode(neighbour, frozenset(sides.get(neighbour, set()))),
            )
    return members


def region_perimeter(region: Iterable[Coord]) -> int:
    """Return the number of exposed (node, side) edges of *region*.

    This is the length of the component's outline in grid-edge units and is
    the natural lower bound on the number of hops an initiation message needs
    to circle the component.
    """
    region_set = set(region)
    if masks.kernel_enabled():
        local = masks.try_local_mask(region_set)
        if local is not None:
            return masks.perimeter_mask(local[0])
    perimeter = 0
    for node in region_set:
        for neighbour in four_neighbours(node):
            if neighbour not in region_set:
                perimeter += 1
    return perimeter


def southwest_outer_corner(region: Iterable[Coord]) -> Coord:
    """Return the west-most south-west outer corner of *region*.

    The paper elects the west-most south-west (inner or outer) corner as the
    dominating initiator of the boundary-ring construction.  For the
    geometric walk we anchor on the outer corner diagonally south-west of the
    west-most (then south-most) component node; the overwriting rule in
    ``repro.distributed.ring`` reproduces the election among multiple
    candidate initiators.
    """
    region_set = set(region)
    if not region_set:
        raise ValueError("southwest_outer_corner() of an empty region")
    anchor = min(region_set, key=lambda node: (node[0], node[1]))
    return (anchor[0] - 1, anchor[1] - 1)


def _wall_follow(region_set: Set[Coord], start: Coord, heading: int) -> List[Coord]:
    """Trace a closed walk hugging *region_set* with the right-hand rule.

    The walker starts at *start* facing *heading* (the wall should be on its
    right) and repeatedly prefers turning right, then going straight, then
    turning left, then reversing.  Termination uses state repetition: the
    walk returned is the closed cycle between the first repeated
    ``(position, direction)`` state, which makes the tracer robust even when
    the starting state itself lies on a transient (e.g. inside a cavity).
    """
    states: dict = {}
    walk: List[Coord] = []
    position = start
    direction = heading
    max_steps = 16 * (len(region_set) + 8) ** 2  # generous safety bound

    for _ in range(max_steps):
        state = (position, direction)
        if state in states:
            return walk[states[state]:]
        states[state] = len(walk)
        walk.append(position)
        moved = False
        for turn in (1, 0, 3, 2):
            candidate_dir = (direction + turn) % 4
            dx, dy = _DIRECTIONS[candidate_dir]
            candidate = (position[0] + dx, position[1] + dy)
            if candidate not in region_set:
                position = candidate
                direction = candidate_dir
                moved = True
                break
        if not moved:
            # The walker is boxed in on all four sides (a one-cell closed
            # concave region, fully surrounded by the component): the walk
            # degenerates to the single starting cell.
            return walk
    raise RuntimeError(
        "wall follower failed to close the walk; region may be pathological"
    )


def boundary_ring(region: Iterable[Coord]) -> List[Coord]:
    """Return the clockwise boundary-ring walk around *region*.

    The walk starts at the node immediately west of the west-most,
    south-most component node, proceeds clockwise (keeping the component on
    the right-hand side), and ends just before returning to the start in the
    starting direction.  Nodes inside narrow concave slots are visited twice
    (once inbound, once outbound), matching the behaviour of the initiation
    message in the paper's Figure 5(b).

    For a single-node component the walk visits the eight surrounding nodes.
    The walk is computed on an unbounded grid; callers that need to respect
    mesh bounds filter the positions afterwards.  Closed concave regions
    (holes) have their own inner walks, see :func:`hole_rings`.
    """
    region_set = set(region)
    if not region_set:
        return []
    if len(region_set) == 1:
        (x, y) = next(iter(region_set))
        # Clockwise from the west neighbour.
        return [
            (x - 1, y),
            (x - 1, y + 1),
            (x, y + 1),
            (x + 1, y + 1),
            (x + 1, y),
            (x + 1, y - 1),
            (x, y - 1),
            (x - 1, y - 1),
        ]

    anchor = min(region_set, key=lambda node: (node[0], node[1]))
    start = (anchor[0] - 1, anchor[1])  # directly west of the anchor
    return _wall_follow(region_set, start, _NORTH)


def hole_cells(region: Iterable[Coord]) -> Set[Coord]:
    """Return the cells enclosed by *region* (its closed concave regions).

    A cell is enclosed when it lies inside the bounding box, does not belong
    to the region, and cannot reach the outside of the bounding box through
    4-neighbour moves over non-region cells.
    """
    region_set = set(region)
    if not region_set:
        return set()
    xs = [x for x, _ in region_set]
    ys = [y for _, y in region_set]
    min_x, max_x = min(xs) - 1, max(xs) + 1
    min_y, max_y = min(ys) - 1, max(ys) + 1
    # Flood fill the outside starting from the expanded border.
    outside: Set[Coord] = set()
    frontier = [(min_x, min_y)]
    while frontier:
        node = frontier.pop()
        if node in outside or node in region_set:
            continue
        x, y = node
        if not (min_x <= x <= max_x and min_y <= y <= max_y):
            continue
        outside.add(node)
        frontier.extend(((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)))
    holes: Set[Coord] = set()
    for x in range(min_x + 1, max_x):
        for y in range(min_y + 1, max_y):
            node = (x, y)
            if node not in region_set and node not in outside:
                holes.add(node)
    return holes


def hole_rings(region: Iterable[Coord]) -> List[List[Coord]]:
    """Return one inner ring walk per closed concave region of *region*.

    Each walk hugs the inside wall of one hole (the ring an initiation
    message started by the hole's south-west inner corner would travel).
    Walks are returned in deterministic order (sorted by their smallest
    cell).
    """
    region_set = set(region)
    holes = hole_cells(region_set)
    if not holes:
        return []
    # Group hole cells into connected cavities.
    remaining = set(holes)
    rings: List[List[Coord]] = []
    for seed in sorted(holes):
        if seed not in remaining:
            continue
        cavity = {seed}
        frontier = [seed]
        while frontier:
            x, y = frontier.pop()
            for neighbour in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if neighbour in remaining and neighbour not in cavity:
                    cavity.add(neighbour)
                    frontier.append(neighbour)
        remaining -= cavity
        # Start at the cavity's west-most, south-most cell that touches the
        # region, facing a direction whose right-hand side is the wall.
        candidates = sorted(
            cell
            for cell in cavity
            if any(n in region_set for n in four_neighbours(cell))
        )
        start = candidates[0]
        heading = _NORTH
        for direction in (_NORTH, _EAST, _SOUTH, _WEST):
            dx, dy = _DIRECTIONS[(direction + 1) % 4]
            if (start[0] + dx, start[1] + dy) in region_set:
                heading = direction
                break
        rings.append(_wall_follow(region_set, start, heading))
    return rings


def ring_length(region: Iterable[Coord]) -> int:
    """Return the number of hops of the clockwise boundary-ring walk."""
    return len(boundary_ring(region))
