"""Concave row and column sections (the paper's Definition 3).

    Given a component, for a horizontal (vertical) line where two end nodes
    on the line are inside the component, each section of the line that is
    outside the component is called a *concave row (column) section*.

Concave sections are the nodes a minimum faulty polygon must disable: the
second centralized solution in Section 3.1 of the paper fills them directly,
and the distributed solution notifies them from *notification end nodes*
discovered during the boundary-ring walk.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.types import Coord


@dataclass(frozen=True, order=True)
class Section:
    """A maximal run of non-member nodes between two member nodes on a line.

    ``axis`` is ``"row"`` for a horizontal section (fixed ``y``, varying
    ``x``) or ``"column"`` for a vertical section (fixed ``x``, varying
    ``y``).  ``start`` and ``stop`` are the inclusive varying-coordinate
    bounds of the gap itself (i.e. they index non-member nodes).
    """

    axis: str
    fixed: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.axis not in ("row", "column"):
            raise ValueError(f"axis must be 'row' or 'column', got {self.axis!r}")
        if self.stop < self.start:
            raise ValueError("section stop precedes start")

    @property
    def length(self) -> int:
        """Number of nodes in the section."""
        return self.stop - self.start + 1

    def nodes(self) -> List[Coord]:
        """Return the nodes covered by this section, in increasing order."""
        if self.axis == "row":
            return [(x, self.fixed) for x in range(self.start, self.stop + 1)]
        return [(self.fixed, y) for y in range(self.start, self.stop + 1)]

    def end_nodes(self) -> Tuple[Coord, Coord]:
        """Return the two *member* nodes that delimit the section.

        For a row section these are the component nodes immediately west and
        east of the gap; for a column section, immediately south and north.
        They are the nodes the paper's distributed solution uses as the two
        recorded ends of the concave section.
        """
        if self.axis == "row":
            return (self.start - 1, self.fixed), (self.stop + 1, self.fixed)
        return (self.fixed, self.start - 1), (self.fixed, self.stop + 1)

    def __contains__(self, node: Coord) -> bool:
        x, y = node
        if self.axis == "row":
            return y == self.fixed and self.start <= x <= self.stop
        return x == self.fixed and self.start <= y <= self.stop


def _gaps(values: Iterable[int]) -> List[Tuple[int, int]]:
    """Return maximal gaps (inclusive bounds) inside a sorted integer set."""
    ordered = sorted(set(values))
    gaps: List[Tuple[int, int]] = []
    for left, right in zip(ordered, ordered[1:]):
        if right - left > 1:
            gaps.append((left + 1, right - 1))
    return gaps


def concave_row_sections(region: Iterable[Coord]) -> List[Section]:
    """Return every concave row section of *region* (Definition 3)."""
    rows: Dict[int, List[int]] = defaultdict(list)
    for x, y in region:
        rows[y].append(x)
    sections: List[Section] = []
    for y in sorted(rows):
        for start, stop in _gaps(rows[y]):
            sections.append(Section("row", y, start, stop))
    return sections


def concave_column_sections(region: Iterable[Coord]) -> List[Section]:
    """Return every concave column section of *region* (Definition 3)."""
    cols: Dict[int, List[int]] = defaultdict(list)
    for x, y in region:
        cols[x].append(y)
    sections: List[Section] = []
    for x in sorted(cols):
        for start, stop in _gaps(cols[x]):
            sections.append(Section("column", x, start, stop))
    return sections


def concave_sections(region: Iterable[Coord]) -> List[Section]:
    """Return all concave row and column sections of *region*."""
    region_set = set(region)
    return concave_row_sections(region_set) + concave_column_sections(region_set)


def section_nodes(sections: Iterable[Section]) -> Set[Coord]:
    """Return the union of nodes covered by *sections*."""
    nodes: Set[Coord] = set()
    for section in sections:
        nodes.update(section.nodes())
    return nodes
