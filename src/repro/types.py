"""Shared type definitions for the reproduction package.

The paper addresses a node ``u`` in an ``n x n`` 2-D mesh by a pair
``(u_x, u_y)`` with ``u_x, u_y in {0, 1, ..., n-1}``.  Throughout this
package a node coordinate is a plain ``(x, y)`` tuple of ints:

* ``x`` is the column index (dimension X, increasing eastwards),
* ``y`` is the row index (dimension Y, increasing northwards).

Using plain tuples keeps the hot loops allocation-light and lets the
coordinates be used directly as dictionary keys and set members, which the
construction algorithms rely on heavily.
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple

#: A node coordinate ``(x, y)`` in the mesh.
Coord = Tuple[int, int]

#: A set or iterable of node coordinates.
CoordIterable = Iterable[Coord]


class NodeKind(enum.IntEnum):
    """Final classification of a node after a fault-region construction.

    The paper's "piling" diagrams use three colours:

    * ``FAULTY``  -- black: an actually faulty node,
    * ``DISABLED`` -- gray: a non-faulty node included in a fault region
      (it is *unsafe and disabled*: it does not participate in routing),
    * ``ENABLED`` -- white / not drawn: a non-faulty node outside every
      fault region (it may still carry the *unsafe* label but it is
      enabled and participates in routing).
    """

    ENABLED = 0
    DISABLED = 1
    FAULTY = 2


class SafetyLabel(enum.IntEnum):
    """Labelling scheme 1 status (the *growing* phase).

    All faulty nodes are ``UNSAFE``; a non-faulty node becomes ``UNSAFE``
    when it has a faulty-or-unsafe neighbour in *both* dimensions.
    """

    SAFE = 0
    UNSAFE = 1


class ActivityLabel(enum.IntEnum):
    """Labelling scheme 2 status (the *shrinking* phase).

    Faulty nodes are ``DISABLED`` forever.  Safe nodes are ``ENABLED``.
    An unsafe non-faulty node starts ``DISABLED`` and becomes ``ENABLED``
    once it has two or more enabled neighbours.
    """

    ENABLED = 0
    DISABLED = 1


class Side(enum.Enum):
    """Boundary side of a node with respect to a faulty component.

    A *north boundary node* sits immediately north of a component node,
    and so on.  A single node may hold several boundary sides at once
    (e.g. both north and south of a thin component).
    """

    EAST = "E"
    SOUTH = "S"
    WEST = "W"
    NORTH = "N"


class Orientation(enum.Enum):
    """Traversal orientation used when routing around a fault region."""

    CLOCKWISE = "clockwise"
    COUNTERCLOCKWISE = "counterclockwise"


class MessageType(enum.Enum):
    """Direction class of a message in extended e-cube routing.

    A message is initially ``WE`` (west-to-east) or ``EW`` (east-to-west)
    while it performs its row hops, and becomes ``SN`` (south-to-north) or
    ``NS`` (north-to-south) once it has finished its row hops and travels
    along the column towards its destination.
    """

    EW = "EW"
    WE = "WE"
    NS = "NS"
    SN = "SN"


class FaultRegionModel(enum.Enum):
    """The three fault-region models compared in the paper's evaluation."""

    FAULTY_BLOCK = "FB"
    SUB_MINIMUM_FAULTY_POLYGON = "FP"
    MINIMUM_FAULTY_POLYGON = "MFP"


def as_coord(value: CoordIterable | Coord) -> Coord:
    """Coerce a 2-sequence into a canonical ``(int, int)`` coordinate."""
    x, y = value  # type: ignore[misc]
    return (int(x), int(y))
