"""Link faults, mapped onto the node-fault model.

The paper (like most of the faulty-block literature) studies node faults and
notes that "link faults can be treated as node faults".  This module makes
that treatment concrete: a faulty link disables routing through it, and the
standard conservative mapping marks one of its two endpoints faulty so that
the rectangular-block / polygon constructions apply unchanged.

Two mappings are provided:

* :func:`links_to_node_faults` -- the conservative mapping used by the
  constructions: for every faulty link, the endpoint chosen by
  ``prefer_lower`` (lexicographically smaller by default) is treated as a
  faulty node.
* :func:`isolated_by_link_faults` -- nodes that lose *all* their links,
  which must be treated as faulty in any mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.mesh.topology import Topology
from repro.types import Coord

#: A link is an unordered pair of adjacent node coordinates.
Link = Tuple[Coord, Coord]


def canonical_link(a: Coord, b: Coord) -> Link:
    """Return the canonical (sorted) representation of the link ``{a, b}``."""
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class LinkFaultSet:
    """A set of faulty links on one topology."""

    topology: Topology
    links: FrozenSet[Link]

    def __post_init__(self) -> None:
        for a, b in self.links:
            if b not in self.topology.neighbours(a):
                raise ValueError(f"{(a, b)} is not a link of the topology")

    @property
    def num_links(self) -> int:
        """Number of faulty links."""
        return len(self.links)

    def is_faulty(self, a: Coord, b: Coord) -> bool:
        """Whether the link between *a* and *b* is faulty."""
        return canonical_link(a, b) in self.links

    def degraded_degree(self, node: Coord) -> int:
        """Number of healthy links *node* still has."""
        return sum(
            not self.is_faulty(node, neighbour)
            for neighbour in self.topology.neighbours(node)
        )


def make_link_fault_set(topology: Topology, links: Iterable[Sequence[Coord]]) -> LinkFaultSet:
    """Build a :class:`LinkFaultSet` from ``(a, b)`` pairs."""
    canonical = frozenset(canonical_link(tuple(a), tuple(b)) for a, b in links)
    return LinkFaultSet(topology=topology, links=canonical)


def isolated_by_link_faults(fault_set: LinkFaultSet) -> Set[Coord]:
    """Return the nodes whose every link is faulty (effectively dead)."""
    involved = {node for link in fault_set.links for node in link}
    return {node for node in involved if fault_set.degraded_degree(node) == 0}


def links_to_node_faults(
    fault_set: LinkFaultSet,
    existing_node_faults: Iterable[Coord] = (),
    prefer_lower: bool = True,
) -> List[Coord]:
    """Map link faults to node faults for the block/polygon constructions.

    For every faulty link whose endpoints are both still healthy, one
    endpoint is marked faulty (the lexicographically smaller one when
    ``prefer_lower``, the larger one otherwise).  Nodes already faulty --
    either given in *existing_node_faults* or chosen for an earlier link --
    absorb further faulty links at no extra cost, which keeps the mapping
    close to minimal for clustered link failures.
    """
    node_faults: Set[Coord] = set(existing_node_faults)
    node_faults |= isolated_by_link_faults(fault_set)
    for link in sorted(fault_set.links):
        a, b = link
        if a in node_faults or b in node_faults:
            continue
        chosen = min(a, b) if prefer_lower else max(a, b)
        node_faults.add(chosen)
    return sorted(node_faults)
