"""Random and clustered fault-distribution models.

Both models insert faults *sequentially*, exactly as described in Section 4
of the paper.  The clustered model maintains a per-node failure weight: all
nodes start with weight 1, and whenever a fault is inserted the weight of
each of its eight adjacent neighbours (Definition 2) is multiplied by the
cluster factor (2 in the paper).  The next fault is then drawn with
probability proportional to the weights of the remaining non-faulty nodes.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from repro.mesh.topology import Topology
from repro.types import Coord


class FaultModel(abc.ABC):
    """Base class for sequential fault-injection models."""

    name: str = "abstract"

    def __init__(self, topology: Topology, rng: Optional[np.random.Generator] = None):
        self.topology = topology
        self.rng = rng if rng is not None else np.random.default_rng()

    @abc.abstractmethod
    def draw_faults(self, count: int) -> List[Coord]:
        """Return *count* distinct fault positions, in insertion order."""

    def _check_count(self, count: int) -> None:
        if count < 0:
            raise ValueError("fault count must be non-negative")
        if count > self.topology.num_nodes:
            raise ValueError(
                f"cannot place {count} faults in a "
                f"{self.topology.width}x{self.topology.height} topology"
            )


class RandomFaultModel(FaultModel):
    """Uniformly random fault positions (without replacement)."""

    name = "random"

    def draw_faults(self, count: int) -> List[Coord]:
        self._check_count(count)
        total = self.topology.num_nodes
        chosen = self.rng.choice(total, size=count, replace=False)
        height = self.topology.height
        return [(int(idx) // height, int(idx) % height) for idx in chosen]


class ClusteredFaultModel(FaultModel):
    """Clustered fault distribution (adjacent failure rates are amplified).

    ``cluster_factor`` is the multiplier applied to the failure weight of the
    eight adjacent neighbours of every inserted fault; the paper uses 2
    ("the failure rate of its adjacent neighbors is doubled").  Larger
    factors produce denser clusters and are used by the cluster-factor
    ablation benchmark.
    """

    name = "clustered"

    def __init__(
        self,
        topology: Topology,
        rng: Optional[np.random.Generator] = None,
        cluster_factor: float = 2.0,
    ) -> None:
        super().__init__(topology, rng)
        if cluster_factor <= 0:
            raise ValueError("cluster_factor must be positive")
        self.cluster_factor = float(cluster_factor)

    def draw_faults(self, count: int) -> List[Coord]:
        self._check_count(count)
        width, height = self.topology.width, self.topology.height
        weights = np.ones((width, height), dtype=float)
        faulty = np.zeros((width, height), dtype=bool)
        faults: List[Coord] = []
        for _ in range(count):
            available = ~faulty
            probs = np.where(available, weights, 0.0).ravel()
            total = probs.sum()
            if total <= 0:  # pragma: no cover - defensive; cannot happen
                raise RuntimeError("no available node left for fault injection")
            probs /= total
            flat_index = int(self.rng.choice(width * height, p=probs))
            x, y = flat_index // height, flat_index % height
            faults.append((x, y))
            faulty[x, y] = True
            for nx, ny in self.topology.adjacent_nodes((x, y)):
                weights[nx, ny] *= self.cluster_factor
        return faults


def make_fault_model(
    name: str,
    topology: Topology,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> FaultModel:
    """Instantiate a fault model by name (``"random"`` or ``"clustered"``)."""
    normalised = name.strip().lower()
    if normalised == RandomFaultModel.name:
        return RandomFaultModel(topology, rng)
    if normalised == ClusteredFaultModel.name:
        return ClusteredFaultModel(topology, rng, **kwargs)
    raise ValueError(f"unknown fault model {name!r}; expected 'random' or 'clustered'")
