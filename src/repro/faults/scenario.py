"""Reproducible fault scenarios.

A :class:`FaultScenario` freezes everything the constructions and the
benchmark harness need about one experiment instance: the topology size, the
distribution model and its parameters, the seed, and the resulting fault
set.  Scenarios are cheap to generate and hashable enough to be cached by
the experiment runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.faults.models import make_fault_model
from repro.mesh.topology import Mesh2D, Topology, Torus2D
from repro.types import Coord


@dataclass(frozen=True)
class FaultScenario:
    """One concrete fault pattern on one topology.

    ``faults`` preserves the insertion order used by the sequential fault
    models; the constructions themselves only depend on the resulting set.
    ``link_faults`` optionally carries faulty links as ``(a, b)`` endpoint
    pairs; consumers (``MeshSession.from_scenario``) fold them into the
    node-fault set via the conservative mapping of
    :mod:`repro.faults.links`.
    """

    width: int
    height: int
    model: str
    seed: int
    faults: Tuple[Coord, ...]
    torus: bool = False
    cluster_factor: float = 2.0
    link_faults: Tuple[Tuple[Coord, Coord], ...] = ()

    @property
    def num_faults(self) -> int:
        """Number of injected faults."""
        return len(self.faults)

    @property
    def num_link_faults(self) -> int:
        """Number of injected link faults."""
        return len(self.link_faults)

    def fault_set(self) -> frozenset:
        """Return the fault positions as a frozenset."""
        return frozenset(self.faults)

    def topology(self) -> Topology:
        """Instantiate the topology this scenario was generated for."""
        if self.torus:
            return Torus2D(self.width, self.height)
        return Mesh2D(self.width, self.height)

    def describe(self) -> str:
        """One-line human-readable description used in experiment logs."""
        kind = "torus" if self.torus else "mesh"
        text = (
            f"{self.width}x{self.height} {kind}, {self.num_faults} faults, "
            f"{self.model} distribution, seed={self.seed}"
        )
        if self.link_faults:
            text += f", {self.num_link_faults} link faults"
        return text


def generate_scenario(
    num_faults: int,
    width: int = 100,
    height: Optional[int] = None,
    model: str = "random",
    seed: int = 0,
    torus: bool = False,
    cluster_factor: float = 2.0,
) -> FaultScenario:
    """Generate one reproducible fault scenario.

    Defaults mirror the paper's simulation setup: a 100 x 100 mesh with the
    requested number of sequentially inserted faults.
    """
    if height is None:
        height = width
    topology: Topology = Torus2D(width, height) if torus else Mesh2D(width, height)
    rng = np.random.default_rng(seed)
    kwargs = {"cluster_factor": cluster_factor} if model == "clustered" else {}
    fault_model = make_fault_model(model, topology, rng, **kwargs)
    faults = tuple(fault_model.draw_faults(num_faults))
    return FaultScenario(
        width=width,
        height=height,
        model=model,
        seed=seed,
        faults=faults,
        torus=torus,
        cluster_factor=cluster_factor,
    )


#: Stride between the seeds of consecutive trials at one sweep point.  A
#: large prime keeps per-trial seeds well separated (instead of the adjacent
#: integers an additive ``base_seed + trial`` scheme would produce).
TRIAL_SEED_STRIDE = 10_007

#: Stride between the seed blocks of consecutive fault counts.  Large enough
#: that the trials of one point never collide with another point's.
COUNT_SEED_STRIDE = 1_000_003


def derive_trial_seed(
    base_seed: int,
    count_index: int,
    trials: int,
    trial: int,
    stride: int = TRIAL_SEED_STRIDE,
) -> int:
    """Derive the deterministic seed of one trial of a sweep.

    Every (fault-count index, trial) pair maps to its own seed
    ``base_seed + count_index * COUNT_SEED_STRIDE + trial * stride``.  The
    formula deliberately does not depend on the total trial count, so
    re-running a sweep with more trials keeps the fault patterns of the
    existing trials stable (add-more-trials variance reduction).  Both
    :func:`sweep_scenarios` and :class:`repro.api.SweepExecutor` use this
    helper, so serial and parallel sweeps see identical fault patterns.
    """
    if trial < 0 or trial >= trials:
        raise ValueError(f"trial {trial} outside range(0, {trials})")
    return base_seed + count_index * COUNT_SEED_STRIDE + trial * stride


def sweep_scenarios(
    fault_counts: Sequence[int],
    trials: int,
    width: int = 100,
    height: Optional[int] = None,
    model: str = "random",
    base_seed: int = 0,
    torus: bool = False,
    cluster_factor: float = 2.0,
) -> Iterator[FaultScenario]:
    """Yield scenarios for a fault-count sweep with several trials per point.

    Seeds are derived deterministically from ``base_seed`` so that the same
    sweep re-runs identically, and so that the FB / FP / MFP constructions
    are always compared on exactly the same fault patterns (paired
    comparison, as in the paper).
    """
    if trials < 1:
        raise ValueError("trials must be at least 1")
    for count_index, num_faults in enumerate(fault_counts):
        for trial in range(trials):
            seed = derive_trial_seed(base_seed, count_index, trials, trial)
            yield generate_scenario(
                num_faults=num_faults,
                width=width,
                height=height,
                model=model,
                seed=seed,
                torus=torus,
                cluster_factor=cluster_factor,
            )
