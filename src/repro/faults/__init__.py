"""Fault-injection models.

The paper's evaluation inserts faults sequentially into a 100 x 100 mesh
under two distributions:

* the **random fault distribution**: every fault position is drawn uniformly
  among the remaining non-faulty nodes;
* the **clustered fault distribution**: all nodes start with the same failure
  rate, and after a fault ``(x, y)`` is inserted, the failure rate of its
  eight adjacent neighbours is doubled, so faults tend to form clusters.

Both distributions are implemented as deterministic generators driven by a
``numpy`` random generator, so every experiment is reproducible from a seed.
"""

from repro.faults.models import (
    ClusteredFaultModel,
    FaultModel,
    RandomFaultModel,
    make_fault_model,
)
from repro.faults.scenario import (
    TRIAL_SEED_STRIDE,
    FaultScenario,
    derive_trial_seed,
    generate_scenario,
    sweep_scenarios,
)
from repro.faults.links import (
    LinkFaultSet,
    isolated_by_link_faults,
    links_to_node_faults,
    make_link_fault_set,
)

__all__ = [
    "FaultModel",
    "RandomFaultModel",
    "ClusteredFaultModel",
    "make_fault_model",
    "FaultScenario",
    "generate_scenario",
    "sweep_scenarios",
    "derive_trial_seed",
    "TRIAL_SEED_STRIDE",
    "LinkFaultSet",
    "make_link_fault_set",
    "links_to_node_faults",
    "isolated_by_link_faults",
]
