"""Parallel sweep execution over fault scenarios.

The paper's evaluation repeats every construction over a fault-count sweep
(100..800 faults on a 100x100 mesh) with several independently seeded
trials per point.  Trials are embarrassingly parallel -- they share no
state beyond their deterministic seeds -- so :class:`SweepExecutor` fans
them out over a ``multiprocessing`` pool and reduces the per-trial
:class:`~repro.sim.metrics.ScenarioMetrics` into one record per sweep
point with a pluggable reducer.

Determinism: every trial's seed comes from
:func:`repro.faults.scenario.derive_trial_seed`, which spaces seeds by a
large prime stride, so a sweep produces identical metrics whether it runs
serially, across 2 workers or across 32 (asserted by
``tests/test_api_executor.py``).

``repro.sim.experiments.run_sweep`` is a thin wrapper over this class and
keeps its historical serial default (``workers=1``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.api.registry import (
    ConstructionSpec,
    _build_cmfp,
    _build_mfp,
    get_construction,
    register_construction,
)
from repro.faults.scenario import (
    FaultScenario,
    derive_trial_seed,
    generate_scenario,
)
from repro.routing.registry import (
    RouterOptions,
    RouterSpec,
    get_router,
    register_router,
)
from repro.routing.traffic import (
    TrafficOptions,
    TrafficSpec,
    get_traffic,
    register_traffic,
)

#: Construction keys run by default (the four models the paper compares;
#: CMFP is the centralized MFP re-reported with its emulation rounds).
DEFAULT_MODELS: Tuple[str, ...] = ("fb", "fp", "mfp", "cmfp", "dmfp")

#: Construction keys routing sweeps compare by default (the three models of
#: the routing ablation; CMFP/DMFP regions equal MFP's, so routing them
#: again would only repeat the MFP curve).
DEFAULT_ROUTING_MODELS: Tuple[str, ...] = ("fb", "fp", "mfp")

#: A reducer folds the trial metrics of one sweep point into one record.
Reducer = Callable[[int, str, List[Any]], Any]


@dataclass(frozen=True, slots=True)
class TrialSpec:
    """Everything one worker needs to run one trial (picklable)."""

    num_faults: int
    seed: int
    width: int = 100
    height: Optional[int] = None
    distribution: str = "random"
    torus: bool = False
    cluster_factor: float = 2.0
    models: Tuple[str, ...] = DEFAULT_MODELS
    include_rounds: bool = True
    #: The resolved specs of ``models``, carried so that workers spawned in
    #: a fresh interpreter (non-fork start methods) can re-register custom
    #: constructions; empty means "resolve from the worker's registry".
    specs: Tuple[ConstructionSpec, ...] = ()
    #: Position of this trial inside its sweep: index of the sweep point
    #: (fault count / load) and trial number within the point.  Purely
    #: bookkeeping -- the seed already encodes both -- but carrying them
    #: explicitly lets reductions key results by identity instead of by
    #: list position, so out-of-order (streamed) results reduce correctly.
    #: ``-1`` marks a hand-built spec outside any sweep.
    point_index: int = -1
    trial: int = -1


def collect_scenario_metrics(
    scenario: FaultScenario,
    models: Sequence[str] = DEFAULT_MODELS,
    include_rounds: bool = True,
):
    """Run the requested constructions on one scenario via the registry.

    ``mfp`` and ``cmfp`` share a single build (they are the same
    construction, re-reported under the CMFP label for the Figure 11 round
    comparison); *include_rounds* toggles its round emulation.
    """
    from repro.sim.metrics import ScenarioMetrics

    topology = scenario.topology()
    metrics = ScenarioMetrics(
        num_faults=scenario.num_faults,
        distribution=scenario.model,
        seed=scenario.seed,
    )
    shared_mfp = None
    mfp_spec = get_construction("mfp")
    sharable = (_build_mfp, _build_cmfp) if mfp_spec.builder is _build_mfp else ()
    for key in models:
        spec = get_construction(key)
        # The built-in MFP and CMFP rows describe the same construction, so
        # one build serves both (with *include_rounds* deciding whether the
        # round emulation runs, as the legacy harness did).  A spec replaced
        # through the registry opts out of the sharing and builds itself.
        if spec.builder in sharable:
            if shared_mfp is None:
                shared_mfp = mfp_spec.build(
                    scenario.faults, topology, compute_rounds=include_rounds
                )
            result = shared_mfp
        else:
            # Forward the round toggle to any spec whose options understand
            # it (e.g. a replacement MFP), so include_rounds=False keeps
            # skipping the emulation cost the flag exists to avoid.
            overrides = {}
            if any(
                f.name == "compute_rounds"
                for f in dataclasses.fields(spec.options_type)
            ):
                overrides["compute_rounds"] = include_rounds
            result = spec.build(scenario.faults, topology, **overrides)
        metrics.add(result.metrics(num_faults=scenario.num_faults, label=spec.label))
    return metrics


def _restore_worker_registry(specs: Tuple[ConstructionSpec, ...]) -> None:
    """Re-register the parent's construction specs in a worker process.

    A spawned worker starts from a fresh registry holding only the
    built-in models; re-register anything the parent plugged in.  The
    builder comparison is by reference: specs pickle their builders as
    module-level names, so built-ins resolve to the same function and
    are left alone (keeping their incremental builders registered).
    """
    for construction_spec in specs:
        try:
            registered = get_construction(construction_spec.key)
        except KeyError:
            register_construction(construction_spec)
        else:
            if registered.builder is not construction_spec.builder:
                register_construction(construction_spec, replace=True)


def run_trial(spec: TrialSpec):
    """Generate one scenario and collect its metrics (worker entry point)."""
    _restore_worker_registry(spec.specs)
    scenario = generate_scenario(
        num_faults=spec.num_faults,
        width=spec.width,
        height=spec.height,
        model=spec.distribution,
        seed=spec.seed,
        torus=spec.torus,
        cluster_factor=spec.cluster_factor,
    )
    return collect_scenario_metrics(
        scenario, models=spec.models, include_rounds=spec.include_rounds
    )


def _custom_fb_for_tests(faults, topology, options):
    """Module-level custom builder used by the worker-registry tests.

    Lives here (not in the test file) so that it pickles by reference in
    spawned workers the same way a real user-defined builder would.
    """
    from repro.core.faulty_block import build_faulty_blocks

    return build_faulty_blocks(faults, topology=topology)


def _custom_traffic_for_tests(context, count, rng, options):
    """Module-level custom generator used by the worker-registry tests."""
    from repro.routing import traffic as _traffic

    return _traffic._uniform(context, count, rng, options)


def sweep_point_reducer(num_faults: int, distribution: str, trials: List[Any]):
    """Default reducer: fold trial metrics into a ``SweepPoint`` average."""
    from repro.sim.metrics import SweepPoint

    point = SweepPoint(num_faults=num_faults, distribution=distribution)
    for metrics in trials:
        point.add(metrics)
    return point


# -- routing sweeps -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RoutingTrialSpec:
    """Everything one worker needs to run one routing trial (picklable).

    The scenario fields mirror :class:`TrialSpec`; the routing fields name
    the router / traffic registry keys and carry their typed (frozen,
    picklable) option sets.  The trial seed drives both the fault pattern
    and the traffic generation, so a spec fully determines its metrics.
    """

    num_faults: int
    seed: int
    width: int = 100
    height: Optional[int] = None
    distribution: str = "random"
    torus: bool = False
    cluster_factor: float = 2.0
    models: Tuple[str, ...] = DEFAULT_ROUTING_MODELS
    router: str = "extended-ecube"
    traffic: str = "uniform"
    messages: int = 500
    traffic_options: Optional[TrafficOptions] = None
    router_options: Optional[RouterOptions] = None
    #: Routing-engine registry key (``"scalar"`` / ``"batch"`` / ``"auto"``);
    #: ``None`` follows the worker's ambient default (normally ``auto``).
    engine: Optional[str] = None
    specs: Tuple[ConstructionSpec, ...] = ()
    #: The resolved router/traffic/engine specs, carried (like ``specs``)
    #: so that workers spawned in a fresh interpreter can re-register
    #: custom routers, workloads and engines; ``None`` means "resolve
    #: from the worker's registry".
    router_spec: Optional[RouterSpec] = None
    traffic_spec: Optional[TrafficSpec] = None
    engine_spec: Optional[Any] = None
    #: Sweep position (see :class:`TrialSpec`); ``-1`` = outside a sweep.
    point_index: int = -1
    trial: int = -1


def run_routing_trial(spec: RoutingTrialSpec):
    """Route one scenario's traffic over every model (worker entry point).

    All models inside a trial share the same fault pattern and traffic
    seed (paired comparison); the batches themselves still differ per
    model because each model's enabled endpoint set differs.
    """
    from repro.sim.metrics import RoutingMetrics, RoutingScenarioMetrics

    from repro.routing.engine import get_engine, register_engine

    _restore_worker_registry(spec.specs)
    # Same re-registration dance for the routing registries: a spawned
    # worker only knows the built-in routers/workloads/engines.  The
    # implementation comparison is by reference (builders/generators/
    # runners pickle as module-level names), so built-ins are left alone.
    for carried, getter, registrar, implementation in (
        (spec.router_spec, get_router, register_router, "builder"),
        (spec.traffic_spec, get_traffic, register_traffic, "generator"),
        (spec.engine_spec, get_engine, register_engine, "runner"),
    ):
        if carried is None:
            continue
        try:
            registered = getter(carried.key)
        except KeyError:
            registrar(carried)
        else:
            if getattr(registered, implementation) is not getattr(carried, implementation):
                registrar(carried, replace=True)
    # Imported lazily to keep the executor module import-light (sessions
    # pull in the whole construction stack).
    from repro.api.session import MeshSession

    scenario = generate_scenario(
        num_faults=spec.num_faults,
        width=spec.width,
        height=spec.height,
        model=spec.distribution,
        seed=spec.seed,
        torus=spec.torus,
        cluster_factor=spec.cluster_factor,
    )
    session = MeshSession.from_scenario(scenario)
    metrics = RoutingScenarioMetrics(
        num_faults=scenario.num_faults,
        distribution=scenario.model,
        seed=scenario.seed,
        traffic=get_traffic(spec.traffic).key,
        router=get_router(spec.router).key,
    )
    for key in spec.models:
        # Routing metrics never read the CMFP round counts: skip the
        # emulation on any construction that exposes the toggle (the
        # regions are identical either way).
        construction_spec = get_construction(key)
        construction_options = None
        if any(
            f.name == "compute_rounds"
            for f in dataclasses.fields(construction_spec.options_type)
        ):
            construction_options = construction_spec.make_options(
                None, {"compute_rounds": False}
            )
        stats = session.route(
            key,
            router=spec.router,
            traffic=spec.traffic,
            messages=spec.messages,
            seed=spec.seed,
            traffic_options=spec.traffic_options,
            router_options=spec.router_options,
            construction_options=construction_options,
            engine=spec.engine,
        )
        metrics.add(
            RoutingMetrics.from_stats(stats, num_faults=scenario.num_faults)
        )
    return metrics


def routing_point_reducer(num_faults: int, distribution: str, trials: List[Any]):
    """Default routing reducer: fold trials into a ``RoutingSweepPoint``."""
    from repro.sim.metrics import RoutingSweepPoint

    point = RoutingSweepPoint(num_faults=num_faults, distribution=distribution)
    for metrics in trials:
        point.add(metrics)
    return point


# -- latency-vs-load sweeps (network simulation) ------------------------------------

#: Construction keys latency sweeps compare by default (MFP only: the
#: latency axis is about contention, and the other models mostly shift the
#: enabled-node count; pass more keys for a paired model comparison).
DEFAULT_NETSIM_MODELS: Tuple[str, ...] = ("mfp",)


@dataclass(frozen=True, slots=True)
class NetSimTrialSpec:
    """Everything one worker needs to run one contention trial (picklable).

    The x axis of a latency sweep is the offered ``load`` (messages per
    node per cycle); the fault scenario is part of the configuration and
    stays fixed across the sweep.  The trial seed drives the fault
    pattern, the endpoint draws and the injection times, so a spec fully
    determines its metrics on any worker.
    """

    load: float
    seed: int
    num_faults: int = 0
    width: int = 16
    height: Optional[int] = None
    distribution: str = "clustered"
    torus: bool = False
    cluster_factor: float = 2.0
    models: Tuple[str, ...] = DEFAULT_NETSIM_MODELS
    router: str = "extended-ecube"
    traffic: str = "uniform"
    arrival: str = "poisson"
    cycles: int = 256
    drain_factor: int = 8
    messages: Optional[int] = None
    traffic_options: Optional[TrafficOptions] = None
    arrival_options: Optional[TrafficOptions] = None
    router_options: Optional[RouterOptions] = None
    #: Simulator registry key (``"array"`` / ``"scalar"`` / ``"auto"``);
    #: ``None`` follows the worker's ambient default (``REPRO_NETSIM``).
    sim: Optional[str] = None
    specs: Tuple[ConstructionSpec, ...] = ()
    router_spec: Optional[RouterSpec] = None
    traffic_spec: Optional[TrafficSpec] = None
    arrival_spec: Optional[TrafficSpec] = None
    sim_spec: Optional[Any] = None
    #: Sweep position (see :class:`TrialSpec`); ``-1`` = outside a sweep.
    point_index: int = -1
    trial: int = -1


def run_netsim_trial(spec: NetSimTrialSpec):
    """Simulate one load point over every model (worker entry point).

    All models inside a trial share the fault pattern and the traffic /
    injection seed (paired comparison).
    """
    from repro.netsim.registry import get_simulator, register_simulator
    from repro.sim.metrics import NetSimMetrics, NetSimScenarioMetrics

    _restore_worker_registry(spec.specs)
    for carried, getter, registrar, implementation in (
        (spec.router_spec, get_router, register_router, "builder"),
        (spec.traffic_spec, get_traffic, register_traffic, "generator"),
        (spec.arrival_spec, get_traffic, register_traffic, "generator"),
        (spec.sim_spec, get_simulator, register_simulator, "runner"),
    ):
        if carried is None:
            continue
        try:
            registered = getter(carried.key)
        except KeyError:
            registrar(carried)
        else:
            if getattr(registered, implementation) is not getattr(carried, implementation):
                registrar(carried, replace=True)
    from repro.api.session import MeshSession

    scenario = generate_scenario(
        num_faults=spec.num_faults,
        width=spec.width,
        height=spec.height,
        model=spec.distribution,
        seed=spec.seed,
        torus=spec.torus,
        cluster_factor=spec.cluster_factor,
    )
    session = MeshSession.from_scenario(scenario)
    metrics = NetSimScenarioMetrics(
        load=spec.load,
        num_faults=scenario.num_faults,
        distribution=scenario.model,
        seed=scenario.seed,
        traffic=get_traffic(spec.traffic).key,
        arrival=get_traffic(spec.arrival).key,
        router=get_router(spec.router).key,
    )
    for key in spec.models:
        construction_spec = get_construction(key)
        construction_options = None
        if any(
            f.name == "compute_rounds"
            for f in dataclasses.fields(construction_spec.options_type)
        ):
            construction_options = construction_spec.make_options(
                None, {"compute_rounds": False}
            )
        stats = session.simulate(
            key,
            traffic=spec.traffic,
            arrival=spec.arrival,
            load=spec.load,
            cycles=spec.cycles,
            messages=spec.messages,
            seed=spec.seed,
            router=spec.router,
            sim=spec.sim,
            drain_factor=spec.drain_factor,
            traffic_options=spec.traffic_options,
            arrival_options=spec.arrival_options,
            router_options=spec.router_options,
            construction_options=construction_options,
        )
        metrics.add(NetSimMetrics.from_stats(stats, num_faults=scenario.num_faults))
    return metrics


def latency_point_reducer(load: float, distribution: str, trials: List[Any]):
    """Default latency reducer: fold trials into a ``LatencySweepPoint``."""
    from repro.sim.metrics import LatencySweepPoint

    point = LatencySweepPoint(load=load, distribution=distribution)
    for metrics in trials:
        point.add(metrics)
    return point


class SweepExecutor:
    """Run construction sweeps, optionally fanned out over processes.

    Parameters
    ----------
    models:
        Registry keys of the constructions to run per trial (validated
        eagerly so typos fail before any work is dispatched).
    workers:
        Process count.  ``1`` (the default) runs serially in-process;
        ``None`` uses every available CPU.
    reducer:
        Per-point reduction ``reducer(num_faults, distribution, trial_metrics)``;
        defaults to :func:`sweep_point_reducer` (mean-aggregating
        ``SweepPoint``).  Runs in the parent process, so it does not need
        to be picklable.
    """

    def __init__(
        self,
        models: Sequence[str] = DEFAULT_MODELS,
        *,
        workers: Optional[int] = 1,
        reducer: Optional[Reducer] = None,
    ) -> None:
        self.models = tuple(get_construction(key).key for key in models)
        self.workers = workers
        self.reducer: Reducer = reducer if reducer is not None else sweep_point_reducer

    def _resolve_workers(self, num_tasks: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def plan(
        self,
        fault_counts: Sequence[int],
        trials: int,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        include_rounds: bool = True,
    ) -> List[TrialSpec]:
        """Expand a sweep into its deterministic per-trial specs."""
        return list(
            self.iter_plan(
                fault_counts,
                trials,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                include_rounds=include_rounds,
            )
        )

    def iter_plan(
        self,
        fault_counts: Sequence[int],
        trials: int,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        include_rounds: bool = True,
    ) -> Iterator[TrialSpec]:
        """Stream the sweep's per-trial specs without materializing them.

        The campaign runner plans 100k+-trial sweeps through this
        generator so the parent never holds the whole plan; arguments
        are validated eagerly (before the first ``next``).
        """
        if trials < 1:
            raise ValueError("trials must be at least 1")
        construction_specs = tuple(get_construction(key) for key in self.models)

        def generate() -> Iterator[TrialSpec]:
            for count_index, num_faults in enumerate(fault_counts):
                for trial in range(trials):
                    yield TrialSpec(
                        num_faults=num_faults,
                        seed=derive_trial_seed(base_seed, count_index, trials, trial),
                        width=width,
                        height=height,
                        distribution=distribution,
                        torus=torus,
                        cluster_factor=cluster_factor,
                        models=self.models,
                        include_rounds=include_rounds,
                        specs=construction_specs,
                        point_index=count_index,
                        trial=trial,
                    )

        return generate()

    def _map(self, runner: Callable[[Any], Any], specs: Sequence[Any]) -> List[Any]:
        """Run *runner* over the specs, serially or over a process pool."""
        workers = self._resolve_workers(len(specs))
        if workers <= 1:
            return [runner(spec) for spec in specs]
        # fork shares the already-imported package with the workers; fall
        # back to the platform default where fork is unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            return pool.map(runner, specs)

    @staticmethod
    def _reduce_by_identity(
        axis: Sequence[Any],
        distribution: str,
        specs: Sequence[Any],
        results: Sequence[Any],
        reducer: Callable[[Any, str, List[Any]], Any],
    ) -> List[Any]:
        """Reduce ``(spec, result)`` pairs into one record per sweep point.

        Results are keyed by each spec's carried ``(point_index, trial)``
        identity rather than by list position, so any ordering of the
        result stream -- ``pool.map``, out-of-order streaming, a resumed
        campaign -- reduces to the same records.  Trials fold in trial
        order within each point, which keeps the fold bit-identical to
        the in-order serial run.
        """
        slots: Dict[int, Dict[int, Any]] = {}
        for spec, result in zip(specs, results):
            slots.setdefault(spec.point_index, {})[spec.trial] = result
        points: List[Any] = []
        for point_index, x in enumerate(axis):
            by_trial = slots.get(point_index, {})
            chunk = [by_trial[trial] for trial in sorted(by_trial)]
            points.append(reducer(x, distribution, chunk))
        return points

    def map_trials(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Run the trial specs, serially or over a process pool."""
        return self._map(run_trial, specs)

    def map_routing_trials(self, specs: Sequence[RoutingTrialSpec]) -> List[Any]:
        """Run the routing trial specs, serially or over a process pool."""
        return self._map(run_routing_trial, specs)

    def map_netsim_trials(self, specs: Sequence[NetSimTrialSpec]) -> List[Any]:
        """Run the contention trial specs, serially or over a process pool."""
        return self._map(run_netsim_trial, specs)

    def run(
        self,
        fault_counts: Sequence[int],
        trials: int = 3,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        include_rounds: bool = True,
        campaign: Optional[Any] = None,
    ) -> List[Any]:
        """Run the sweep and return one reduced record per fault count.

        With the default reducer the return value is a list of
        ``SweepPoint`` -- exactly what the figure-series builders consume.

        Pass ``campaign=<directory>`` to route the sweep through the
        resumable campaign runner: trials stream to a content-addressed
        on-disk store under that directory, completed trials are skipped
        on re-runs, and the reduced points are bit-identical to the
        in-memory path.
        """
        # Materialise once: fault_counts is iterated for planning and again
        # for reduction, which would silently drain a generator input.
        fault_counts = list(fault_counts)
        if campaign is not None:
            from repro.campaign import CampaignRunner, CampaignSpec

            spec = CampaignSpec.construction(
                fault_counts=fault_counts,
                trials=trials,
                models=self.models,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                include_rounds=include_rounds,
            )
            runner = CampaignRunner(spec, campaign, workers=self.workers)
            runner.run()
            return runner.sweep_points(reducer=self.reducer)
        specs = self.plan(
            fault_counts,
            trials,
            width=width,
            height=height,
            distribution=distribution,
            base_seed=base_seed,
            torus=torus,
            cluster_factor=cluster_factor,
            include_rounds=include_rounds,
        )
        results = self.map_trials(specs)
        return self._reduce_by_identity(
            fault_counts, distribution, specs, results, self.reducer
        )

    # -- routing sweeps --------------------------------------------------------------

    def plan_routing(
        self,
        fault_counts: Sequence[int],
        trials: int,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        messages: int = 500,
        traffic_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        engine: Optional[str] = None,
    ) -> List[RoutingTrialSpec]:
        """Expand a routing sweep into its deterministic per-trial specs.

        The router, traffic and engine keys are validated eagerly (typos
        fail before any work is dispatched); seeds come from the same
        :func:`~repro.faults.scenario.derive_trial_seed` scheme as the
        construction sweeps, so a routing sweep is bit-identical whether
        it runs serially or over any number of workers (the scalar and
        batch engines produce identical statistics, so the engine choice
        never affects the sweep results either).
        """
        return list(
            self.iter_plan_routing(
                fault_counts,
                trials,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                router=router,
                traffic=traffic,
                messages=messages,
                traffic_options=traffic_options,
                router_options=router_options,
                engine=engine,
            )
        )

    def iter_plan_routing(
        self,
        fault_counts: Sequence[int],
        trials: int,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        messages: int = 500,
        traffic_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        engine: Optional[str] = None,
    ) -> Iterator[RoutingTrialSpec]:
        """Stream a routing sweep's per-trial specs (see :meth:`iter_plan`)."""
        if trials < 1:
            raise ValueError("trials must be at least 1")
        router_spec = get_router(router)
        traffic_spec = get_traffic(traffic)
        router, traffic = router_spec.key, traffic_spec.key
        engine_spec = None
        if engine is not None:
            from repro._registry import SpecRegistry
            from repro.routing.engine import get_engine

            engine = SpecRegistry.normalise(engine)
            if engine != "auto":
                engine_spec = get_engine(engine)
                engine = engine_spec.key
        construction_specs = tuple(get_construction(key) for key in self.models)

        def generate() -> Iterator[RoutingTrialSpec]:
            for count_index, num_faults in enumerate(fault_counts):
                for trial in range(trials):
                    yield RoutingTrialSpec(
                        num_faults=num_faults,
                        seed=derive_trial_seed(base_seed, count_index, trials, trial),
                        width=width,
                        height=height,
                        distribution=distribution,
                        torus=torus,
                        cluster_factor=cluster_factor,
                        models=self.models,
                        router=router,
                        traffic=traffic,
                        messages=messages,
                        traffic_options=traffic_options,
                        router_options=router_options,
                        engine=engine,
                        specs=construction_specs,
                        router_spec=router_spec,
                        traffic_spec=traffic_spec,
                        engine_spec=engine_spec,
                        point_index=count_index,
                        trial=trial,
                    )

        return generate()

    def run_routing(
        self,
        fault_counts: Sequence[int],
        trials: int = 3,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        messages: int = 500,
        traffic_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        engine: Optional[str] = None,
        reducer: Optional[Reducer] = None,
        campaign: Optional[Any] = None,
    ) -> List[Any]:
        """Run a routing sweep and return one reduced record per fault count.

        Every trial builds this executor's models on one generated fault
        pattern and routes the same seeded traffic batch over each
        (paired comparison).  With the default reducer the return value is
        a list of :class:`~repro.sim.metrics.RoutingSweepPoint`; pass
        *reducer* for a custom per-point reduction (it runs in the parent
        process, so it does not need to be picklable).  ``campaign=``
        routes the sweep through the resumable campaign store (see
        :meth:`run`).
        """
        fault_counts = list(fault_counts)
        point_reducer: Reducer = reducer if reducer is not None else routing_point_reducer
        if campaign is not None:
            from repro.campaign import CampaignRunner, CampaignSpec

            spec = CampaignSpec.routing(
                fault_counts=fault_counts,
                trials=trials,
                models=self.models,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                router=router,
                traffic=traffic,
                messages=messages,
                traffic_options=traffic_options,
                router_options=router_options,
                engine=engine,
            )
            runner = CampaignRunner(spec, campaign, workers=self.workers)
            runner.run()
            return runner.sweep_points(reducer=point_reducer)
        specs = self.plan_routing(
            fault_counts,
            trials,
            width=width,
            height=height,
            distribution=distribution,
            base_seed=base_seed,
            torus=torus,
            cluster_factor=cluster_factor,
            router=router,
            traffic=traffic,
            messages=messages,
            traffic_options=traffic_options,
            router_options=router_options,
            engine=engine,
        )
        results = self.map_routing_trials(specs)
        return self._reduce_by_identity(
            fault_counts, distribution, specs, results, point_reducer
        )

    # -- latency-vs-load sweeps ------------------------------------------------------

    def plan_latency(
        self,
        loads: Sequence[float],
        trials: int,
        *,
        num_faults: int = 0,
        width: int = 16,
        height: Optional[int] = None,
        distribution: str = "clustered",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        arrival: str = "poisson",
        cycles: int = 256,
        drain_factor: int = 8,
        messages: Optional[int] = None,
        traffic_options: Optional[TrafficOptions] = None,
        arrival_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        sim: Optional[str] = None,
    ) -> List[NetSimTrialSpec]:
        """Expand a latency-vs-load sweep into its deterministic trial specs.

        The x axis is the offered *loads* (messages per node per cycle);
        the fault configuration is fixed across the sweep.  Registry keys
        are validated eagerly and the resolved specs carried for spawned
        workers, mirroring :meth:`plan_routing`; seeds come from the same
        :func:`~repro.faults.scenario.derive_trial_seed` scheme (indexed
        by load position), so the sweep is bit-identical at any worker
        count -- and under either simulator.
        """
        return list(
            self.iter_plan_latency(
                loads,
                trials,
                num_faults=num_faults,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                router=router,
                traffic=traffic,
                arrival=arrival,
                cycles=cycles,
                drain_factor=drain_factor,
                messages=messages,
                traffic_options=traffic_options,
                arrival_options=arrival_options,
                router_options=router_options,
                sim=sim,
            )
        )

    def iter_plan_latency(
        self,
        loads: Sequence[float],
        trials: int,
        *,
        num_faults: int = 0,
        width: int = 16,
        height: Optional[int] = None,
        distribution: str = "clustered",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        arrival: str = "poisson",
        cycles: int = 256,
        drain_factor: int = 8,
        messages: Optional[int] = None,
        traffic_options: Optional[TrafficOptions] = None,
        arrival_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        sim: Optional[str] = None,
    ) -> Iterator[NetSimTrialSpec]:
        """Stream a latency sweep's per-trial specs (see :meth:`iter_plan`)."""
        if trials < 1:
            raise ValueError("trials must be at least 1")
        from repro.netsim.registry import get_simulator

        router_spec = get_router(router)
        traffic_spec = get_traffic(traffic)
        arrival_spec = get_traffic(arrival)
        sim_spec = None
        if sim is not None:
            from repro._registry import SpecRegistry

            sim = SpecRegistry.normalise(sim)
            if sim != "auto":
                sim_spec = get_simulator(sim)
                sim = sim_spec.key
        construction_specs = tuple(get_construction(key) for key in self.models)

        def generate() -> Iterator[NetSimTrialSpec]:
            for load_index, load in enumerate(loads):
                for trial in range(trials):
                    yield NetSimTrialSpec(
                        load=float(load),
                        seed=derive_trial_seed(base_seed, load_index, trials, trial),
                        num_faults=num_faults,
                        width=width,
                        height=height,
                        distribution=distribution,
                        torus=torus,
                        cluster_factor=cluster_factor,
                        models=self.models,
                        router=router_spec.key,
                        traffic=traffic_spec.key,
                        arrival=arrival_spec.key,
                        cycles=cycles,
                        drain_factor=drain_factor,
                        messages=messages,
                        traffic_options=traffic_options,
                        arrival_options=arrival_options,
                        router_options=router_options,
                        sim=sim,
                        specs=construction_specs,
                        router_spec=router_spec,
                        traffic_spec=traffic_spec,
                        arrival_spec=arrival_spec,
                        sim_spec=sim_spec,
                        point_index=load_index,
                        trial=trial,
                    )

        return generate()

    def run_latency(
        self,
        loads: Sequence[float],
        trials: int = 2,
        *,
        num_faults: int = 0,
        width: int = 16,
        height: Optional[int] = None,
        distribution: str = "clustered",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        router: str = "extended-ecube",
        traffic: str = "uniform",
        arrival: str = "poisson",
        cycles: int = 256,
        drain_factor: int = 8,
        messages: Optional[int] = None,
        traffic_options: Optional[TrafficOptions] = None,
        arrival_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        sim: Optional[str] = None,
        reducer: Optional[Callable[[float, str, List[Any]], Any]] = None,
        campaign: Optional[Any] = None,
    ) -> List[Any]:
        """Run a latency-vs-load sweep: one reduced record per offered load.

        Every trial generates one fault pattern at ``num_faults``, builds
        this executor's models on it and runs one open-loop contention
        simulation per model (paired comparison).  With the default
        reducer the return value is a list of
        :class:`~repro.sim.metrics.LatencySweepPoint` -- the
        latency-throughput curve of the classic interconnect evaluation.
        ``campaign=`` routes the sweep through the resumable campaign
        store (see :meth:`run`).
        """
        loads = [float(load) for load in loads]
        point_reducer = reducer if reducer is not None else latency_point_reducer
        if campaign is not None:
            from repro.campaign import CampaignRunner, CampaignSpec

            spec = CampaignSpec.latency(
                loads=loads,
                trials=trials,
                models=self.models,
                num_faults=num_faults,
                width=width,
                height=height,
                distribution=distribution,
                base_seed=base_seed,
                torus=torus,
                cluster_factor=cluster_factor,
                router=router,
                traffic=traffic,
                arrival=arrival,
                cycles=cycles,
                drain_factor=drain_factor,
                messages=messages,
                traffic_options=traffic_options,
                arrival_options=arrival_options,
                router_options=router_options,
                sim=sim,
            )
            runner = CampaignRunner(spec, campaign, workers=self.workers)
            runner.run()
            return runner.sweep_points(reducer=point_reducer)
        specs = self.plan_latency(
            loads,
            trials,
            num_faults=num_faults,
            width=width,
            height=height,
            distribution=distribution,
            base_seed=base_seed,
            torus=torus,
            cluster_factor=cluster_factor,
            router=router,
            traffic=traffic,
            arrival=arrival,
            cycles=cycles,
            drain_factor=drain_factor,
            messages=messages,
            traffic_options=traffic_options,
            arrival_options=arrival_options,
            router_options=router_options,
            sim=sim,
        )
        results = self.map_netsim_trials(specs)
        return self._reduce_by_identity(
            loads, distribution, specs, results, point_reducer
        )
