"""Parallel sweep execution over fault scenarios.

The paper's evaluation repeats every construction over a fault-count sweep
(100..800 faults on a 100x100 mesh) with several independently seeded
trials per point.  Trials are embarrassingly parallel -- they share no
state beyond their deterministic seeds -- so :class:`SweepExecutor` fans
them out over a ``multiprocessing`` pool and reduces the per-trial
:class:`~repro.sim.metrics.ScenarioMetrics` into one record per sweep
point with a pluggable reducer.

Determinism: every trial's seed comes from
:func:`repro.faults.scenario.derive_trial_seed`, which spaces seeds by a
large prime stride, so a sweep produces identical metrics whether it runs
serially, across 2 workers or across 32 (asserted by
``tests/test_api_executor.py``).

``repro.sim.experiments.run_sweep`` is a thin wrapper over this class and
keeps its historical serial default (``workers=1``).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.api.registry import (
    ConstructionSpec,
    _build_cmfp,
    _build_mfp,
    get_construction,
    register_construction,
)
from repro.faults.scenario import (
    FaultScenario,
    derive_trial_seed,
    generate_scenario,
)

#: Construction keys run by default (the four models the paper compares;
#: CMFP is the centralized MFP re-reported with its emulation rounds).
DEFAULT_MODELS: Tuple[str, ...] = ("fb", "fp", "mfp", "cmfp", "dmfp")

#: A reducer folds the trial metrics of one sweep point into one record.
Reducer = Callable[[int, str, List[Any]], Any]


@dataclass(frozen=True)
class TrialSpec:
    """Everything one worker needs to run one trial (picklable)."""

    num_faults: int
    seed: int
    width: int = 100
    height: Optional[int] = None
    distribution: str = "random"
    torus: bool = False
    cluster_factor: float = 2.0
    models: Tuple[str, ...] = DEFAULT_MODELS
    include_rounds: bool = True
    #: The resolved specs of ``models``, carried so that workers spawned in
    #: a fresh interpreter (non-fork start methods) can re-register custom
    #: constructions; empty means "resolve from the worker's registry".
    specs: Tuple[ConstructionSpec, ...] = ()


def collect_scenario_metrics(
    scenario: FaultScenario,
    models: Sequence[str] = DEFAULT_MODELS,
    include_rounds: bool = True,
):
    """Run the requested constructions on one scenario via the registry.

    ``mfp`` and ``cmfp`` share a single build (they are the same
    construction, re-reported under the CMFP label for the Figure 11 round
    comparison); *include_rounds* toggles its round emulation.
    """
    from repro.sim.metrics import ScenarioMetrics

    topology = scenario.topology()
    metrics = ScenarioMetrics(
        num_faults=scenario.num_faults,
        distribution=scenario.model,
        seed=scenario.seed,
    )
    shared_mfp = None
    mfp_spec = get_construction("mfp")
    sharable = (_build_mfp, _build_cmfp) if mfp_spec.builder is _build_mfp else ()
    for key in models:
        spec = get_construction(key)
        # The built-in MFP and CMFP rows describe the same construction, so
        # one build serves both (with *include_rounds* deciding whether the
        # round emulation runs, as the legacy harness did).  A spec replaced
        # through the registry opts out of the sharing and builds itself.
        if spec.builder in sharable:
            if shared_mfp is None:
                shared_mfp = mfp_spec.build(
                    scenario.faults, topology, compute_rounds=include_rounds
                )
            result = shared_mfp
        else:
            # Forward the round toggle to any spec whose options understand
            # it (e.g. a replacement MFP), so include_rounds=False keeps
            # skipping the emulation cost the flag exists to avoid.
            overrides = {}
            if any(
                f.name == "compute_rounds"
                for f in dataclasses.fields(spec.options_type)
            ):
                overrides["compute_rounds"] = include_rounds
            result = spec.build(scenario.faults, topology, **overrides)
        metrics.add(result.metrics(num_faults=scenario.num_faults, label=spec.label))
    return metrics


def run_trial(spec: TrialSpec):
    """Generate one scenario and collect its metrics (worker entry point)."""
    for construction_spec in spec.specs:
        # A spawned worker starts from a fresh registry holding only the
        # built-in models; re-register anything the parent plugged in.  The
        # builder comparison is by reference: specs pickle their builders as
        # module-level names, so built-ins resolve to the same function and
        # are left alone (keeping their incremental builders registered).
        try:
            registered = get_construction(construction_spec.key)
        except KeyError:
            register_construction(construction_spec)
        else:
            if registered.builder is not construction_spec.builder:
                register_construction(construction_spec, replace=True)
    scenario = generate_scenario(
        num_faults=spec.num_faults,
        width=spec.width,
        height=spec.height,
        model=spec.distribution,
        seed=spec.seed,
        torus=spec.torus,
        cluster_factor=spec.cluster_factor,
    )
    return collect_scenario_metrics(
        scenario, models=spec.models, include_rounds=spec.include_rounds
    )


def _custom_fb_for_tests(faults, topology, options):
    """Module-level custom builder used by the worker-registry tests.

    Lives here (not in the test file) so that it pickles by reference in
    spawned workers the same way a real user-defined builder would.
    """
    from repro.core.faulty_block import build_faulty_blocks

    return build_faulty_blocks(faults, topology=topology)


def sweep_point_reducer(num_faults: int, distribution: str, trials: List[Any]):
    """Default reducer: fold trial metrics into a ``SweepPoint`` average."""
    from repro.sim.metrics import SweepPoint

    point = SweepPoint(num_faults=num_faults, distribution=distribution)
    for metrics in trials:
        point.add(metrics)
    return point


class SweepExecutor:
    """Run construction sweeps, optionally fanned out over processes.

    Parameters
    ----------
    models:
        Registry keys of the constructions to run per trial (validated
        eagerly so typos fail before any work is dispatched).
    workers:
        Process count.  ``1`` (the default) runs serially in-process;
        ``None`` uses every available CPU.
    reducer:
        Per-point reduction ``reducer(num_faults, distribution, trial_metrics)``;
        defaults to :func:`sweep_point_reducer` (mean-aggregating
        ``SweepPoint``).  Runs in the parent process, so it does not need
        to be picklable.
    """

    def __init__(
        self,
        models: Sequence[str] = DEFAULT_MODELS,
        *,
        workers: Optional[int] = 1,
        reducer: Optional[Reducer] = None,
    ) -> None:
        self.models = tuple(get_construction(key).key for key in models)
        self.workers = workers
        self.reducer: Reducer = reducer if reducer is not None else sweep_point_reducer

    def _resolve_workers(self, num_tasks: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, num_tasks))

    def plan(
        self,
        fault_counts: Sequence[int],
        trials: int,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        include_rounds: bool = True,
    ) -> List[TrialSpec]:
        """Expand a sweep into its deterministic per-trial specs."""
        if trials < 1:
            raise ValueError("trials must be at least 1")
        construction_specs = tuple(get_construction(key) for key in self.models)
        specs: List[TrialSpec] = []
        for count_index, num_faults in enumerate(fault_counts):
            for trial in range(trials):
                specs.append(
                    TrialSpec(
                        num_faults=num_faults,
                        seed=derive_trial_seed(base_seed, count_index, trials, trial),
                        width=width,
                        height=height,
                        distribution=distribution,
                        torus=torus,
                        cluster_factor=cluster_factor,
                        models=self.models,
                        include_rounds=include_rounds,
                        specs=construction_specs,
                    )
                )
        return specs

    def map_trials(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Run the trial specs, serially or over a process pool."""
        workers = self._resolve_workers(len(specs))
        if workers <= 1:
            return [run_trial(spec) for spec in specs]
        # fork shares the already-imported package with the workers; fall
        # back to the platform default where fork is unavailable.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            return pool.map(run_trial, specs)

    def run(
        self,
        fault_counts: Sequence[int],
        trials: int = 3,
        *,
        width: int = 100,
        height: Optional[int] = None,
        distribution: str = "random",
        base_seed: int = 0,
        torus: bool = False,
        cluster_factor: float = 2.0,
        include_rounds: bool = True,
    ) -> List[Any]:
        """Run the sweep and return one reduced record per fault count.

        With the default reducer the return value is a list of
        ``SweepPoint`` -- exactly what the figure-series builders consume.
        """
        # Materialise once: fault_counts is iterated for planning and again
        # for reduction, which would silently drain a generator input.
        fault_counts = list(fault_counts)
        specs = self.plan(
            fault_counts,
            trials,
            width=width,
            height=height,
            distribution=distribution,
            base_seed=base_seed,
            torus=torus,
            cluster_factor=cluster_factor,
            include_rounds=include_rounds,
        )
        results = self.map_trials(specs)
        points: List[Any] = []
        for count_index, num_faults in enumerate(fault_counts):
            chunk = results[count_index * trials : (count_index + 1) * trials]
            points.append(self.reducer(num_faults, distribution, chunk))
        return points
