"""Pluggable registry of fault-region constructions.

Every fault-region model of the paper (and any future model) registers a
:class:`ConstructionSpec` under a short string key:

========  =====  ==========================================================
key       label  construction
========  =====  ==========================================================
``fb``    FB     rectangular faulty blocks (labelling scheme 1)
``fp``    FP     sub-minimum faulty polygons (Wu, IPDPS 2001)
``mfp``   MFP    minimum faulty polygons (centralized, this paper)
``cmfp``  CMFP   minimum faulty polygons with the round emulation forced on
``dmfp``  DMFP   minimum faulty polygons, distributed construction
========  =====  ==========================================================

All specs share one uniform protocol::

    result = get_construction("mfp").build(scenario)           # FaultScenario
    result = get_construction("fb").build(faults, topology)    # raw fault set

with per-model knobs carried by typed, frozen option dataclasses
(:class:`MinimumPolygonOptions` etc.) so that option sets are hashable and
can key result caches.  Every build returns a :class:`ConstructionResult`
with the same fields regardless of model, which is what the
:class:`repro.api.MeshSession` cache, the :class:`repro.api.SweepExecutor`
and the CLI operate on.

The registry is open: call :func:`register_construction` with your own spec
to plug a new model into the session layer, the sweep executor and the CLI
at once.  Models that can exploit the session's incremental component
tracking additionally register an incremental builder via
:func:`register_incremental` (see :mod:`repro.api.session`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro._registry import SpecRegistry, make_spec_options
from repro.core.faulty_block import build_faulty_blocks
from repro.core.mfp import (
    build_minimum_polygons,
    build_minimum_polygons_via_labelling,
)
from repro.core.regions import FaultRegion
from repro.core.sub_minimum import build_sub_minimum_polygons
from repro.distributed.dmfp import build_minimum_polygons_distributed
from repro.faults.scenario import FaultScenario
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord


# -- typed options ------------------------------------------------------------------


@dataclass(frozen=True)
class ConstructionOptions:
    """Base class for per-construction options.

    Options are frozen dataclasses so that a concrete option set is hashable
    and can key the per-session result cache.
    """

    def replace(self, **changes: Any) -> "ConstructionOptions":
        """Return a copy with *changes* applied."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class FaultyBlockOptions(ConstructionOptions):
    """Options of the rectangular faulty block construction (none yet)."""


@dataclass(frozen=True)
class SubMinimumOptions(ConstructionOptions):
    """Options of the sub-minimum polygon construction (none yet)."""


@dataclass(frozen=True)
class MinimumPolygonOptions(ConstructionOptions):
    """Options of the centralized minimum polygon construction.

    ``compute_rounds`` toggles the per-component labelling emulation that
    produces the CMFP round counts of Figure 11 (skippable for the Figure
    9/10 sweeps); ``via_labelling`` selects centralized Solution A instead
    of the default hull fill (Solution B).
    """

    compute_rounds: bool = True
    via_labelling: bool = False


@dataclass(frozen=True)
class CentralizedOptions(ConstructionOptions):
    """Options of the CMFP construction.

    CMFP is the centralized MFP with the round emulation always on (that is
    its purpose in Figure 11), so it deliberately exposes no knobs; use the
    ``mfp`` key for a configurable centralized build.
    """


@dataclass(frozen=True)
class DistributedOptions(ConstructionOptions):
    """Options of the distributed minimum polygon construction (none yet)."""


# -- uniform result -----------------------------------------------------------------


@dataclass
class ConstructionResult:
    """Uniform wrapper around one construction run.

    Whatever the model, the session layer and the executors only need the
    status grid, the final regions and the round count; ``raw`` keeps the
    model-specific construction object (e.g. the per-component polygons of
    the MFP construction) for callers that want the details.
    """

    key: str
    label: str
    grid: StatusGrid
    regions: List[FaultRegion]
    rounds: int
    raw: Any
    options: ConstructionOptions
    #: Cell -> region-index grid (``-1`` outside every region) when the
    #: construction produced one; gives routers O(1) region membership.
    region_index: Any = dataclasses.field(default=None, compare=False, repr=False)

    @property
    def num_regions(self) -> int:
        """Number of final fault regions."""
        return len(self.regions)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the regions (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average region size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    def disabled_set(self) -> set:
        """Every node belonging to a fault region (faulty included)."""
        return self.grid.disabled_set()

    def metrics(self, num_faults: Optional[int] = None, label: Optional[str] = None):
        """Extract the figure scalars as a ``ConstructionMetrics`` record."""
        # Imported lazily: repro.sim imports this module at import time.
        from repro.sim.metrics import ConstructionMetrics

        return ConstructionMetrics(
            model=label if label is not None else self.label,
            num_faults=self.grid.num_faulty if num_faults is None else num_faults,
            num_regions=self.num_regions,
            disabled_nonfaulty=self.num_disabled_nonfaulty,
            mean_region_size=self.mean_region_size,
            rounds=self.rounds,
        )


# -- the spec -----------------------------------------------------------------------

#: A builder takes the fault set, the topology and a (validated) option set
#: and returns the model-specific construction object.
Builder = Callable[[Sequence[Coord], Topology, ConstructionOptions], Any]

ScenarioOrFaults = Union[FaultScenario, Sequence[Coord]]


def resolve_inputs(
    scenario: ScenarioOrFaults,
    topology: Optional[Topology] = None,
) -> Tuple[Tuple[Coord, ...], Topology]:
    """Normalise the (scenario | faults, topology) call styles.

    Accepts either a :class:`FaultScenario` (whose topology is used unless
    an explicit one is given) or a plain fault sequence; a missing topology
    defaults to the paper's 100x100 mesh.
    """
    if isinstance(scenario, FaultScenario):
        faults = tuple(scenario.faults)
        if topology is None:
            topology = scenario.topology()
    else:
        faults = tuple(scenario)
        if topology is None:
            topology = Mesh2D(100, 100)
    return faults, topology


@dataclass(frozen=True)
class ConstructionSpec:
    """One registered fault-region construction.

    ``builder`` implements the model; ``options_type`` declares its typed
    option dataclass; ``supports_incremental`` advertises that an
    incremental builder is registered for :class:`repro.api.MeshSession`.
    """

    key: str
    label: str
    description: str
    builder: Builder
    options_type: type = ConstructionOptions
    aliases: Tuple[str, ...] = ()
    supports_incremental: bool = False

    def make_options(
        self,
        options: Optional[ConstructionOptions] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> ConstructionOptions:
        """Validate/construct the option set for one build call."""
        return make_spec_options("construction", self, options, overrides)

    def wrap(self, raw: Any, options: ConstructionOptions) -> ConstructionResult:
        """Wrap a model-specific construction object as a uniform result."""
        return ConstructionResult(
            key=self.key,
            label=self.label,
            grid=raw.grid,
            regions=raw.regions,
            rounds=raw.rounds,
            raw=raw,
            options=options,
            region_index=getattr(raw, "region_index", None),
        )

    def build(
        self,
        scenario: ScenarioOrFaults,
        topology: Optional[Topology] = None,
        *,
        options: Optional[ConstructionOptions] = None,
        **overrides: Any,
    ) -> ConstructionResult:
        """Run the construction with the uniform signature.

        *scenario* is a :class:`FaultScenario` or a fault sequence; keyword
        *overrides* are field overrides of the spec's option type (e.g.
        ``compute_rounds=False`` for ``mfp``).
        """
        faults, topology = resolve_inputs(scenario, topology)
        opts = self.make_options(options, overrides)
        return self.wrap(self.builder(faults, topology, opts), opts)


# -- the registry -------------------------------------------------------------------

#: Incremental builders keyed by spec key; populated by repro.api.session.
#: A replacement spec starts from a clean slate: the previous spec's
#: incremental builder must not run against the new builder's results.
_INCREMENTAL: Dict[str, Callable] = {}

_CONSTRUCTIONS = SpecRegistry(
    "construction", on_replace=lambda key: _INCREMENTAL.pop(key, None)
)
#: The registry's backing dicts (key -> spec, alias -> key), shared with
#: the :class:`SpecRegistry` instance; exposed for tests and diagnostics.
_REGISTRY: Dict[str, ConstructionSpec] = _CONSTRUCTIONS.specs
_ALIASES: Dict[str, str] = _CONSTRUCTIONS.aliases

_normalise = SpecRegistry.normalise


def register_construction(spec: ConstructionSpec, replace: bool = False) -> ConstructionSpec:
    """Register *spec* (and its aliases) in the global registry.

    Registration makes the model available to ``get_construction``, the
    :class:`repro.api.MeshSession`, the :class:`repro.api.SweepExecutor`
    and the CLI.  Raises ``ValueError`` on key collisions unless *replace*
    (which only licenses taking over *this* key, never another model's
    names, and disconnects the replaced spec's incremental builder).
    """
    return _CONSTRUCTIONS.register(spec, replace)


def register_incremental(key: str, builder: Callable) -> None:
    """Register an incremental session builder for construction *key*.

    *builder* is called as ``builder(session, spec, options)`` and must
    return a :class:`ConstructionResult` identical to the one the spec's
    full build would produce on the session's current fault set.
    """
    _INCREMENTAL[_normalise(key)] = builder


def incremental_builder(key: str) -> Optional[Callable]:
    """Return the incremental builder registered for *key*, if any."""
    return _INCREMENTAL.get(_normalise(key))


def get_construction(key: str) -> ConstructionSpec:
    """Look up a construction by key or alias (case-insensitive)."""
    return _CONSTRUCTIONS.get(key)


def available_constructions() -> List[ConstructionSpec]:
    """Return every registered spec, in registration order."""
    return _CONSTRUCTIONS.available()


def construction_keys() -> Tuple[str, ...]:
    """Return the registered construction keys, in registration order."""
    return _CONSTRUCTIONS.keys()


def build_construction(
    key: str,
    scenario: ScenarioOrFaults,
    topology: Optional[Topology] = None,
    *,
    options: Optional[ConstructionOptions] = None,
    **overrides: Any,
) -> ConstructionResult:
    """Convenience one-shot: ``get_construction(key).build(...)``."""
    return get_construction(key).build(
        scenario, topology, options=options, **overrides
    )


# -- built-in models ----------------------------------------------------------------


def _build_fb(faults, topology, options):
    return build_faulty_blocks(faults, topology=topology)


def _build_fp(faults, topology, options):
    return build_sub_minimum_polygons(faults, topology=topology)


def _build_mfp(faults, topology, options):
    if options.via_labelling:
        return build_minimum_polygons_via_labelling(faults, topology=topology)
    return build_minimum_polygons(
        faults, topology=topology, compute_rounds=options.compute_rounds
    )


def _build_cmfp(faults, topology, options):
    # CMFP is the centralized MFP with the round emulation always on: the
    # label exists so Figure 11 can compare its rounds against DMFP.
    return build_minimum_polygons(
        faults,
        topology=topology,
        compute_rounds=True,
    )


def _build_dmfp(faults, topology, options):
    return build_minimum_polygons_distributed(faults, topology=topology)


register_construction(
    ConstructionSpec(
        key="fb",
        label="FB",
        description="rectangular faulty blocks (labelling scheme 1)",
        builder=_build_fb,
        options_type=FaultyBlockOptions,
        aliases=("faulty-block", "faulty-blocks", "block"),
    )
)
register_construction(
    ConstructionSpec(
        key="fp",
        label="FP",
        description="sub-minimum faulty polygons (Wu, IPDPS 2001)",
        builder=_build_fp,
        options_type=SubMinimumOptions,
        aliases=("sub-minimum", "sub-minimum-polygons"),
    )
)
register_construction(
    ConstructionSpec(
        key="mfp",
        label="MFP",
        description="minimum faulty polygons (centralized construction)",
        builder=_build_mfp,
        options_type=MinimumPolygonOptions,
        aliases=("minimum-polygon", "minimum-polygons"),
        supports_incremental=True,
    )
)
register_construction(
    ConstructionSpec(
        key="cmfp",
        label="CMFP",
        description="centralized minimum faulty polygons with round emulation",
        builder=_build_cmfp,
        options_type=CentralizedOptions,
        aliases=("centralized-mfp",),
        supports_incremental=True,
    )
)
register_construction(
    ConstructionSpec(
        key="dmfp",
        label="DMFP",
        description="minimum faulty polygons (distributed construction)",
        builder=_build_dmfp,
        options_type=DistributedOptions,
        aliases=("distributed", "distributed-mfp"),
        supports_incremental=True,
    )
)
