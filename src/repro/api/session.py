"""Stateful mesh sessions with incremental fault updates.

The paper's simulation shape -- "faults are sequentially added" to a
100x100 mesh, with every construction re-run after each insertion -- makes
a full rebuild per step needlessly expensive: most fault components are
untouched by a new batch of faults, yet the one-shot builders recompute
every per-component polygon, labelling emulation and boundary ring from
scratch.

:class:`MeshSession` owns a topology plus the evolving fault set and keeps
the component partition *incrementally*: ``add_faults`` merges each new
fault into the adjacent components in O(batch) instead of re-scanning the
whole fault set.  Component-local artefacts (minimum-polygon hulls,
labelling-emulation rounds, boundary rings) are cached keyed by the
component's node set, so after an update only the components actually
touched by new faults -- the *dirty* components -- are recomputed; the
cheap network-wide piling step then reassembles the full result.  The
cached hull/labelling entries carry their polygons as coordinate arrays
built by the mask kernel (:mod:`repro.geometry.masks`), so the reassembly
concatenates whole arrays instead of iterating frozensets.  The
incremental results are bit-identical to one-shot builds on the same fault
set (asserted by the property tests in ``tests/test_api_session.py``).

Constructions are requested through the registry keys of
:mod:`repro.api.registry`::

    session = MeshSession(width=100)
    session.add_faults([(3, 4), (3, 5)])
    mfp = session.build("mfp")
    session.add_faults([(60, 60)])          # far away: polygon cache hits
    mfp2 = session.build("mfp")

Whole-network constructions (FB/FP run labelling schemes over the full
grid) cannot be updated component-locally; they fall back to a full build,
still cached per fault-set version so repeated queries are free.

Routing hangs off the same session (:mod:`repro.api.routing`): routers
built over the cached construction results are themselves cached and
invalidated by ``add_faults``, and ``session.route(key, traffic=...)``
runs a whole routing experiment from registry keys alone::

    stats = session.route("mfp", traffic="transpose", messages=2000, seed=1)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.api.registry import (
    ConstructionOptions,
    ConstructionResult,
    ConstructionSpec,
    get_construction,
    incremental_builder,
    register_incremental,
)
from repro.core.components import FaultComponent
from repro.core.mfp import (
    ComponentPolygon,
    assemble_minimum_polygons,
    component_minimum_polygon,
    component_polygon_via_labelling,
    emulate_rounds_each,
)
from repro.distributed.dmfp import ComponentConstruction, assemble_distributed
from repro.distributed.notification import plan_notifications
from repro.distributed.ring import construct_boundary_ring
from repro.faults.links import links_to_node_faults, make_link_fault_set
from repro.faults.scenario import FaultScenario
from repro.geometry import masks
from repro.geometry.boundary import eight_neighbours
from repro.mesh.topology import Mesh2D, Topology, Torus2D
from repro.types import Coord


class MeshSession:
    """A topology plus an evolving fault set, with cached constructions.

    Parameters
    ----------
    width, height:
        Mesh dimensions (square when *height* is omitted, the paper's
        default shape).
    torus:
        Use a 2-D torus instead of a mesh.
    topology:
        Explicit topology object (overrides *width*/*height*/*torus*).
    faults:
        Initial fault set, inserted as a first ``add_faults`` batch.
    """

    def __init__(
        self,
        width: int = 100,
        height: Optional[int] = None,
        *,
        torus: bool = False,
        topology: Optional[Topology] = None,
        faults: Iterable[Coord] = (),
    ) -> None:
        if topology is None:
            height = width if height is None else height
            topology = Torus2D(width, height) if torus else Mesh2D(width, height)
        self._topology = topology
        self._faults: List[Coord] = []
        self._fault_set: Set[Coord] = set()
        # Incremental component partition: component id -> mutable node set.
        self._members: Dict[int, Set[Coord]] = {}
        self._comp_of: Dict[Coord, int] = {}
        self._next_comp_id = 0
        self._version = 0
        self._components: Optional[List[FaultComponent]] = None
        # Per-component-id caches of the frozen node set and its minimum
        # node, invalidated only when that component is touched -- so
        # rebuilding the component list after a batch costs O(changed),
        # not O(total faults).
        self._frozen_members: Dict[int, FrozenSet[Coord]] = {}
        self._comp_min: Dict[int, Coord] = {}
        # Reused FaultComponent objects keyed by node set; an unchanged
        # component with an unchanged index keeps its identity across
        # versions, which lets cached artefacts skip re-anchoring.
        self._component_objects: Dict[FrozenSet[Coord], FaultComponent] = {}
        # Component-local caches keyed by the component's frozen node set; a
        # merge produces a new node set, so dirty components miss naturally.
        self._hull_cache: Dict[FrozenSet[Coord], ComponentPolygon] = {}
        self._labelling_cache: Dict[FrozenSet[Coord], ComponentPolygon] = {}
        self._rounds_cache: Dict[FrozenSet[Coord], int] = {}
        self._ring_cache: Dict[FrozenSet[Coord], object] = {}
        # Whole-result cache: (key, options) -> (version, result).
        self._results: Dict[Tuple[str, ConstructionOptions], Tuple[int, ConstructionResult]] = {}
        # Routing facade, created lazily on first router/route/routing use;
        # its router caches are keyed by the session version, so add_faults
        # invalidates them without an explicit hook.
        self._routing = None
        # Int hit/miss counters, plus the "array_backend" provenance string
        # the routing facade maintains.
        self.cache_info: Dict[str, Any] = {
            "result_hits": 0,
            "result_misses": 0,
            "component_hits": 0,
            "component_misses": 0,
        }
        if faults:
            self.add_faults(faults)

    @classmethod
    def from_scenario(cls, scenario: FaultScenario) -> "MeshSession":
        """Create a session preloaded with a generated scenario.

        Scenario link faults (if any) are applied after the node faults via
        the conservative endpoint mapping of :mod:`repro.faults.links`.
        """
        session = cls(topology=scenario.topology(), faults=scenario.faults)
        if scenario.link_faults:
            session.add_link_faults(scenario.link_faults)
        return session

    # -- state ---------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        """The topology this session builds on."""
        return self._topology

    @property
    def faults(self) -> Tuple[Coord, ...]:
        """The current fault set, in insertion order."""
        return tuple(self._faults)

    @property
    def num_faults(self) -> int:
        """Number of injected faults."""
        return len(self._faults)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutating batch."""
        return self._version

    def fault_set(self) -> FrozenSet[Coord]:
        """The current fault positions as a frozenset."""
        return frozenset(self._fault_set)

    def state(self) -> Dict[str, Any]:
        """The session's durable state as a JSON-safe dict.

        Captures everything :meth:`from_state` needs to reconstruct a
        bit-identical session: topology shape/kind, the fault list *in
        insertion order* (component discovery order depends on it), and
        the version counter.  Used by the serve journal's snapshots
        (:mod:`repro.serve.journal`).  Only the built-in ``Mesh2D`` /
        ``Torus2D`` topologies are supported.
        """
        topology = self._topology
        if type(topology) not in (Mesh2D, Torus2D):
            raise ValueError(
                f"cannot snapshot a session over {type(topology).__name__}; "
                "only Mesh2D/Torus2D topologies round-trip through state()"
            )
        return {
            "width": topology.width,
            "height": topology.height,
            "torus": isinstance(topology, Torus2D),
            "faults": [list(fault) for fault in self._faults],
            "version": self._version,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "MeshSession":
        """Reconstruct a session from a :meth:`state` snapshot.

        The fault list is re-inserted in its recorded order (one batch
        preserves insertion order) and the version counter is restored,
        so replaying the same mutations against the restored session
        reproduces the original's :meth:`fingerprint` exactly.
        """
        session = cls(
            width=int(state["width"]),
            height=int(state["height"]),
            torus=bool(state.get("torus", False)),
        )
        session.add_faults(tuple(int(v) for v in fault) for fault in state["faults"])
        session._version = int(state["version"])
        return session

    def fingerprint(self) -> str:
        """SHA-256 witness of the observable session state.

        Hashes the :meth:`state` snapshot plus the component partition
        (node sets in discovery order), so two sessions with equal
        fingerprints route identically: the fault set, its insertion
        order, the components and the version all match.  This is the
        equality the journal-recovery differentials assert
        (``recover()`` == uninterrupted oracle).
        """
        payload = {
            "state": self.state(),
            "components": [
                sorted(map(list, component.nodes))
                for component in self.components()
            ],
        }
        blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- mutation ------------------------------------------------------------------

    def add_fault(self, node: Coord) -> bool:
        """Inject a single fault; returns ``False`` if already faulty."""
        return bool(self.add_faults([node]))

    def add_faults(self, nodes: Iterable[Coord]) -> List[Coord]:
        """Inject a batch of faults, merging components incrementally.

        Already-faulty positions are skipped.  Returns the list of newly
        injected positions (insertion order).  Component membership is
        updated in O(batch size): each new fault joins (and possibly
        merges) only the components adjacent to it under the paper's
        8-adjacency (Definition 2).
        """
        # Validate the whole batch before mutating anything, so a rejected
        # node cannot leave the session holding half the batch with stale
        # caches (the version bump only happens at the end).
        batch: List[Coord] = []
        for node in nodes:
            node = (int(node[0]), int(node[1]))
            self._topology.validate(node)
            batch.append(node)
        added: List[Coord] = []
        for node in batch:
            if node in self._fault_set:
                continue
            self._fault_set.add(node)
            self._faults.append(node)
            added.append(node)
            touching = {
                self._comp_of[n]
                for n in eight_neighbours(node)
                if n in self._comp_of
            }
            if not touching:
                comp_id = self._next_comp_id
                self._next_comp_id += 1
                self._members[comp_id] = {node}
                self._comp_min[comp_id] = node
            else:
                # Merge everything into the largest touched component.
                comp_id = max(touching, key=lambda cid: len(self._members[cid]))
                best_min = min(self._comp_min[cid] for cid in touching)
                for other in touching - {comp_id}:
                    moved = self._members.pop(other)
                    self._frozen_members.pop(other, None)
                    self._comp_min.pop(other, None)
                    for member in moved:
                        self._comp_of[member] = comp_id
                    self._members[comp_id].update(moved)
                self._members[comp_id].add(node)
                self._frozen_members.pop(comp_id, None)
                self._comp_min[comp_id] = min(best_min, node)
            self._comp_of[node] = comp_id
        if added:
            self._version += 1
            self._components = None
        return added

    def remove_fault(self, node: Coord) -> bool:
        """Repair a single fault; returns ``False`` if not currently faulty."""
        return bool(self.remove_faults([node]))

    def remove_faults(self, nodes: Iterable[Coord]) -> List[Coord]:
        """Repair a batch of faults, re-splitting components incrementally.

        The inverse of :meth:`add_faults`: positions that are not currently
        faulty are skipped, and the list of actually repaired positions is
        returned.  Only the components that lost a member are revisited --
        each is re-partitioned by a flood fill over its *remaining* members
        under the paper's 8-adjacency, since removing a cut node can split
        one component into several.  Untouched components (and therefore
        their cached polygons, rounds and rings) survive unchanged.
        """
        batch: List[Coord] = []
        for node in nodes:
            node = (int(node[0]), int(node[1]))
            self._topology.validate(node)
            batch.append(node)
        removed: List[Coord] = []
        affected: Set[int] = set()
        for node in batch:
            if node not in self._fault_set:
                continue
            self._fault_set.discard(node)
            removed.append(node)
            comp_id = self._comp_of.pop(node)
            self._members[comp_id].discard(node)
            affected.add(comp_id)
        if not removed:
            return removed
        for comp_id in affected:
            survivors = self._members.pop(comp_id)
            self._frozen_members.pop(comp_id, None)
            self._comp_min.pop(comp_id, None)
            # Flood-fill the survivors into (possibly several) fresh
            # components; fresh ids are fine because components() orders by
            # minimal node, not id.
            while survivors:
                seed = survivors.pop()
                piece = {seed}
                frontier = [seed]
                while frontier:
                    current = frontier.pop()
                    for neighbour in eight_neighbours(current):
                        if neighbour in survivors:
                            survivors.discard(neighbour)
                            piece.add(neighbour)
                            frontier.append(neighbour)
                new_id = self._next_comp_id
                self._next_comp_id += 1
                self._members[new_id] = piece
                self._comp_min[new_id] = min(piece)
                for member in piece:
                    self._comp_of[member] = new_id
        self._faults = [f for f in self._faults if f in self._fault_set]
        self._version += 1
        self._components = None
        return removed

    def add_link_faults(
        self, links: Iterable[Sequence[Coord]], *, prefer_lower: bool = True
    ) -> List[Coord]:
        """Inject link faults via the conservative node-fault mapping.

        Each faulty link is mapped onto one of its endpoints by
        :func:`repro.faults.links.links_to_node_faults` (nodes already
        faulty absorb their links for free), and the chosen endpoints are
        injected through :meth:`add_faults`.  Returns the list of newly
        faulty node positions (possibly empty, when every link already
        touches a faulty node).
        """
        fault_set = make_link_fault_set(self._topology, links)
        mapped = links_to_node_faults(
            fault_set, self._fault_set, prefer_lower=prefer_lower
        )
        return self.add_faults(n for n in mapped if n not in self._fault_set)

    def clear(self) -> None:
        """Drop all faults and every cached artefact."""
        self._faults.clear()
        self._fault_set.clear()
        self._members.clear()
        self._comp_of.clear()
        self._frozen_members.clear()
        self._comp_min.clear()
        self._component_objects.clear()
        self._next_comp_id = 0
        self._version += 1
        self._components = None
        self._hull_cache.clear()
        self._labelling_cache.clear()
        self._rounds_cache.clear()
        self._ring_cache.clear()
        self._results.clear()

    # -- components ----------------------------------------------------------------

    def components(self) -> List[FaultComponent]:
        """The current fault components, in ``find_components`` order.

        Components are ordered by their minimal node (the discovery order
        of :func:`repro.core.components.find_components`), so incremental
        and one-shot builds expose identical component lists.
        """
        if self._components is None:
            ordered_ids = sorted(self._members, key=self._comp_min.__getitem__)
            components: List[FaultComponent] = []
            for index, comp_id in enumerate(ordered_ids):
                nodes = self._frozen_members.get(comp_id)
                if nodes is None:
                    nodes = frozenset(self._members[comp_id])
                    self._frozen_members[comp_id] = nodes
                component = self._component_objects.get(nodes)
                if component is None or component.index != index:
                    component = FaultComponent(index=index, nodes=nodes)
                    self._component_objects[nodes] = component
                components.append(component)
            self._components = components
            self._prune_component_caches()
        return self._components

    def _prune_component_caches(self) -> None:
        """Drop cache entries of components that no longer exist (merged)."""
        live = set(self._frozen_members.values())
        for cache in (
            self._hull_cache,
            self._labelling_cache,
            self._rounds_cache,
            self._ring_cache,
            self._component_objects,
        ):
            for key in [k for k in cache if k not in live]:
                del cache[key]

    # -- cached component-local artefacts -------------------------------------------

    def _component_artifact(self, cache: Dict, component: FaultComponent, compute):
        entry = cache.get(component.nodes)
        if entry is None:
            self.cache_info["component_misses"] += 1
            entry = compute(component)
            cache[component.nodes] = entry
        else:
            self.cache_info["component_hits"] += 1
        return entry

    def component_hull(self, component: FaultComponent) -> ComponentPolygon:
        """The component's minimum polygon (hull fill), cached.

        The cached entry carries the polygon's coordinate array (built by
        the mask kernel), so reassembling the network-wide result
        concatenates whole arrays instead of iterating coordinate sets.
        """
        entry = self._component_artifact(
            self._hull_cache, component, component_minimum_polygon
        )
        if entry.component is not component:
            # Re-anchor the cached polygon on the current component object
            # (indices shift as components appear) and keep the re-wrapped
            # entry so later builds of the same version hit it directly.
            # dataclasses.replace preserves the cached coordinate array.
            entry = dataclasses.replace(entry, component=component)
            self._hull_cache[component.nodes] = entry
        return entry

    def component_labelling(self, component: FaultComponent) -> ComponentPolygon:
        """The component's labelling-emulation polygon and rounds, cached."""
        entry = self._component_artifact(
            self._labelling_cache, component, component_polygon_via_labelling
        )
        if entry.component is not component:
            entry = dataclasses.replace(entry, component=component)
            self._labelling_cache[component.nodes] = entry
        return entry

    def emulation_rounds(self, components: Sequence[FaultComponent]) -> int:
        """Maximum labelling-emulation rounds over *components*, cached.

        Round counts depend only on a component's shape, so they are cached
        per node set; the cache misses are emulated batched
        (:func:`repro.core.mfp.emulate_rounds_each`) instead of one
        labelling run per component.  With the mask kernel switched off the
        per-component labelling emulation runs instead, so the oracle path
        stays entirely legacy.
        """
        if not masks.kernel_enabled():
            rounds = 0
            for component in components:
                entry = self.component_labelling(component)
                rounds = max(rounds, entry.rounds)
            return rounds
        missing = [c for c in components if c.nodes not in self._rounds_cache]
        if missing:
            self.cache_info["component_misses"] += len(missing)
            for component, rounds in zip(missing, emulate_rounds_each(missing)):
                self._rounds_cache[component.nodes] = rounds
        self.cache_info["component_hits"] += len(components) - len(missing)
        return max(
            (self._rounds_cache[c.nodes] for c in components), default=0
        )

    def component_ring(self, component: FaultComponent):
        """The component's boundary-ring construction, cached."""
        entry = self._component_artifact(
            self._ring_cache, component, construct_boundary_ring
        )
        if entry.component is not component:
            # Re-anchor on the current component object (indices shift as
            # components appear) so incremental results stay identical to
            # one-shot builds; keep the re-wrapped entry for later hits.
            entry = dataclasses.replace(entry, component=component)
            self._ring_cache[component.nodes] = entry
        return entry

    # -- construction builds ---------------------------------------------------------

    def build(
        self,
        key: str,
        *,
        options: Optional[ConstructionOptions] = None,
        **overrides,
    ) -> ConstructionResult:
        """Build (or fetch from cache) the construction registered as *key*.

        Results are cached per (key, options) until the fault set changes;
        constructions with a registered incremental builder only recompute
        the components touched since their artefacts were last cached.
        """
        spec = get_construction(key)
        opts = spec.make_options(options, overrides)
        cache_key = (spec.key, opts)
        cached = self._results.get(cache_key)
        if cached is not None and cached[0] == self._version:
            self.cache_info["result_hits"] += 1
            return cached[1]
        self.cache_info["result_misses"] += 1
        incremental = (
            incremental_builder(spec.key) if spec.supports_incremental else None
        )
        if incremental is not None:
            result = incremental(self, spec, opts)
        else:
            result = spec.build(self.faults, self._topology, options=opts)
        self._results[cache_key] = (self._version, result)
        return result

    def build_all(
        self, keys: Optional[Sequence[str]] = None
    ) -> Dict[str, ConstructionResult]:
        """Build several constructions; defaults to every registered key."""
        if keys is None:
            from repro.api.registry import construction_keys

            keys = construction_keys()
        return {key: self.build(key) for key in keys}

    # -- routing ---------------------------------------------------------------------

    @property
    def routing(self):
        """The session's routing facade (:class:`repro.api.RoutingSession`).

        Routers and traffic contexts built through it reuse this session's
        cached construction results (including the region-index grid) and
        are invalidated automatically by ``add_faults`` / ``clear``.
        """
        if self._routing is None:
            # Imported lazily: repro.api.routing imports this module.
            from repro.api.routing import RoutingSession

            self._routing = RoutingSession(self)
        return self._routing

    def router(self, router: str = "extended-ecube", construction: str = "mfp", **kwargs):
        """Build (or fetch from cache) a router over a cached construction.

        Convenience for :meth:`RoutingSession.router`; see
        :mod:`repro.api.routing` for the full parameter list.
        """
        return self.routing.router(router, construction, **kwargs)

    def route(self, construction: str = "mfp", **kwargs):
        """Route one generated traffic batch over a cached construction.

        Convenience for :meth:`RoutingSession.route`: resolves the
        construction, router and traffic workload through their
        registries, generates a deterministic endpoint batch and returns
        the aggregated :class:`~repro.routing.stats.RoutingStats`.
        """
        return self.routing.route(construction, **kwargs)

    def simulate(self, construction: str = "mfp", **kwargs):
        """Run one open-loop contention simulation over a cached construction.

        Convenience for :meth:`repro.netsim.NetSimSession.simulate` (via
        :attr:`RoutingSession.netsim`): generates a timed traffic batch at
        the requested ``load``, replays the routed paths against
        per-virtual-channel occupancy and returns the
        :class:`~repro.netsim.stats.NetSimStats` (latency arrays, channel
        utilisation, ``saturated`` / ``deadlocked`` verdicts).
        """
        return self.routing.simulate(construction, **kwargs)

    def describe(self) -> str:
        """One-line description used by logs and the CLI."""
        kind = "torus" if isinstance(self._topology, Torus2D) else "mesh"
        return (
            f"{self._topology.width}x{self._topology.height} {kind}, "
            f"{self.num_faults} faults, {len(self._members)} components"
        )


# -- incremental builders -----------------------------------------------------------


def _incremental_minimum_polygons(
    session: MeshSession, spec: ConstructionSpec, options: ConstructionOptions
) -> ConstructionResult:
    """Incremental centralized MFP/CMFP: reuse clean components' polygons."""
    components = session.components()
    via_labelling = getattr(options, "via_labelling", False)
    compute_rounds = spec.key == "cmfp" or getattr(options, "compute_rounds", True)

    polygons: List[ComponentPolygon] = []
    rounds = 0
    for component in components:
        if via_labelling:
            # Solution A always carries its emulation rounds, regardless of
            # compute_rounds -- matching build_minimum_polygons_via_labelling.
            entry = session.component_labelling(component)
            rounds = max(rounds, entry.rounds)
        else:
            entry = session.component_hull(component)
        polygons.append(entry)
    if compute_rounds and not via_labelling:
        rounds = session.emulation_rounds(components)
    construction = assemble_minimum_polygons(
        session.faults, session.topology, polygons, rounds, components
    )
    return spec.wrap(construction, options)


def _incremental_distributed(
    session: MeshSession, spec: ConstructionSpec, options: ConstructionOptions
) -> ConstructionResult:
    """Incremental DMFP: cache boundary rings, recompute notification plans.

    The boundary ring depends only on the component's own shape and is the
    expensive part of the distributed construction; the notification plans
    must be recomputed because their detours depend on the faults of *other*
    components (blocking polygons), which any update may change.
    """
    components = session.components()
    fault_set = set(session.faults)
    per_component: List[ComponentConstruction] = []
    for component in components:
        ring = session.component_ring(component)
        blocking = fault_set - set(component.nodes)
        plan = plan_notifications(component, ring, blocking)
        per_component.append(
            ComponentConstruction(component=component, ring=ring, plan=plan)
        )
    construction = assemble_distributed(
        session.faults, session.topology, components, per_component
    )
    return spec.wrap(construction, options)


register_incremental("mfp", _incremental_minimum_polygons)
register_incremental("cmfp", _incremental_minimum_polygons)
register_incremental("dmfp", _incremental_distributed)
