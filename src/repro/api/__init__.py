"""repro.api -- the canonical public surface of the reproduction package.

Four layers, replacing the ~50 loose functions the package historically
exported from its top level:

* :mod:`repro.api.registry` -- a pluggable registry mapping string keys
  (``"fb"``, ``"fp"``, ``"mfp"``, ``"cmfp"``, ``"dmfp"``) to
  :class:`ConstructionSpec` objects with one uniform
  ``build(scenario, *, options) -> ConstructionResult`` protocol and typed
  option dataclasses.
* :mod:`repro.api.session` -- :class:`MeshSession`, a stateful mesh that
  supports incremental ``add_faults`` / ``clear`` with per-construction
  result caching and dirty-component invalidation (only components touched
  by new faults are recomputed).
* :mod:`repro.api.routing` -- :class:`RoutingSession`, the routing facade
  of the session: routers resolved through the router registry
  (``get_router("ecube" | "extended-ecube")``), synthetic workloads
  through the traffic registry (``get_traffic("uniform" | "transpose" |
  "bit-reversal" | "hotspot" | "nearest-neighbour" | "permutation")``),
  routers cached per construction and invalidated on fault updates.
* :mod:`repro.api.executor` -- :class:`SweepExecutor`, which fans
  construction sweeps (``run``), routing sweeps (``run_routing``) and
  latency-vs-load sweeps (``run_latency``) out over ``multiprocessing``
  with deterministic per-trial seeds and pluggable reducers.

On top of the routing facade sits the network simulator of
:mod:`repro.netsim` (:class:`NetSimSession`, reachable as
``session.simulate(...)``): open-loop injection, per-virtual-channel
contention, latency / saturation verdicts, with the ``array`` / ``scalar``
simulator registry switched by ``REPRO_NETSIM``.

Underneath all of it, the hot array primitives (labelling, span fills,
jump-table scans, traversal windows, netsim arbitration) dispatch through
the pluggable backend registry of :mod:`repro._array_ops` --
``REPRO_ARRAY_BACKEND`` / :func:`use_backend` / ``backend=...`` per call
-- with ``numpy`` (default), JIT-compiled ``numba`` (graceful fallback),
``loops`` (differential reference) and a gated ``cupy`` stub.

Quickstart::

    from repro.api import MeshSession, SweepExecutor, get_construction

    session = MeshSession(width=100)
    session.add_faults([(10, 10), (10, 11), (40, 40)])
    mfp = session.build("mfp")
    print(mfp.num_disabled_nonfaulty, mfp.rounds)

    stats = session.route("mfp", traffic="transpose", messages=2000, seed=1)
    print(stats.delivery_rate, stats.mean_detour)

    points = SweepExecutor(workers=4).run([100, 200, 400], trials=3)
    routing = SweepExecutor(models=("fb", "fp", "mfp"), workers=4).run_routing(
        [100, 200, 400], trials=3, traffic="hotspot", messages=500
    )
"""

from repro._array_ops import (
    ArrayOps,
    BackendSpec,
    active_backend_key,
    available_backends,
    backend_keys,
    backend_status,
    default_backend,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.api.registry import (
    ConstructionOptions,
    ConstructionResult,
    ConstructionSpec,
    DistributedOptions,
    FaultyBlockOptions,
    MinimumPolygonOptions,
    SubMinimumOptions,
    available_constructions,
    build_construction,
    construction_keys,
    get_construction,
    register_construction,
    register_incremental,
)
from repro.api.session import MeshSession
from repro.api.routing import RoutingSession
from repro.api.executor import (
    DEFAULT_MODELS,
    DEFAULT_NETSIM_MODELS,
    DEFAULT_ROUTING_MODELS,
    NetSimTrialSpec,
    RoutingTrialSpec,
    SweepExecutor,
    TrialSpec,
    collect_scenario_metrics,
    latency_point_reducer,
    routing_point_reducer,
    run_netsim_trial,
    run_routing_trial,
    run_trial,
    sweep_point_reducer,
)
from repro.netsim import (
    NetSimSession,
    NetSimStats,
    SimulatorSpec,
    available_simulators,
    default_simulator,
    get_simulator,
    register_simulator,
    set_default_simulator,
    simulator_keys,
    use_simulator,
)
from repro.routing.engine import (
    EngineSpec,
    available_engines,
    default_engine,
    engine_deltas_enabled,
    engine_keys,
    get_engine,
    register_engine,
    set_default_engine,
    set_engine_deltas,
    use_engine,
    use_engine_deltas,
)
from repro.routing.registry import (
    RouterOptions,
    RouterSpec,
    available_routers,
    get_router,
    register_router,
    router_keys,
)
from repro.routing.stats import MissingRouteResultsError, RoutingStats
from repro.routing.traffic import (
    ArrivalOptions,
    BurstyArrivalOptions,
    PoissonArrivalOptions,
    TrafficBatch,
    TrafficContext,
    TrafficOptions,
    TrafficSpec,
    available_traffic,
    get_traffic,
    register_traffic,
    traffic_keys,
)

__all__ = [
    # construction registry
    "ConstructionSpec",
    "ConstructionResult",
    "ConstructionOptions",
    "FaultyBlockOptions",
    "SubMinimumOptions",
    "MinimumPolygonOptions",
    "DistributedOptions",
    "register_construction",
    "register_incremental",
    "get_construction",
    "available_constructions",
    "construction_keys",
    "build_construction",
    # session
    "MeshSession",
    # routing facade + registries
    "RoutingSession",
    "RoutingStats",
    "MissingRouteResultsError",
    "RouterSpec",
    "RouterOptions",
    "get_router",
    "register_router",
    "router_keys",
    "available_routers",
    "TrafficSpec",
    "TrafficBatch",
    "TrafficContext",
    "TrafficOptions",
    "ArrivalOptions",
    "PoissonArrivalOptions",
    "BurstyArrivalOptions",
    "get_traffic",
    "register_traffic",
    "traffic_keys",
    "available_traffic",
    # array-backend registry
    "ArrayOps",
    "BackendSpec",
    "active_backend_key",
    "get_backend",
    "register_backend",
    "backend_keys",
    "available_backends",
    "backend_status",
    "default_backend",
    "set_default_backend",
    "use_backend",
    # engine registry
    "EngineSpec",
    "get_engine",
    "register_engine",
    "engine_keys",
    "available_engines",
    "default_engine",
    "set_default_engine",
    "use_engine",
    "engine_deltas_enabled",
    "set_engine_deltas",
    "use_engine_deltas",
    # network simulator facade + registry
    "NetSimSession",
    "NetSimStats",
    "SimulatorSpec",
    "get_simulator",
    "register_simulator",
    "simulator_keys",
    "available_simulators",
    "default_simulator",
    "set_default_simulator",
    "use_simulator",
    # executor
    "SweepExecutor",
    "TrialSpec",
    "RoutingTrialSpec",
    "NetSimTrialSpec",
    "DEFAULT_MODELS",
    "DEFAULT_ROUTING_MODELS",
    "DEFAULT_NETSIM_MODELS",
    "collect_scenario_metrics",
    "run_trial",
    "run_routing_trial",
    "run_netsim_trial",
    "sweep_point_reducer",
    "routing_point_reducer",
    "latency_point_reducer",
]
