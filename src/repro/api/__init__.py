"""repro.api -- the canonical public surface of the reproduction package.

Three layers, replacing the ~50 loose functions the package historically
exported from its top level:

* :mod:`repro.api.registry` -- a pluggable registry mapping string keys
  (``"fb"``, ``"fp"``, ``"mfp"``, ``"cmfp"``, ``"dmfp"``) to
  :class:`ConstructionSpec` objects with one uniform
  ``build(scenario, *, options) -> ConstructionResult`` protocol and typed
  option dataclasses.
* :mod:`repro.api.session` -- :class:`MeshSession`, a stateful mesh that
  supports incremental ``add_faults`` / ``clear`` with per-construction
  result caching and dirty-component invalidation (only components touched
  by new faults are recomputed).
* :mod:`repro.api.executor` -- :class:`SweepExecutor`, which fans sweep
  trials out over ``multiprocessing`` with deterministic per-trial seeds
  and pluggable reducers.

Quickstart::

    from repro.api import MeshSession, SweepExecutor, get_construction

    session = MeshSession(width=100)
    session.add_faults([(10, 10), (10, 11), (40, 40)])
    mfp = session.build("mfp")
    print(mfp.num_disabled_nonfaulty, mfp.rounds)

    points = SweepExecutor(workers=4).run([100, 200, 400], trials=3)
"""

from repro.api.registry import (
    ConstructionOptions,
    ConstructionResult,
    ConstructionSpec,
    DistributedOptions,
    FaultyBlockOptions,
    MinimumPolygonOptions,
    SubMinimumOptions,
    available_constructions,
    build_construction,
    construction_keys,
    get_construction,
    register_construction,
    register_incremental,
)
from repro.api.session import MeshSession
from repro.api.executor import (
    DEFAULT_MODELS,
    SweepExecutor,
    TrialSpec,
    collect_scenario_metrics,
    run_trial,
    sweep_point_reducer,
)

__all__ = [
    # registry
    "ConstructionSpec",
    "ConstructionResult",
    "ConstructionOptions",
    "FaultyBlockOptions",
    "SubMinimumOptions",
    "MinimumPolygonOptions",
    "DistributedOptions",
    "register_construction",
    "register_incremental",
    "get_construction",
    "available_constructions",
    "construction_keys",
    "build_construction",
    # session
    "MeshSession",
    # executor
    "SweepExecutor",
    "TrialSpec",
    "DEFAULT_MODELS",
    "collect_scenario_metrics",
    "run_trial",
    "sweep_point_reducer",
]
