"""The routing facade of the session layer.

:class:`RoutingSession` hangs off :class:`repro.api.MeshSession` and makes
routing a first-class citizen of the ``repro.api`` surface: routers are
resolved through the router registry (:mod:`repro.routing.registry`),
workloads through the traffic registry (:mod:`repro.routing.traffic`), and
everything is built on top of the session's cached
:class:`~repro.api.ConstructionResult` -- including its region-index grid,
so a router instantiation costs O(1) region-membership work.

Routers (and the traffic contexts derived from them) are cached per
``(router, construction, options)`` key and invalidated automatically when
``add_faults`` / ``clear`` bump the session version, exactly like the
construction result cache::

    session = MeshSession(width=50, faults=faults)
    stats = session.route("mfp", traffic="transpose", messages=2000, seed=1)
    session.add_faults([(3, 4)])        # routers rebuilt lazily on next use
    stats2 = session.route("mfp", traffic="transpose", messages=2000, seed=1)

``route`` returns a :class:`repro.routing.stats.RoutingStats` annotated
with the construction/traffic/router/engine labels and the enabled
endpoint count, ready for sweep tables.  Requesting ``check_deadlock=True``
auto-enables per-route result collection, so the channel-dependency check
can never fail mid-analysis for lack of results.

**Default engine rule.**  Batches are routed by the engine registry of
:mod:`repro.routing.engine`: with the default ``engine=None`` /
``REPRO_ROUTE_ENGINE=auto`` selection, ``route`` picks the vectorized
**batch** engine whenever it can serve the request -- per-route results
not requested (``collect_results=False`` and no ``check_deadlock``) and
the router one of the built-ins -- and the per-message **scalar** loop
otherwise, which stays the path-collecting / deadlock-check oracle.  The
two produce bit-identical aggregate statistics; the chosen key is
recorded on ``stats.engine``.  An explicit ``engine=`` argument is
strict (a batch request it cannot serve raises ``ValueError``), the
ambient default is lenient and falls back to scalar.

The session also owns a :class:`~repro.routing.engine.RegionRingCache`
attached to every router it builds, so routers rebuilt after
``add_faults`` reuse the boundary-ring geometry (ring walks, position
maps, bounding boxes) of every region the update did not change.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from repro import _array_ops
from repro.api.registry import ConstructionOptions
from repro.routing.engine import (
    RegionRingCache,
    engine_deltas_enabled,
    resolve_engine,
    transplant_engine_state,
)
from repro.routing.registry import RouterOptions, get_router
from repro.routing.stats import RoutingStats
from repro.routing.traffic import TrafficContext, TrafficOptions, get_traffic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import MeshSession


class RoutingSession:
    """Cached routers and traffic contexts on top of one :class:`MeshSession`.

    Obtained via :attr:`MeshSession.routing` (or the ``router`` / ``route``
    convenience methods on the session itself); not usually instantiated
    directly.
    """

    def __init__(self, session: "MeshSession") -> None:
        self._session = session
        # (router key, construction key, construction opts, router opts)
        #   -> (session version, router)
        self._routers: Dict[Tuple, Tuple[int, Any]] = {}
        # Same key -> (session version, TrafficContext); contexts only
        # depend on the disabled mask, but keying them like the routers
        # keeps one invalidation rule for everything routing-related.
        self._contexts: Dict[Tuple, Tuple[int, TrafficContext]] = {}
        self._netsim = None
        session.cache_info.setdefault("router_hits", 0)
        session.cache_info.setdefault("router_misses", 0)
        session.cache_info.setdefault("ring_hits", 0)
        session.cache_info.setdefault("ring_misses", 0)
        # Engine-state rebuild observability: full jump-table builds, full
        # ring packs, and fault-delta transplants that avoided them.
        session.cache_info.setdefault("jump_rebuilds", 0)
        session.cache_info.setdefault("ring_rebuilds", 0)
        session.cache_info.setdefault("delta_applies", 0)
        # The effective array backend of the session's last routed /
        # simulated batch (ambient selection until one runs).
        session.cache_info.setdefault("array_backend", _array_ops.active_backend_key())
        # Session-level boundary-ring geometry, keyed by region identity
        # (the frozen node set): survives add_faults, so rebuilt routers
        # only recompute the rings of regions the update actually changed.
        self._ring_cache = RegionRingCache(counters=session.cache_info)

    @property
    def session(self) -> "MeshSession":
        """The mesh session this facade routes on."""
        return self._session

    @property
    def ring_cache(self) -> RegionRingCache:
        """The session's shared per-region boundary-ring geometry cache."""
        return self._ring_cache

    # -- cached builds ---------------------------------------------------------------

    def _resolve(
        self,
        router: str,
        construction: str,
        options: Optional[RouterOptions],
        construction_options: Optional[ConstructionOptions],
        overrides: Optional[dict] = None,
    ):
        """Resolve ``(construction result, router, traffic context)`` once.

        One registry lookup per axis, one session ``build`` (itself
        cached), one router-cache probe: the shared path under
        :meth:`router`, :meth:`context` and :meth:`route`.  Caches are
        keyed by the session version, so any ``add_faults`` / ``clear``
        invalidates routers and contexts automatically.
        """
        spec = get_router(router)
        router_options = spec.make_options(options, overrides)
        result = self._session.build(construction, options=construction_options)
        key = (spec.key, result.key, result.options, router_options)
        version = self._session.version
        cached = self._routers.get(key)
        if cached is not None and cached[0] == version:
            self._session.cache_info["router_hits"] += 1
            router_obj = cached[1]
        else:
            self._session.cache_info["router_misses"] += 1
            router_obj = spec.build(result, options=router_options)
            attach = getattr(router_obj, "attach_ring_cache", None)
            if attach is not None:
                attach(self._ring_cache)
            attach_counters = getattr(router_obj, "attach_counters", None)
            if attach_counters is not None:
                attach_counters(self._session.cache_info)
            # A fault update invalidated the previous router for this key:
            # instead of rebuilding its engine state (jump tables, packed
            # rings) from scratch, delta-patch it from the predecessor --
            # only the touched rows/columns/regions are re-derived.
            # REPRO_ENGINE_DELTAS=0 / use_engine_deltas(False) restores
            # the full-rebuild behaviour (the differential oracle).
            if cached is not None and engine_deltas_enabled():
                if transplant_engine_state(cached[1], router_obj):
                    self._session.cache_info["delta_applies"] += 1
            self._routers[key] = (version, router_obj)
        cached_context = self._contexts.get(key)
        if cached_context is not None and cached_context[0] == version:
            context = cached_context[1]
        else:
            context = TrafficContext.from_router(router_obj)
            self._contexts[key] = (version, context)
        return spec, result, router_obj, context

    def router(
        self,
        router: str = "extended-ecube",
        construction: str = "mfp",
        *,
        options: Optional[RouterOptions] = None,
        construction_options: Optional[ConstructionOptions] = None,
        **overrides: Any,
    ):
        """Build (or fetch from cache) a router over a cached construction.

        The construction is resolved through the session's result cache,
        so repeated calls after the same fault set cost one dictionary
        lookup; any ``add_faults`` invalidates the router automatically
        (the cache is keyed by the session version).  Keyword *overrides*
        are field overrides of the router's option type.
        """
        return self._resolve(
            router, construction, options, construction_options, overrides
        )[2]

    def context(
        self,
        router: str = "extended-ecube",
        construction: str = "mfp",
        *,
        options: Optional[RouterOptions] = None,
        construction_options: Optional[ConstructionOptions] = None,
    ) -> TrafficContext:
        """The traffic context (enabled index arrays + mask) of a router."""
        return self._resolve(router, construction, options, construction_options)[3]

    # -- routing experiments ---------------------------------------------------------

    def route(
        self,
        construction: str = "mfp",
        *,
        traffic: str = "uniform",
        messages: int = 1000,
        seed: int = 0,
        router: str = "extended-ecube",
        traffic_options: Optional[TrafficOptions] = None,
        router_options: Optional[RouterOptions] = None,
        construction_options: Optional[ConstructionOptions] = None,
        collect_results: bool = False,
        check_deadlock: bool = False,
        engine: Optional[str] = None,
        backend: Optional[str] = None,
        **traffic_overrides: Any,
    ) -> RoutingStats:
        """Route one generated message batch and return the statistics.

        *construction*, *traffic* and *router* are registry keys; keyword
        *traffic_overrides* are field overrides of the workload's option
        type (e.g. ``fraction=0.8`` for ``hotspot``).  Generation is
        deterministic in *seed*: the same seed on the same fault set
        yields a bit-identical batch (and therefore identical stats).

        *engine* names the routing engine (engine registry key); the
        default follows :func:`repro.routing.engine.default_engine`:
        ``auto`` selects the vectorized batch kernel whenever per-route
        results are not requested and the router is a built-in, and the
        scalar per-message loop otherwise.  Both engines produce
        bit-identical statistics; the key actually used is recorded on
        ``stats.engine``.  An explicit *engine* is strict and raises
        ``ValueError`` when it cannot serve the request.

        *check_deadlock* runs the channel-dependency-cycle analysis on the
        delivered routes; per-route result collection is enabled
        automatically for the check (which also forces the scalar
        engine), so it cannot raise
        :class:`~repro.routing.stats.MissingRouteResultsError`.  Read the
        verdict via ``stats.deadlock_free()``.  This is the *static*
        evidence (no reachable channel-dependency cycle); for the dynamic
        counterpart -- does the configuration actually stall under load --
        run the network simulator instead (:meth:`simulate`), whose
        :class:`~repro.netsim.stats.NetSimStats` reports a ``deadlocked``
        verdict without keeping per-route results.

        *backend* scopes this call to one array backend
        (:mod:`repro._array_ops` registry key; default: the ambient
        ``REPRO_ARRAY_BACKEND`` selection).  The *effective* backend --
        after the numba backend's fallback when numba is missing -- is
        recorded on ``stats.backend`` and mirrored into
        ``session.cache_info["array_backend"]``.
        """
        scope = _array_ops.use_backend(backend) if backend is not None else nullcontext()
        with scope:
            backend_key = _array_ops.active_backend_key()
            self._session.cache_info["array_backend"] = backend_key
            traffic_spec = get_traffic(traffic)
            router_spec, result, router_obj, context = self._resolve(
                router, construction, router_options, construction_options
            )
            batch = traffic_spec.generate(
                context,
                messages,
                rng=np.random.default_rng(seed),
                options=traffic_options,
                **traffic_overrides,
            )
            collect = collect_results or check_deadlock
            engine_spec = resolve_engine(router_obj, engine, collect)
            stats = RoutingStats(
                collect_results=collect,
                enabled=context.num_enabled,
                model=result.label,
                traffic=traffic_spec.key,
                router=router_spec.key,
                engine=engine_spec.key,
                backend=backend_key,
            )
            engine_spec.runner(router_obj, batch, stats)
            if check_deadlock:
                stats.deadlock_free()
            return stats

    # -- network simulation ----------------------------------------------------------

    @property
    def netsim(self):
        """The session's network-simulation facade (:class:`NetSimSession`).

        Plans built through it reuse this session's cached routers and
        construction results and are invalidated automatically by
        ``add_faults`` / ``clear``.
        """
        if self._netsim is None:
            # Imported lazily: the netsim facade is optional machinery on
            # top of the routing layer.
            from repro.netsim.session import NetSimSession

            self._netsim = NetSimSession(self)
        return self._netsim

    def simulate(self, construction: str = "mfp", **kwargs):
        """Run one open-loop contention simulation over a cached construction.

        Convenience for :meth:`repro.netsim.NetSimSession.simulate`: the
        spatial workload and arrival process resolve through the traffic
        registry, the simulator through the simulator registry
        (``REPRO_NETSIM``), and the routed paths are memoised per router /
        construction across calls.  Returns a
        :class:`~repro.netsim.stats.NetSimStats`.
        """
        return self.netsim.simulate(construction, **kwargs)
