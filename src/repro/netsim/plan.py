"""Routed-path plans: the input the contention simulators replay.

The network simulator separates *routing* from *contention*: every message's
path is computed up front by the (scalar, path-collecting) router and turned
into a flat sequence of virtual-channel identifiers; the simulators then
replay those sequences cycle by cycle against per-channel occupancy.  This
mirrors how the routing algorithm itself works -- the extended e-cube route
of a message depends only on the fault regions, never on other traffic -- so
precomputing paths loses nothing.

Channel numbering (shared by both simulators and the utilisation reports):

* the physical directed link leaving node ``(x, y)`` in direction ``d``
  (0 east, 1 west, 2 north, 3 south) has ``link = (x * height + y) * 4 + d``;
* each link carries :data:`NUM_VCS` ( = 5) virtual channels: ``vc0 .. vc3``
  are the four abnormal classes of :mod:`repro.routing.channels` and ``vc4``
  is the base dimension-ordered channel (reusing ``BASE_CHANNEL == 4``);
* the flat channel identifier is ``link * NUM_VCS + vc``.

Unroutable messages (source or destination inside a fault region, or the
router gives up) are excluded from the replay and reported separately: the
simulator measures contention among deliverable messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.routing.channels import BASE_CHANNEL, assign_channels, hop_direction

#: Virtual channels per directed physical link (vc0..vc3 abnormal + base).
NUM_VCS = BASE_CHANNEL + 1

#: Unit hop delta -> direction code (east, west, north, south).
_DIRECTION: Dict[Tuple[int, int], int] = {(1, 0): 0, (-1, 0): 1, (0, 1): 2, (0, -1): 3}


@dataclass(eq=False)
class SimPlan:
    """The routed paths of one batch, flattened for lockstep replay.

    ``routed`` flags the messages the router delivered (aligned with the
    original batch); the remaining arrays are indexed by *routed message*
    (compacted).  Message ``m``'s hop channels are
    ``hop_channel[offsets[m] : offsets[m] + lengths[m]]``.
    """

    width: int
    height: int
    #: Messages in the original batch (routed + unroutable).
    attempted: int
    #: Boolean mask over the original batch: True = router delivered.
    routed: np.ndarray
    #: Per routed message: start of its hop-channel run.
    offsets: np.ndarray
    #: Per routed message: number of hops (path length - 1, >= 1).
    lengths: np.ndarray
    #: Flat channel identifiers of every hop, concatenated per message.
    hop_channel: np.ndarray
    #: Per routed message: injection cycle (>= 0).
    inject: np.ndarray
    #: Per routed message: number of abnormal (around-a-region) hops.
    abnormal: np.ndarray
    #: Per routed message: the fault-free minimal hop count (Manhattan).
    minimal: np.ndarray

    @property
    def num_routed(self) -> int:
        """Number of messages that take part in the replay."""
        return int(self.lengths.size)

    @property
    def num_links(self) -> int:
        """Directed physical links of the grid (4 per node)."""
        return self.width * self.height * 4

    @property
    def num_channels(self) -> int:
        """Flat channel count (links times virtual channels)."""
        return self.num_links * NUM_VCS


def channel_ids(assignment, height: int, topology=None) -> np.ndarray:
    """Flatten one :class:`VirtualChannelAssignment` into channel identifiers."""
    ids = np.empty(len(assignment.channels), dtype=np.int64)
    for index, (current, nxt, vc) in enumerate(assignment.channels):
        dx, dy = hop_direction(current, nxt, topology)
        direction = _DIRECTION.get((dx, dy))
        if direction is None:  # pragma: no cover - corrupt path defensive check
            raise ValueError(f"non-unit hop {current} -> {nxt} in routed path")
        link = (current[0] * height + current[1]) * 4 + direction
        ids[index] = link * NUM_VCS + vc
    return ids


def build_plan(
    router,
    batch,
    *,
    path_cache: Optional[Dict] = None,
) -> SimPlan:
    """Route *batch* through *router* and flatten the paths into a plan.

    Paths are computed once per unique ``(source, destination)`` pair via
    the scalar ``router.route`` (the path-collecting oracle the batch
    engine is verified against) and memoised in *path_cache* -- pass the
    same dictionary across calls (e.g. per session version) to amortise
    routing over a latency-vs-load sweep, where every load point replays
    largely the same pair population.
    """
    width, height = router.enabled_mask.shape
    topology = getattr(router, "topology", None)
    cache: Dict = path_cache if path_cache is not None else {}
    src_x, src_y, dst_x, dst_y = (np.asarray(a) for a in batch.as_arrays())
    attempted = int(src_x.size)
    if batch.inject_time is not None:
        inject_all = np.asarray(batch.inject_time, dtype=np.int64)
    else:
        inject_all = np.zeros(attempted, dtype=np.int64)
    routed = np.zeros(attempted, dtype=bool)
    channel_runs = []
    lengths = []
    inject = []
    abnormal = []
    minimal = []
    for index in range(attempted):
        pair = (
            int(src_x[index]),
            int(src_y[index]),
            int(dst_x[index]),
            int(dst_y[index]),
        )
        if pair not in cache:
            result = router.route((pair[0], pair[1]), (pair[2], pair[3]))
            if result.delivered:
                assignment = assign_channels(result, topology=topology)
                cache[pair] = (
                    channel_ids(assignment, height, topology),
                    int(result.abnormal_hops),
                )
            else:
                cache[pair] = None
        entry = cache[pair]
        if entry is None:
            continue
        routed[index] = True
        channel_runs.append(entry[0])
        lengths.append(entry[0].size)
        inject.append(int(inject_all[index]))
        abnormal.append(entry[1])
        minimal.append(abs(pair[2] - pair[0]) + abs(pair[3] - pair[1]))
    lengths_arr = np.asarray(lengths, dtype=np.int64)
    offsets = np.zeros(lengths_arr.size, dtype=np.int64)
    if lengths_arr.size:
        np.cumsum(lengths_arr[:-1], out=offsets[1:])
    hop_channel = (
        np.concatenate(channel_runs) if channel_runs else np.empty(0, dtype=np.int64)
    )
    return SimPlan(
        width=width,
        height=height,
        attempted=attempted,
        routed=routed,
        offsets=offsets,
        lengths=lengths_arr,
        hop_channel=hop_channel.astype(np.int64, copy=False),
        inject=np.asarray(inject, dtype=np.int64),
        abnormal=np.asarray(abnormal, dtype=np.int64),
        minimal=np.asarray(minimal, dtype=np.int64),
    )
