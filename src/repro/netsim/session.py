"""The network-simulation facade of the session layer.

:class:`NetSimSession` hangs off :class:`repro.api.RoutingSession` the same
way the routing facade hangs off :class:`repro.api.MeshSession`: routers and
constructions resolve through the session's caches, the spatial workload and
the arrival process resolve through the traffic registry, and the simulator
through the simulator registry (``REPRO_NETSIM``).  One call::

    session = MeshSession(width=16, faults=faults)
    stats = session.simulate("mfp", load=0.05, cycles=512, seed=1)
    print(stats.mean_latency, stats.accepted_load, stats.saturated)

runs the whole open-loop pipeline: generate a timed batch (``load`` times
the enabled node count messages per cycle over the injection window), route
every unique endpoint pair once through the scalar router, replay the paths
against per-channel occupancy, and fold the outcome into a
:class:`~repro.netsim.stats.NetSimStats`.

Routed paths are memoised per ``(router, construction, options)`` key and
session version -- a latency-vs-load sweep replays largely the same pair
population at every load point, so only the first point pays the routing
cost.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

from repro import _array_ops
from repro.netsim.plan import NUM_VCS, build_plan
from repro.netsim.registry import resolve_simulator
from repro.netsim.stats import NetSimStats, delivery_fingerprint
from repro.routing.stats import RoutingStats
from repro.routing.traffic import ArrivalOptions, get_traffic, traffic_keys

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.routing import RoutingSession


def _arrival_keys() -> Tuple[str, ...]:
    """Keys of the registered arrival-process workloads."""
    return tuple(
        key
        for key in traffic_keys()
        if issubclass(get_traffic(key).options_type, ArrivalOptions)
    )


class NetSimSession:
    """Cached contention simulation on top of one :class:`RoutingSession`.

    Obtained via :attr:`repro.api.RoutingSession.netsim` (or the
    ``simulate`` convenience methods on the routing session and the mesh
    session itself); not usually instantiated directly.
    """

    def __init__(self, routing: "RoutingSession") -> None:
        self._routing = routing
        # (router key, construction key, construction opts, router opts)
        #   -> (session version, {(sx, sy, dx, dy) -> path entry})
        self._paths: Dict[Tuple, Tuple[int, Dict]] = {}
        info = routing.session.cache_info
        info.setdefault("path_hits", 0)
        info.setdefault("path_misses", 0)

    @property
    def routing(self) -> "RoutingSession":
        """The routing facade this simulator replays paths from."""
        return self._routing

    def _path_cache(self, key: Tuple) -> Dict:
        """The per-version memo of routed paths for one router/construction."""
        version = self._routing.session.version
        cached = self._paths.get(key)
        if cached is not None and cached[0] == version:
            self._routing.session.cache_info["path_hits"] += 1
            return cached[1]
        self._routing.session.cache_info["path_misses"] += 1
        fresh: Dict = {}
        self._paths[key] = (version, fresh)
        return fresh

    def simulate(
        self,
        construction: str = "mfp",
        *,
        traffic: str = "uniform",
        arrival: str = "poisson",
        load: float = 0.05,
        cycles: int = 256,
        messages: Optional[int] = None,
        seed: int = 0,
        router: str = "extended-ecube",
        sim: Optional[str] = None,
        backend: Optional[str] = None,
        drain_factor: int = 8,
        traffic_options=None,
        arrival_options=None,
        router_options=None,
        construction_options=None,
        **traffic_overrides: Any,
    ) -> NetSimStats:
        """Run one open-loop contention simulation and return its statistics.

        *construction*, *traffic*, *arrival*, *router* and *sim* are
        registry keys: the spatial workload draws the endpoint pairs, the
        arrival process (``poisson`` / ``bursty``) stamps their injection
        cycles at ``load * enabled_nodes`` messages per cycle over the
        *cycles*-long injection window, and the simulator replays the
        routed paths until everything drains or ``cycles * drain_factor``
        is reached.  *messages* overrides the batch size (default: the
        expected count of the offered load).  Keyword *traffic_overrides*
        are field overrides of the spatial workload's option type;
        *arrival_options* of the arrival process's (e.g. ``burst=16``).

        Everything is deterministic in *seed* -- and in the simulator
        choice, since the array simulator and the scalar oracle are
        bit-identical (``stats.delivery_fingerprint`` is the witness).
        The same holds for *backend*, which scopes the call to one array
        backend (:mod:`repro._array_ops` key; default: the ambient
        ``REPRO_ARRAY_BACKEND`` selection) -- the effective key is
        recorded on ``stats.backend``.
        """
        if load <= 0.0:
            raise ValueError("load must be positive (messages per node per cycle)")
        if cycles < 1:
            raise ValueError("cycles must be at least 1")
        if drain_factor < 1:
            raise ValueError("drain_factor must be at least 1")
        arrival_spec = get_traffic(arrival)
        if not issubclass(arrival_spec.options_type, ArrivalOptions):
            known = ", ".join(_arrival_keys())
            raise ValueError(
                f"traffic workload {arrival_spec.key!r} is not an arrival "
                f"process; registered arrival processes: {known}"
            )
        traffic_spec = get_traffic(traffic)
        if issubclass(traffic_spec.options_type, ArrivalOptions):
            raise ValueError(
                f"spatial workload {traffic_spec.key!r} is an arrival process; "
                "pass it as arrival=... and pick a spatial traffic pattern"
            )
        scope = _array_ops.use_backend(backend) if backend is not None else nullcontext()
        with scope:
            backend_key = _array_ops.active_backend_key()
            self._routing.session.cache_info["array_backend"] = backend_key
            sim_spec = resolve_simulator(sim)
            router_spec, result, router_obj, context = self._routing._resolve(
                router, construction, router_options, construction_options
            )
            rate = load * context.num_enabled
            if messages is None:
                messages = int(round(rate * cycles))
            spatial_options = traffic_spec.make_options(
                traffic_options, traffic_overrides
            )
            arrival_opts = arrival_spec.make_options(
                arrival_options,
                {
                    "pattern": traffic_spec.key,
                    "rate": rate,
                    "pattern_options": spatial_options,
                },
            )
            batch = arrival_spec.generate(
                context,
                messages,
                rng=np.random.default_rng(seed),
                options=arrival_opts,
            )
            cache_key = (
                router_spec.key,
                result.key,
                result.options,
                router_spec.make_options(router_options, None),
            )
            plan = build_plan(router_obj, batch, path_cache=self._path_cache(cache_key))
            max_cycles = cycles * drain_factor
            outcome = sim_spec.runner(plan, max_cycles)

        routing_stats = RoutingStats(
            enabled=context.num_enabled,
            model=result.label,
            traffic=traffic_spec.key,
            router=router_spec.key,
            sim=sim_spec.key,
            backend=backend_key,
        )
        routing_stats.attempted = plan.attempted
        routing_stats.delivered = plan.num_routed
        routing_stats.failed = plan.attempted - plan.num_routed
        routing_stats.total_hops = int(plan.lengths.sum())
        routing_stats.total_detour = int((plan.lengths - plan.minimal).sum())
        routing_stats.minimal_routes = int(np.count_nonzero(plan.lengths == plan.minimal))
        routing_stats.abnormal_routes = int(np.count_nonzero(plan.abnormal > 0))

        delivered_mask = outcome.delivery >= 0
        latency = (outcome.delivery - plan.inject)[delivered_mask]
        hops = plan.lengths[delivered_mask]
        stats = NetSimStats(
            model=result.label,
            traffic=traffic_spec.key,
            arrival=arrival_spec.key,
            router=router_spec.key,
            sim=sim_spec.key,
            backend=backend_key,
            load=load,
            cycles=cycles,
            max_cycles=max_cycles,
            enabled=context.num_enabled,
            attempted=plan.attempted,
            unroutable=plan.attempted - plan.num_routed,
            delivered=int(np.count_nonzero(delivered_mask)),
            in_flight=int(np.count_nonzero(~delivered_mask)),
            total_latency=int(latency.sum()),
            total_queueing=int(latency.sum() - hops.sum()),
            total_hops=int(hops.sum()),
            cycles_run=outcome.cycles,
            deadlocked=outcome.deadlocked,
            latency=latency,
            hops=hops,
            inject=plan.inject[delivered_mask],
            busy=outcome.busy.reshape(plan.num_links, NUM_VCS),
            delivery_fingerprint=delivery_fingerprint(outcome.delivery),
            routing=routing_stats,
        )
        return stats
