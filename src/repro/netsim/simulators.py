"""The two contention simulators: vectorized arrays vs. the scalar oracle.

Both implement the *same* cycle contract over a :class:`~repro.netsim.plan.SimPlan`
and must produce bit-identical results (asserted by the differential tests
and the saturation benchmark, exactly like ``REPRO_MASK_KERNEL=0`` and the
scalar routing engine):

* A message waits at its source (infinite injection queue, holding no
  buffer) until its injection cycle has been reached.
* On every cycle ``t`` each undelivered injected message requests the
  virtual-channel buffer of its next hop.  A request is granted when that
  buffer was free *at the start of the cycle* and the message has the
  lowest batch index among the cycle's requesters of that buffer
  (deterministic round-robin-free arbitration; losers stall in place and
  accumulate queueing latency).  All grants of a cycle apply
  simultaneously -- a buffer freed this cycle is re-acquirable only on the
  next one, the standard conservative pipeline model.
* A granted message releases the buffer of its previous hop, occupies the
  requested one and advances.  A grant on the final hop delivers the
  message at ``t + 1`` (the ejection port consumes immediately, so
  final-hop buffers never stay occupied).
* Per-channel busy time accumulates the cycles a buffer was held
  (including stalled cycles); buffers still held when the run stops are
  flushed into the totals.
* The run stops when every message is delivered, at the hard cycle cap,
  or on deadlock: a cycle with at least one requester, no grants and no
  pending injections cannot ever make progress again (occupancy and
  requests are then static), so the simulators stop and report
  ``deadlocked`` instead of spinning to the cap.  While injections are
  still pending, a zero-grant cycle merely fast-forwards to the next
  injection time -- a pure wall-clock optimisation, since nothing can
  change in between.

The array simulator keeps message state in NumPy arrays and resolves each
cycle's arbitration through the pluggable array-backend facade
(:func:`repro._array_ops.active_ops`): one lexsort over ``(channel,
message index)`` on the numpy backend, a JIT-compiled combined-key sort on
the numba backend; the
scalar oracle walks plain dictionaries message by message.  Keeping the
oracle around (selectable via ``REPRO_NETSIM=scalar``) pins down the
contract the fast path must honour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import _array_ops
from repro.netsim.plan import SimPlan


@dataclass(eq=False)
class SimOutcome:
    """What one simulator run produced (aligned with the plan's messages)."""

    #: Per routed message: delivery cycle, or -1 when still undelivered.
    delivery: np.ndarray
    #: Cycles actually simulated (<= the hard cap).
    cycles: int
    #: True when the run stopped on a provably stuck configuration.
    deadlocked: bool
    #: Per flat channel: cycles its buffer was held.
    busy: np.ndarray


def simulate_array(plan: SimPlan, max_cycles: int) -> SimOutcome:
    """Replay *plan* with vectorized per-cycle arbitration."""
    n = plan.num_routed
    busy = np.zeros(plan.num_channels, dtype=np.int64)
    delivery = np.full(n, -1, dtype=np.int64)
    if n == 0 or max_cycles <= 0:
        return SimOutcome(delivery=delivery, cycles=0, deadlocked=False, busy=busy)
    order = np.argsort(plan.inject, kind="stable")
    sorted_inject = plan.inject[order]
    pos = np.zeros(n, dtype=np.int64)
    nxt = np.zeros(n, dtype=np.int64)
    has_hops = plan.lengths > 0
    nxt[has_hops] = plan.hop_channel[plan.offsets[has_hops]]
    held = np.full(n, -1, dtype=np.int64)
    entered = np.zeros(n, dtype=np.int64)
    occupied = np.zeros(plan.num_channels, dtype=bool)
    active = np.empty(0, dtype=np.int64)
    pointer = 0
    t = 0
    deadlocked = False
    grant_messages = _array_ops.active_ops().grant_messages
    while t < max_cycles:
        new_pointer = int(np.searchsorted(sorted_inject, t, side="right"))
        if new_pointer > pointer:
            newcomers = order[pointer:new_pointer]
            pointer = new_pointer
            # Degenerate zero-hop paths deliver on injection (no channel use).
            instant = newcomers[plan.lengths[newcomers] == 0]
            if instant.size:
                delivery[instant] = plan.inject[instant]
                newcomers = newcomers[plan.lengths[newcomers] > 0]
            active = np.concatenate([active, newcomers])
        if active.size == 0:
            if pointer >= n:
                break
            t = min(int(sorted_inject[pointer]), max_cycles)
            continue
        # Arbitration is an array-backend primitive: each free channel
        # grants its lowest-index requester (losers stall in place).
        granted = grant_messages(nxt[active], active, occupied)
        if granted.size == 0:
            if pointer >= n:
                deadlocked = True
                break
            t = min(int(sorted_inject[pointer]), max_cycles)
            continue
        channel = nxt[granted]
        previous = held[granted]
        holding = previous >= 0
        # Each holder holds a distinct buffer, so plain fancy indexing is
        # collision-free for both the busy add and the release.
        busy[previous[holding]] += t - entered[granted[holding]]
        occupied[previous[holding]] = False
        pos[granted] += 1
        final = pos[granted] == plan.lengths[granted]
        arrived = granted[final]
        delivery[arrived] = t + 1
        moving = granted[~final]
        moved_to = channel[~final]
        occupied[moved_to] = True
        held[moving] = moved_to
        entered[moving] = t
        nxt[moving] = plan.hop_channel[plan.offsets[moving] + pos[moving]]
        if arrived.size:
            active = active[delivery[active] < 0]
        t += 1
    if active.size:
        holders = active[held[active] >= 0]
        busy[held[holders]] += t - entered[holders]
    return SimOutcome(delivery=delivery, cycles=t, deadlocked=deadlocked, busy=busy)


def simulate_scalar(plan: SimPlan, max_cycles: int) -> SimOutcome:
    """Replay *plan* with the dict-based per-message reference loop.

    Deliberately naive -- plain dictionaries and per-message Python steps,
    the transcription of the module contract -- so it stays legible as the
    differential oracle for :func:`simulate_array`.
    """
    n = plan.num_routed
    busy = np.zeros(plan.num_channels, dtype=np.int64)
    delivery = np.full(n, -1, dtype=np.int64)
    if n == 0 or max_cycles <= 0:
        return SimOutcome(delivery=delivery, cycles=0, deadlocked=False, busy=busy)
    order = sorted(range(n), key=lambda m: (int(plan.inject[m]), m))
    position = {m: 0 for m in range(n)}
    held: dict = {}
    entered: dict = {}
    occupied: dict = {}
    active: list = []
    pointer = 0
    t = 0
    deadlocked = False
    while t < max_cycles:
        while pointer < n and int(plan.inject[order[pointer]]) <= t:
            message = order[pointer]
            pointer += 1
            if int(plan.lengths[message]) == 0:
                delivery[message] = int(plan.inject[message])
            else:
                active.append(message)
        if not active:
            if pointer >= n:
                break
            t = min(int(plan.inject[order[pointer]]), max_cycles)
            continue
        grants = {}
        for message in sorted(active):
            wanted = int(plan.hop_channel[plan.offsets[message] + position[message]])
            if wanted in occupied or wanted in grants:
                continue
            grants[wanted] = message
        if not grants:
            if pointer >= n:
                deadlocked = True
                break
            t = min(int(plan.inject[order[pointer]]), max_cycles)
            continue
        for wanted, message in grants.items():
            if message in held:
                previous = held.pop(message)
                busy[previous] += t - entered.pop(message)
                del occupied[previous]
            position[message] += 1
            if position[message] == int(plan.lengths[message]):
                delivery[message] = t + 1
                active.remove(message)
            else:
                occupied[wanted] = message
                held[message] = wanted
                entered[message] = t
        t += 1
    for message, channel in held.items():
        busy[channel] += t - entered[message]
    return SimOutcome(delivery=delivery, cycles=t, deadlocked=deadlocked, busy=busy)
