"""The result record of one contention simulation run.

:class:`NetSimStats` is the netsim counterpart of
:class:`repro.routing.stats.RoutingStats`: a self-describing record
(construction / traffic / arrival / router / simulator labels plus the run
configuration) carrying the per-message latency arrays, the per-channel
busy totals and the scalar aggregates the latency-vs-load sweeps plot.
The embedded ``routing`` stats describe the underlying contention-free
paths, so one simulate call answers both "how did routing do" and "what
did contention cost".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.netsim.plan import NUM_VCS
from repro.routing.stats import RoutingStats

#: Virtual-channel names, indexed by vc number (vc0..vc3 abnormal + base).
VC_NAMES: Tuple[str, ...] = ("vc0", "vc1", "vc2", "vc3", "base")


def _empty_int64() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


@dataclass(eq=False)
class NetSimStats:
    """Aggregate statistics of one open-loop contention simulation."""

    # -- labels (registry keys / construction label) --------------------------------
    model: str = ""
    traffic: str = ""
    arrival: str = ""
    router: str = ""
    sim: str = ""
    #: Effective array-backend key (:mod:`repro._array_ops`) the run
    #: dispatched to; provenance -- backends are asserted bit-identical.
    backend: str = ""

    # -- run configuration -----------------------------------------------------------
    #: Offered load in messages per node per cycle.
    load: float = 0.0
    #: Injection-window length the load was offered over.
    cycles: int = 0
    #: Hard simulation cap (injection window times the drain factor).
    max_cycles: int = 0
    #: Enabled endpoint nodes of the mesh under test.
    enabled: int = 0

    # -- message counts ---------------------------------------------------------------
    #: Messages in the generated batch.
    attempted: int = 0
    #: Messages the router could not deliver (excluded from the replay).
    unroutable: int = 0
    #: Messages delivered by the simulator within the cap.
    delivered: int = 0
    #: Routed messages still undelivered (or never injected) at the stop.
    in_flight: int = 0

    # -- timing aggregates (delivered messages) ---------------------------------------
    total_latency: int = 0
    total_queueing: int = 0
    total_hops: int = 0
    #: Cycles actually simulated (<= max_cycles).
    cycles_run: int = 0
    #: True when the run stopped on a provably stuck configuration.
    deadlocked: bool = False

    # -- per-message arrays (delivered messages, batch order) -------------------------
    latency: np.ndarray = field(default_factory=_empty_int64)
    hops: np.ndarray = field(default_factory=_empty_int64)
    inject: np.ndarray = field(default_factory=_empty_int64)

    # -- per-channel busy cycles, shape (num_links, NUM_VCS) --------------------------
    busy: np.ndarray = field(default_factory=lambda: np.empty((0, NUM_VCS), np.int64))

    #: SHA-1 over the raw per-message delivery cycles (undelivered = -1):
    #: the bit-identity witness between the array simulator and the oracle.
    delivery_fingerprint: str = ""

    #: Contention-free routing stats of the replayed paths (``sim`` label set).
    routing: Optional[RoutingStats] = None

    # -- derived scalars --------------------------------------------------------------

    @property
    def routed(self) -> int:
        """Messages that took part in the replay."""
        return self.attempted - self.unroutable

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of the whole batch (routing and contention)."""
        return self.delivered / self.attempted if self.attempted else 1.0

    @property
    def mean_latency(self) -> float:
        """Average injection-to-delivery cycles of delivered messages."""
        return self.total_latency / self.delivered if self.delivered else 0.0

    @property
    def mean_queueing(self) -> float:
        """Average stalled cycles (latency minus hops) of delivered messages."""
        return self.total_queueing / self.delivered if self.delivered else 0.0

    @property
    def mean_hops(self) -> float:
        """Average hop count of delivered messages."""
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def accepted_load(self) -> float:
        """Delivered throughput in messages per node per cycle.

        Measured over the injection window, so at saturation it flattens
        at the network's capacity while the offered ``load`` keeps rising
        -- the x axis of the classic latency-throughput plot.
        """
        window = self.cycles if self.cycles else self.cycles_run
        if not window or not self.enabled:
            return 0.0
        return self.delivered / (window * self.enabled)

    @property
    def saturated(self) -> bool:
        """Whether the run shows saturation.

        True when the network deadlocked, could not drain every routed
        message within the cap, or queueing dominates (mean latency at
        least twice the contention-free hop latency -- past the knee of
        the latency-vs-load curve).
        """
        if self.deadlocked or self.in_flight > 0:
            return True
        return bool(self.delivered) and self.total_queueing >= self.total_hops

    # -- channel utilisation ----------------------------------------------------------

    def utilisation(self) -> np.ndarray:
        """Busy fraction per (link, vc) over the simulated cycles."""
        if not self.cycles_run:
            return np.zeros_like(self.busy, dtype=float)
        return self.busy / float(self.cycles_run)

    def vc_busy(self) -> Dict[str, int]:
        """Total busy cycles per virtual channel (vc0..vc3 + base)."""
        totals = self.busy.sum(axis=0) if self.busy.size else np.zeros(NUM_VCS, np.int64)
        return {name: int(totals[index]) for index, name in enumerate(VC_NAMES)}

    def utilisation_histogram(self, bins: int = 10):
        """Histogram of per-channel busy fractions: ``(counts, edges)``.

        Buckets every ``(link, vc)`` buffer by the fraction of simulated
        cycles it was held, over ``[0, 1]`` -- the standard view of how
        evenly load spreads over the fabric (faults and hotspots skew it).
        """
        return np.histogram(self.utilisation().ravel(), bins=bins, range=(0.0, 1.0))

    def summary(self) -> str:
        """One-line human-readable digest (used by the CLI)."""
        state = "deadlock" if self.deadlocked else (
            "saturated" if self.saturated else "stable"
        )
        return (
            f"load={self.load:.4f} delivered={self.delivered}/{self.attempted} "
            f"latency={self.mean_latency:.2f} (queue {self.mean_queueing:.2f}) "
            f"accepted={self.accepted_load:.4f} [{state}]"
        )


def delivery_fingerprint(delivery: np.ndarray) -> str:
    """SHA-1 of the raw delivery-cycle array (the bit-identity witness)."""
    return hashlib.sha1(np.ascontiguousarray(delivery, dtype=np.int64).tobytes()).hexdigest()
