"""repro.netsim -- the contention-aware lockstep network simulator.

The routing layer of this package answers "where does every message go";
this subsystem answers the paper-standard interconnect question "how long
does it take under load": open-loop injection (Poisson / bursty arrival
processes from the traffic registry), round-based replay of the routed
paths against per-virtual-channel occupancy with deterministic
lowest-index arbitration, and latency / throughput / saturation reporting.

Two bit-identical simulators are registered (``array`` -- the vectorized
default -- and ``scalar`` -- the dict-based oracle), switchable via the
``REPRO_NETSIM`` environment variable, :func:`use_simulator`, or the
``sim=`` argument, exactly like the ``REPRO_ROUTE_ENGINE`` /
``REPRO_MASK_KERNEL`` toggles before it.

Entry points: :meth:`repro.api.MeshSession.simulate` (one call),
:class:`NetSimSession` (the facade), ``SweepExecutor.run_latency`` /
:func:`repro.sim.experiments.run_latency_sweep` (latency-vs-load curves),
the ``repro-mesh simulate`` CLI command and
``benchmarks/bench_saturation.py``.
"""

from repro.netsim.plan import NUM_VCS, SimPlan, build_plan, channel_ids
from repro.netsim.registry import (
    SimulatorSpec,
    available_simulators,
    default_simulator,
    get_simulator,
    register_simulator,
    resolve_simulator,
    set_default_simulator,
    simulator_keys,
    use_simulator,
)
from repro.netsim.session import NetSimSession
from repro.netsim.simulators import SimOutcome, simulate_array, simulate_scalar
from repro.netsim.stats import VC_NAMES, NetSimStats, delivery_fingerprint

__all__ = [
    "NUM_VCS",
    "VC_NAMES",
    "SimPlan",
    "build_plan",
    "channel_ids",
    "SimOutcome",
    "simulate_array",
    "simulate_scalar",
    "SimulatorSpec",
    "register_simulator",
    "get_simulator",
    "available_simulators",
    "simulator_keys",
    "default_simulator",
    "set_default_simulator",
    "use_simulator",
    "resolve_simulator",
    "NetSimSession",
    "NetSimStats",
    "delivery_fingerprint",
]
