"""The simulator registry and the ``REPRO_NETSIM`` default switch.

Mirrors the routing-engine registry of :mod:`repro.routing.engine` (and the
``REPRO_MASK_KERNEL`` toggle before it): two built-in implementations --
the vectorized ``array`` simulator and the dict-based ``scalar`` oracle --
selectable per call (``sim="scalar"``), per scope (``use_simulator``) or
globally (environment variable ``REPRO_NETSIM``).  Both produce
bit-identical results, so the switch is a verification and debugging tool,
never a semantics choice.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro._registry import SpecRegistry
from repro.netsim.plan import SimPlan
from repro.netsim.simulators import SimOutcome, simulate_array, simulate_scalar

#: A runner replays one plan: ``(plan, max_cycles) -> SimOutcome``.
SimRunner = Callable[[SimPlan, int], SimOutcome]


@dataclass(frozen=True)
class SimulatorSpec:
    """One registered contention simulator."""

    key: str
    label: str
    description: str
    runner: SimRunner
    aliases: Tuple[str, ...] = ()


_SIMULATORS = SpecRegistry("simulator")


def register_simulator(spec: SimulatorSpec, replace: bool = False) -> SimulatorSpec:
    """Register *spec* (and its aliases) in the global simulator registry.

    Registration makes the simulator available to ``get_simulator``,
    :meth:`repro.netsim.NetSimSession.simulate`, the latency sweeps and
    the CLI ``simulate --sim`` option.  Raises ``ValueError`` on key
    collisions unless *replace*.
    """
    return _SIMULATORS.register(spec, replace)


def get_simulator(key: str) -> SimulatorSpec:
    """Look up a simulator by key or alias (case-insensitive)."""
    return _SIMULATORS.get(key)


def available_simulators() -> List[SimulatorSpec]:
    """Return every registered simulator spec, in registration order."""
    return _SIMULATORS.available()


def simulator_keys() -> Tuple[str, ...]:
    """Return the registered simulator keys, in registration order."""
    return _SIMULATORS.keys()


register_simulator(
    SimulatorSpec(
        key="array",
        label="AR",
        description="vectorized occupancy replay (lexsort arbitration per cycle)",
        runner=simulate_array,
        aliases=("vectorized", "numpy"),
    )
)
register_simulator(
    SimulatorSpec(
        key="scalar",
        label="SC",
        description="dict-based per-message reference loop (the oracle)",
        runner=simulate_scalar,
        aliases=("loop", "reference"),
    )
)


# -- default-simulator switch (mirrors REPRO_ROUTE_ENGINE) --------------------------

_default_simulator = SpecRegistry.normalise(os.environ.get("REPRO_NETSIM", "auto"))


def default_simulator() -> str:
    """The ambient simulator selection (``auto`` unless switched)."""
    return _default_simulator


def set_default_simulator(key: str) -> str:
    """Set the ambient simulator selection; returns the previous value.

    *key* is ``auto`` or any registered simulator key/alias (validated
    eagerly, like the registry lookups).
    """
    global _default_simulator
    key = SpecRegistry.normalise(key)
    if key != "auto":
        key = get_simulator(key).key
    previous = _default_simulator
    _default_simulator = key
    return previous


@contextmanager
def use_simulator(key: str):
    """Temporarily switch the ambient simulator selection (context manager).

    Mirrors :func:`repro.routing.engine.use_engine`::

        with use_simulator("scalar"):
            stats = session.simulate(load=0.1, cycles=200)   # forced oracle
    """
    previous = set_default_simulator(key)
    try:
        yield
    finally:
        set_default_simulator(previous)


def resolve_simulator(sim: Optional[str] = None) -> SimulatorSpec:
    """Resolve the simulator that will replay one plan.

    ``sim=None`` follows the ambient default (:func:`default_simulator`);
    ``auto`` -- the shipped default -- picks the vectorized array
    simulator.  Both simulators serve every request (they are
    bit-identical), so unlike the engine resolution there is no fallback
    path: an unknown key raises ``KeyError`` either way.
    """
    key = SpecRegistry.normalise(sim) if sim is not None else default_simulator()
    if key == "auto":
        return get_simulator("array")
    return get_simulator(key)
