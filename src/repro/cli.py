"""Command-line interface for the reproduction package.

The CLI is a thin shell over the :mod:`repro.api` session layer: every
command resolves its fault-region models through the construction registry
(``repro.api.get_construction``) and builds them on a
:class:`repro.api.MeshSession`.

``repro-mesh construct``
    Build FB / FP / MFP / DMFP regions for one generated fault pattern and
    print their statistics (optionally an ASCII rendering of the grid).

``repro-mesh sweep``
    Run the Figure 9/10/11 fault-count sweep for one distribution and print
    the series tables (optionally ASCII charts); ``--workers`` fans the
    trials out over a process pool, ``--torus`` sweeps a 2-D torus, and
    ``--routing`` runs the routing sweep (delivery rate / detour vs. fault
    count) instead of the construction figures.

``repro-mesh route``
    Route one synthetic traffic workload (``--traffic``, any key of the
    traffic registry) through a router (``--router``) over the regions of
    each fault model built from the same fault pattern, and print
    delivery/detour statistics.  ``--engine`` picks the routing engine
    (``auto`` / ``scalar`` / ``batch``; the engines are bit-identical, so
    the choice only affects wall-clock time) -- available on ``sweep
    --routing`` too.  ``--backend`` picks the array backend the hot
    primitives run on (``auto`` / ``numpy`` / ``numba`` / ``loops`` /
    ``cupy``; bit-identical by construction, see
    :mod:`repro._array_ops`) -- available on ``sweep`` and ``simulate``
    too, and exported to worker processes via ``REPRO_ARRAY_BACKEND``.

``repro-mesh simulate``
    Run the open-loop contention simulator (:mod:`repro.netsim`) over one
    fault pattern: inject timed traffic (``--arrival poisson|bursty``) at
    one or more offered loads (``--loads``), replay the routed paths
    against per-virtual-channel occupancy and print the latency /
    throughput / saturation table.  ``--sim`` picks the simulator
    (``array`` / ``scalar``; bit-identical, like ``--engine``).

``repro-mesh serve``
    Start the long-lived routing daemon (:mod:`repro.serve`) on one
    generated fault pattern: route queries over newline-delimited JSON,
    micro-batched into single engine calls, with fault churn applied as
    incremental engine deltas (``REPRO_ENGINE_DELTAS``).  ``--journal``
    makes the daemon crash-recoverable (a non-empty journal is replayed
    on start-up); ``--max-pending`` / ``--max-inflight`` bound admission.

``repro-mesh query``
    Client of a running daemon: route explicit or random pairs, stream
    fault/repair/link-fault updates, print the ``status`` payload or
    request a graceful shutdown; ``--wait`` retries the connection while
    a freshly started daemon binds its port, ``--timeout`` bounds each
    request, ``--retries`` retries transient failures with backoff (all
    three ride :class:`repro.serve.retry.RetryPolicy`).

``repro-mesh verify``
    Run the construction verification suite on a generated fault pattern.

``repro-mesh experiments``
    List the paper's figures / ablations and the benchmark targets that
    regenerate them.

Run ``repro-mesh <command> --help`` for the full option list.  The module is
also executable directly: ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro._array_ops import active_backend_key
from repro.api import (
    ConstructionResult,
    MeshSession,
    backend_keys,
    engine_keys,
    router_keys,
    set_default_backend,
    simulator_keys,
    traffic_keys,
)
from repro.core.verify import (
    compare_constructions_report,
    verify_faulty_blocks,
    verify_minimality,
    verify_orthogonal_convexity,
)
from repro.faults.scenario import generate_scenario
from repro.sim.experiments import run_routing_sweep, run_sweep
from repro.sim.figures import (
    figure9_series,
    figure10_series,
    figure11_series,
    format_series_table,
    routing_series,
)
from repro.sim.registry import get_experiment, render_index
from repro.sim.render import render_ascii_chart

#: Registry keys built by the construct/verify commands, in display order.
CONSTRUCT_KEYS = ("fb", "fp", "mfp", "dmfp")


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", type=int, default=200, help="number of faults")
    parser.add_argument("--width", type=int, default=50, help="mesh width (square mesh)")
    parser.add_argument(
        "--distribution",
        choices=("random", "clustered"),
        default="clustered",
        help="fault distribution model",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--cluster-factor",
        type=float,
        default=2.0,
        help="failure-rate multiplier of the clustered model",
    )
    parser.add_argument("--torus", action="store_true", help="use a torus topology")


def _add_routing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--traffic",
        choices=traffic_keys(),
        default="uniform",
        help="synthetic traffic workload (traffic registry key)",
    )
    parser.add_argument(
        "--router",
        choices=router_keys(),
        default="extended-ecube",
        help="router (router registry key)",
    )
    parser.add_argument(
        "--messages", type=int, default=500, help="messages per routed batch"
    )
    parser.add_argument(
        "--engine",
        choices=("auto",) + engine_keys(),
        default="auto",
        help="routing engine (engine registry key; auto picks the batch "
        "kernel when it can serve the request)",
    )
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("auto",) + backend_keys(),
        default="auto",
        help="array backend for the hot primitives (backend registry key; "
        "all backends are bit-identical, unavailable ones fall back to "
        "numpy)",
    )


def _apply_backend(args: argparse.Namespace) -> str:
    """Install ``--backend`` as the process-wide default and return the
    effective key (after any unavailable-backend fallback).

    The selection is also exported through ``REPRO_ARRAY_BACKEND`` so
    worker processes spawned by ``sweep --workers`` inherit it.
    """
    set_default_backend(args.backend)
    os.environ["REPRO_ARRAY_BACKEND"] = args.backend
    return active_backend_key()


def _session_from(args: argparse.Namespace):
    scenario = generate_scenario(
        num_faults=args.faults,
        width=args.width,
        model=args.distribution,
        seed=args.seed,
        torus=args.torus,
        cluster_factor=args.cluster_factor,
    )
    return scenario, MeshSession.from_scenario(scenario)


def _build_models(
    session: MeshSession, keys: Sequence[str] = CONSTRUCT_KEYS
) -> Dict[str, ConstructionResult]:
    return {key: session.build(key) for key in keys}


# -- subcommands -------------------------------------------------------------------


def cmd_construct(args: argparse.Namespace) -> int:
    scenario, session = _session_from(args)
    print(f"scenario: {scenario.describe()}")
    constructions = _build_models(session)
    print(f"{'model':>5} {'regions':>8} {'disabled non-faulty':>20} {'mean size':>10} {'rounds':>7}")
    for result in constructions.values():
        print(
            f"{result.label:>5} {result.num_regions:>8} "
            f"{result.num_disabled_nonfaulty:>20} "
            f"{result.mean_region_size:>10.2f} {result.rounds:>7}"
        )
    if args.render:
        chosen = session.build(args.render)
        print(f"\n{chosen.label} grid ('#' faulty, 'o' disabled non-faulty):")
        print(chosen.grid.render())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    _apply_backend(args)
    fault_counts = args.fault_counts or [100, 200, 300, 400, 500, 600, 700, 800]
    if args.routing:
        points = run_routing_sweep(
            fault_counts=fault_counts,
            trials=args.trials,
            width=args.width,
            distribution=args.distribution,
            router=args.router,
            traffic=args.traffic,
            messages=args.messages,
            torus=args.torus,
            workers=args.workers,
            engine=args.engine,
        )
        figures = [
            routing_series(
                metric=metric,
                distribution=args.distribution,
                traffic=args.traffic,
                router=args.router,
                points=points,
            )
            for metric in ("delivery_rate", "mean_detour")
        ]
    else:
        points = run_sweep(
            fault_counts=fault_counts,
            trials=args.trials,
            width=args.width,
            distribution=args.distribution,
            include_distributed=not args.skip_distributed,
            include_rounds=True,
            torus=args.torus,
            workers=args.workers,
        )
        figures = [
            figure9_series(distribution=args.distribution, points=points),
            figure10_series(distribution=args.distribution, points=points),
        ]
        if not args.skip_distributed:
            figures.append(
                figure11_series(distribution=args.distribution, points=points)
            )
    for figure in figures:
        print(format_series_table(figure))
        if args.chart:
            print()
            print(render_ascii_chart(figure))
        print()
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    backend = _apply_backend(args)
    scenario, session = _session_from(args)
    print(f"scenario: {scenario.describe()}")
    print(
        f"traffic: {args.traffic}, router: {args.router}, "
        f"messages: {args.messages}, engine: {args.engine}, "
        f"backend: {backend}"
    )
    print(
        f"{'model':>5} {'enabled':>8} {'delivery':>9} {'mean hops':>10} "
        f"{'detour':>7} {'abnormal':>9}"
    )
    for key in ("fb", "fp", "mfp"):
        stats = session.route(
            key,
            router=args.router,
            traffic=args.traffic,
            messages=args.messages,
            seed=args.seed,
            engine=args.engine,
        )
        print(
            f"{stats.model:>5} {stats.enabled:>8} {stats.delivery_rate:>9.3f} "
            f"{stats.mean_hops:>10.2f} {stats.mean_detour:>7.2f} "
            f"{stats.abnormal_fraction:>9.3f}"
        )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    backend = _apply_backend(args)
    scenario, session = _session_from(args)
    print(f"scenario: {scenario.describe()}")
    print(
        f"traffic: {args.traffic}, arrival: {args.arrival}, "
        f"router: {args.router}, model: {args.model}, sim: {args.sim}, "
        f"cycles: {args.cycles}, backend: {backend}"
    )
    print(
        f"{'load':>7} {'attempted':>10} {'delivered':>10} {'inflight':>9} "
        f"{'latency':>8} {'queue':>7} {'accepted':>9} {'state':>9}"
    )
    for load in args.loads:
        stats = session.simulate(
            args.model,
            traffic=args.traffic,
            arrival=args.arrival,
            load=load,
            cycles=args.cycles,
            seed=args.seed,
            router=args.router,
            sim=None if args.sim == "auto" else args.sim,
            drain_factor=args.drain_factor,
        )
        state = "deadlock" if stats.deadlocked else (
            "saturated" if stats.saturated else "stable"
        )
        print(
            f"{load:>7.4f} {stats.attempted:>10} {stats.delivered:>10} "
            f"{stats.in_flight:>9} {stats.mean_latency:>8.2f} "
            f"{stats.mean_queueing:>7.2f} {stats.accepted_load:>9.4f} {state:>9}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    backend = _apply_backend(args)
    # Imported lazily: the serving layer is optional machinery on top of
    # the session API.
    from repro.serve import RouteDaemon

    knobs = dict(
        construction=args.model,
        router=args.router,
        engine=None if args.engine == "auto" else args.engine,
        window=args.window,
        max_batch=args.max_batch,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_inflight=args.max_inflight,
        snapshot_every=args.snapshot_every,
        journal_max_bytes=args.journal_max_bytes,
    )
    journal_path = Path(args.journal) if args.journal else None
    if journal_path is not None and journal_path.exists() and journal_path.stat().st_size:
        # A non-empty journal wins over the scenario flags: the daemon
        # resumes the exact session the previous process was serving.
        daemon = RouteDaemon.recover(journal_path, **knobs)
        scenario_line = (
            f"recovered from {journal_path} "
            f"(events replayed: {daemon.recovered['events_replayed']}, "
            f"snapshot version: {daemon.recovered['snapshot_version']})"
        )
    else:
        scenario, session = _session_from(args)
        daemon = RouteDaemon(session, journal=journal_path, **knobs)
        scenario_line = f"scenario: {scenario.describe()}"

    async def run() -> None:
        host, port = await daemon.start()
        print(scenario_line)
        print(
            f"serving on {host}:{port} (model: {args.model}, router: "
            f"{args.router}, engine: {args.engine}, backend: {backend}, "
            f"window: {args.window * 1000:.3g} ms, max-batch: {args.max_batch})",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    print("daemon stopped", flush=True)
    return 0


def _parse_csv_ints(text: str, arity: int, what: str) -> Tuple[int, ...]:
    parts = text.replace(":", ",").split(",")
    if len(parts) != arity:
        raise SystemExit(f"bad {what} {text!r}: expected {arity} integers")
    try:
        return tuple(int(p) for p in parts)
    except ValueError:
        raise SystemExit(f"bad {what} {text!r}: expected integers")


def cmd_query(args: argparse.Namespace) -> int:
    from repro.serve import RetryPolicy, ServeClient, ServeError

    retry = None
    if args.retries:
        retry = RetryPolicy(max_attempts=args.retries + 1)
    # --wait is the daemon start-up grace: retry only the *connection*,
    # on the same backoff engine request retries use (no jitter, so the
    # grace stays a predictable upper bound).
    connect_retry = None
    if args.wait > 0:
        connect_retry = RetryPolicy(
            max_attempts=None,
            base_delay=0.05,
            max_delay=0.5,
            jitter=0.0,
            deadline=args.wait,
        )

    async def run() -> int:
        client = ServeClient(
            args.host, args.port, retry=retry, timeout=args.timeout
        )
        try:
            await client.connect(retry=connect_retry)
        except OSError:
            print(
                f"could not connect to {args.host}:{args.port}",
                file=sys.stderr,
            )
            return 1
        try:
            if args.add_faults:
                nodes = [_parse_csv_ints(n, 2, "node") for n in args.add_faults]
                payload = await client.add_faults(nodes)
                print(json.dumps(payload))
            if args.repair:
                nodes = [_parse_csv_ints(n, 2, "node") for n in args.repair]
                payload = await client.repair(nodes)
                print(json.dumps(payload))
            if args.add_link_faults:
                links = []
                for text in args.add_link_faults:
                    x1, y1, x2, y2 = _parse_csv_ints(text, 4, "link")
                    links.append(((x1, y1), (x2, y2)))
                payload = await client.add_link_faults(links)
                print(json.dumps(payload))
            pairs: List[List[int]] = [
                list(_parse_csv_ints(p, 4, "pair")) for p in args.pairs or ()
            ]
            if args.random:
                import numpy as np

                status = await client.status()
                width = status["mesh"]["width"]
                height = status["mesh"]["height"]
                rng = np.random.default_rng(args.seed)
                for _ in range(args.random):
                    sx, dx = (int(v) for v in rng.integers(0, width, size=2))
                    sy, dy = (int(v) for v in rng.integers(0, height, size=2))
                    pairs.append([sx, sy, dx, dy])
            if pairs:
                payload = await client.route(pairs)
                routes = payload["routes"]
                delivered = sum(1 for r in routes if r["delivered"])
                hops = sum(r["hops"] for r in routes if r["delivered"])
                print(
                    f"routed {len(routes)} pairs: {delivered} delivered "
                    f"({delivered / len(routes):.3f}), "
                    f"mean hops {hops / delivered if delivered else 0.0:.2f}, "
                    f"engine {payload['engine']}, version {payload['version']}"
                )
                if args.verbose:
                    for pair, route in zip(pairs, routes):
                        print(f"  {pair}: {json.dumps(route)}")
            if args.status or not (
                pairs or args.add_faults or args.repair
                or args.add_link_faults or args.shutdown
            ):
                print(json.dumps(await client.status(), indent=2, sort_keys=True))
            if args.shutdown:
                await client.shutdown()
                print("shutdown requested")
            return 0
        except ServeError as exc:
            print(f"daemon error: {exc}", file=sys.stderr)
            return 1
        except (asyncio.TimeoutError, TimeoutError, OSError) as exc:
            detail = f": {exc}" if str(exc) else ""
            print(
                f"request to {args.host}:{args.port} failed "
                f"({type(exc).__name__}){detail}",
                file=sys.stderr,
            )
            return 1
        finally:
            await client.close()

    return asyncio.run(run())


def _parse_hostport(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad address {text!r}: expected HOST:PORT")
    return host, int(port)


def _campaign_spec_from(args: argparse.Namespace):
    """Build the CampaignSpec a ``campaign run`` invocation describes.

    Only flags the user actually passed enter ``params``: the content
    fingerprint canonicalises the params dict, so spelling a planner
    default out explicitly would make the CLI's campaign a different
    campaign than the identical API call.
    """
    from repro.campaign import CampaignSpec

    params = {
        name: value
        for name, value in (
            ("width", args.width),
            ("distribution", args.distribution),
            ("base_seed", args.seed),
            ("cluster_factor", args.cluster_factor),
        )
        if value is not None
    }
    if args.torus:
        params["torus"] = True
    if args.kind in ("construction", "routing") and args.loads:
        raise SystemExit("--loads only applies to --kind latency")
    if args.kind == "construction":
        if args.skip_rounds:
            params["include_rounds"] = False
        return CampaignSpec.construction(
            args.fault_counts, args.trials, models=args.models, **params
        )
    for name, value in (
        ("router", args.router),
        ("traffic", args.traffic),
    ):
        if value is not None:
            params[name] = value
    if args.kind == "routing":
        if args.messages is not None:
            params["messages"] = args.messages
        return CampaignSpec.routing(
            args.fault_counts, args.trials, models=args.models, **params
        )
    if not args.loads:
        raise SystemExit("--kind latency requires --loads")
    for name, value in (
        ("num_faults", args.num_faults),
        ("arrival", args.arrival),
        ("cycles", args.cycles),
    ):
        if value is not None:
            params[name] = value
    return CampaignSpec.latency(
        args.loads, args.trials, models=args.models, **params
    )


def _campaign_execute(args: argparse.Namespace, spec) -> int:
    """Shared run/resume machinery: build the runner, stream progress."""
    from repro.campaign import CampaignRunner, TcpTransport

    transport: object = args.transport
    if args.transport == "tcp":
        # Pre-start the shard server so the bound port can be printed
        # before any worker needs it (start is idempotent).
        if spec is None:
            from repro.campaign import CampaignStore

            store = CampaignStore.open(Path(args.dir))
            spec = store.campaign
            store.close()
        host, port = _parse_hostport(args.listen)
        transport = TcpTransport(spec, host=host, port=port, workers=args.workers)
        transport.start()
        bound_host, bound_port = transport.address
        print(
            f"tcp transport listening on {bound_host}:{bound_port} "
            f"(connect workers with: repro-mesh campaign worker "
            f"{bound_host}:{bound_port})",
            flush=True,
        )

    state = {"last": -1}

    def progress(done: int, total: int) -> None:
        percent = 100 * done // total if total else 100
        if percent >= state["last"] + 5 or done == total:
            state["last"] = percent
            print(f"  {done}/{total} trials ({percent}%)", flush=True)

    runner = CampaignRunner(
        spec,
        args.dir,
        workers=args.workers,
        transport=transport,
        chunk_trials=args.chunk_trials,
        max_inflight=args.max_inflight,
        task_timeout=args.task_timeout,
        max_tasks=args.max_tasks,
        progress=progress if not (args.quiet or args.json) else None,
    )
    try:
        summary = runner.run()
    finally:
        runner.close()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"campaign {summary['fingerprint'][:16]}...: "
            f"{summary['executed']} executed, {summary['skipped']} skipped, "
            f"{summary['rescheduled']} rescheduled, "
            f"{summary['rows_stored']} rows in {summary['chunks_after']} "
            f"chunks, {summary['elapsed']:.2f}s"
            + ("  [complete]" if summary["complete"] else "  [partial]")
        )
    return 0 if summary["complete"] or args.max_tasks is not None else 1


def cmd_campaign_run(args: argparse.Namespace) -> int:
    manifest = Path(args.dir) / "manifest.jsonl"
    # Running against an existing store is resuming; the fingerprint
    # check refuses a directory holding a different campaign.
    spec = None if manifest.exists() else _campaign_spec_from(args)
    return _campaign_execute(args, spec)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _campaign_execute(args, None)


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import campaign_status, format_status

    status = campaign_status(args.dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(format_status(status))
    return 0 if status["complete"] else 1


def cmd_campaign_reduce(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignRunner

    runner = CampaignRunner(None, args.dir, workers=1)
    try:
        points = runner.reduce()
    finally:
        runner.close()
    if args.json:
        print(json.dumps([p.as_dict() for p in points], indent=2))
        return 0
    columns = sorted(points[0].stats) if points else []
    if args.metric:
        columns = [c for c in columns if args.metric in c]
        if not columns:
            raise SystemExit(f"no stored column matches {args.metric!r}")
    for column in columns:
        print(f"{column}:")
        print(f"  {'x':>10} {'n':>8} {'mean':>12} {'ci95':>12}")
        for point in points:
            moments = point.stats[column]
            print(
                f"  {point.x:>10g} {moments.count:>8} "
                f"{moments.mean:>12.4f} {moments.ci95:>12.4f}"
            )
    return 0


def cmd_campaign_worker(args: argparse.Namespace) -> int:
    from repro.campaign import run_tcp_worker

    host, port = _parse_hostport(args.address)
    served = run_tcp_worker(host, port, max_tasks=args.max_tasks)
    print(f"worker done: {served} tasks served")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    if args.key:
        print(get_experiment(args.key).describe())
    else:
        print(render_index())
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    scenario, session = _session_from(args)
    faults = session.faults
    print(f"scenario: {scenario.describe()}")
    constructions = _build_models(session)
    reports = {
        "FB rectangular blocks": verify_faulty_blocks(constructions["fb"].raw, faults),
        "FP orthogonal convexity": verify_orthogonal_convexity(
            constructions["fp"].raw, faults
        ),
        "MFP minimality": verify_minimality(constructions["mfp"].raw, faults),
        "DMFP minimality": verify_minimality(constructions["dmfp"].raw, faults),
        "FB/FP/MFP containment": compare_constructions_report(
            constructions["fb"].raw,
            constructions["fp"].raw,
            constructions["mfp"].raw,
            faults,
        ),
    }
    exit_code = 0
    for name, report in reports.items():
        print(f"{name:<28} {report.summary()}")
        if not report.ok:
            exit_code = 1
    return exit_code


# -- entry point -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Minimum orthogonal convex polygons in 2-D faulty meshes "
        "(Wu & Jiang, IPDPS 2004) -- reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    construct = subparsers.add_parser(
        "construct", help="build FB/FP/MFP/DMFP regions for one fault pattern"
    )
    _add_scenario_arguments(construct)
    construct.add_argument(
        "--render",
        choices=("FB", "FP", "MFP", "DMFP"),
        help="print an ASCII rendering of the chosen model's grid",
    )
    construct.set_defaults(func=cmd_construct)

    sweep = subparsers.add_parser(
        "sweep", help="run the Figure 9/10/11 fault-count sweep"
    )
    sweep.add_argument("--width", type=int, default=100)
    sweep.add_argument(
        "--distribution", choices=("random", "clustered"), default="random"
    )
    sweep.add_argument("--trials", type=int, default=2)
    sweep.add_argument(
        "--fault-counts", type=int, nargs="+", dest="fault_counts", default=None
    )
    sweep.add_argument("--chart", action="store_true", help="also print ASCII charts")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep trials (default: serial)",
    )
    sweep.add_argument(
        "--skip-distributed",
        action="store_true",
        help="skip the DMFP construction (faster; omits Figure 11)",
    )
    sweep.add_argument(
        "--torus", action="store_true", help="sweep a 2-D torus instead of a mesh"
    )
    sweep.add_argument(
        "--routing",
        action="store_true",
        help="run the routing sweep (delivery/detour vs. fault count) instead "
        "of the construction figures",
    )
    _add_routing_arguments(sweep)
    sweep.set_defaults(func=cmd_sweep)

    route = subparsers.add_parser(
        "route", help="route synthetic traffic over FB/FP/MFP regions"
    )
    _add_scenario_arguments(route)
    _add_routing_arguments(route)
    route.set_defaults(func=cmd_route)

    simulate = subparsers.add_parser(
        "simulate",
        help="run the open-loop contention simulator (latency vs. load)",
    )
    _add_scenario_arguments(simulate)
    simulate.add_argument(
        "--model",
        choices=CONSTRUCT_KEYS,
        default="mfp",
        help="fault-region construction to simulate over",
    )
    simulate.add_argument(
        "--traffic",
        choices=tuple(k for k in traffic_keys() if k not in ("poisson", "bursty")),
        default="uniform",
        help="spatial traffic pattern (traffic registry key)",
    )
    simulate.add_argument(
        "--arrival",
        choices=("poisson", "bursty"),
        default="poisson",
        help="open-loop arrival process stamping the injection times",
    )
    simulate.add_argument(
        "--router",
        choices=router_keys(),
        default="extended-ecube",
        help="router (router registry key)",
    )
    simulate.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=[0.01, 0.02, 0.04, 0.08, 0.16],
        help="offered loads in messages per node per cycle",
    )
    simulate.add_argument(
        "--cycles", type=int, default=256, help="injection-window length in cycles"
    )
    simulate.add_argument(
        "--drain-factor",
        type=int,
        default=8,
        help="hard cap multiplier: simulate at most cycles * drain_factor",
    )
    simulate.add_argument(
        "--sim",
        choices=("auto",) + simulator_keys(),
        default="auto",
        help="contention simulator (simulator registry key; the array "
        "simulator and the scalar oracle are bit-identical)",
    )
    _add_backend_argument(simulate)
    simulate.set_defaults(func=cmd_simulate)

    serve = subparsers.add_parser(
        "serve", help="start the long-lived routing daemon (repro.serve)"
    )
    _add_scenario_arguments(serve)
    serve.add_argument(
        "--model",
        choices=CONSTRUCT_KEYS,
        default="mfp",
        help="fault-region construction to serve routes over",
    )
    serve.add_argument(
        "--router",
        choices=router_keys(),
        default="extended-ecube",
        help="router (router registry key)",
    )
    serve.add_argument(
        "--engine",
        choices=("auto",) + engine_keys(),
        default="auto",
        help="routing engine of the coalesced batches",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7654, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--window",
        type=float,
        default=0.001,
        help="coalescing window in seconds (time the first buffered request "
        "waits for company)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="flush once this many pairs are buffered (1 disables coalescing)",
    )
    serve.add_argument(
        "--journal",
        metavar="PATH",
        help="journal mutations to PATH; an existing non-empty journal is "
        "recovered from (scenario flags are then ignored)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        help="write a journal snapshot every N events (bounds replay)",
    )
    serve.add_argument(
        "--journal-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="rotate the journal (compact to one fresh snapshot via an "
        "atomic swap) whenever it outgrows this many bytes",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=4096,
        help="shed route requests once this many pairs are buffered "
        "(admission control; shed responses carry retry_after)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="per-connection cap on concurrently handled requests "
        "(excess pipelined lines wait in the socket)",
    )
    _add_backend_argument(serve)
    serve.set_defaults(func=cmd_serve)

    query = subparsers.add_parser(
        "query", help="query or mutate a running routing daemon"
    )
    query.add_argument("--host", default="127.0.0.1", help="daemon address")
    query.add_argument("--port", type=int, default=7654, help="daemon port")
    query.add_argument(
        "--wait",
        type=float,
        default=0.0,
        help="retry the connection for up to this many seconds (daemon "
        "start-up grace)",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout; route requests also carry it to the "
        "daemon as deadline_ms",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry failed requests up to N times (exponential backoff; "
        "overloaded sheds honour the daemon's retry_after hint)",
    )
    query.add_argument(
        "--pairs",
        nargs="+",
        metavar="SX,SY,DX,DY",
        help="route explicit endpoint pairs",
    )
    query.add_argument(
        "--random",
        type=int,
        default=0,
        metavar="N",
        help="route N random pairs drawn inside the daemon's mesh",
    )
    query.add_argument("--seed", type=int, default=0, help="seed of --random")
    query.add_argument(
        "--add-faults", nargs="+", metavar="X,Y", help="inject node faults"
    )
    query.add_argument(
        "--repair", nargs="+", metavar="X,Y", help="repair node faults"
    )
    query.add_argument(
        "--add-link-faults",
        nargs="+",
        metavar="X1,Y1:X2,Y2",
        help="inject link faults (mapped onto endpoint node faults)",
    )
    query.add_argument(
        "--status", action="store_true", help="print the daemon status payload"
    )
    query.add_argument(
        "--shutdown", action="store_true", help="request a graceful shutdown"
    )
    query.add_argument(
        "--verbose", action="store_true", help="print one line per routed pair"
    )
    query.set_defaults(func=cmd_query)

    campaign = subparsers.add_parser(
        "campaign",
        help="run/resume/inspect resumable content-addressed trial campaigns",
    )
    campaign_verbs = campaign.add_subparsers(dest="campaign_verb", required=True)

    def _add_campaign_runner_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("dir", help="campaign store directory")
        sub.add_argument(
            "--workers", type=int, default=1,
            help="local worker processes (ignored by the tcp transport)",
        )
        sub.add_argument(
            "--transport", choices=("local", "tcp"), default="local",
            help="trial transport: in-process pool or a TCP shard server "
            "remote workers dial into",
        )
        sub.add_argument(
            "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
            help="bind address of the tcp transport (port 0 picks a free "
            "port, printed at start-up)",
        )
        sub.add_argument(
            "--chunk-trials", type=int, default=64,
            help="trials per dispatched task (the store's chunk size)",
        )
        sub.add_argument(
            "--max-inflight", type=int, default=None,
            help="in-flight task window (default: 2 x workers)",
        )
        sub.add_argument(
            "--task-timeout", type=float, default=300.0,
            help="seconds a silent task waits before re-dispatch",
        )
        sub.add_argument(
            "--max-tasks", type=int, default=None,
            help="stop after N completed tasks (leaves a valid partial "
            "store to resume from)",
        )
        sub.add_argument(
            "--quiet", action="store_true", help="suppress progress lines"
        )
        sub.add_argument(
            "--json", action="store_true", help="print the summary as JSON"
        )

    campaign_run = campaign_verbs.add_parser(
        "run",
        help="run a campaign (an existing store directory is resumed; "
        "completed trials are skipped by content key)",
    )
    _add_campaign_runner_arguments(campaign_run)
    campaign_run.add_argument(
        "--kind", choices=("construction", "routing", "latency"),
        default="construction", help="trial kind (campaign-kind registry key)",
    )
    campaign_run.add_argument(
        "--fault-counts", type=int, nargs="+", dest="fault_counts",
        default=[100, 200, 300, 400, 500, 600, 700, 800],
        help="sweep axis of construction/routing campaigns",
    )
    campaign_run.add_argument(
        "--loads", type=float, nargs="+", default=None,
        help="sweep axis of latency campaigns (messages/node/cycle)",
    )
    campaign_run.add_argument("--trials", type=int, default=100)
    campaign_run.add_argument(
        "--models", nargs="+", default=None,
        help="construction registry keys (default: the kind's usual set)",
    )
    campaign_run.add_argument("--width", type=int, default=None)
    campaign_run.add_argument(
        "--distribution", choices=("random", "clustered"), default=None
    )
    campaign_run.add_argument(
        "--seed", type=int, default=None, help="base seed of the trial plan"
    )
    campaign_run.add_argument("--cluster-factor", type=float, default=None)
    campaign_run.add_argument("--torus", action="store_true")
    campaign_run.add_argument(
        "--skip-rounds", action="store_true",
        help="construction campaigns: skip the rounds measurement",
    )
    campaign_run.add_argument(
        "--router", choices=router_keys(), default=None,
        help="routing/latency campaigns: router registry key",
    )
    campaign_run.add_argument(
        "--traffic", default=None,
        help="routing/latency campaigns: traffic registry key",
    )
    campaign_run.add_argument(
        "--messages", type=int, default=None,
        help="routing campaigns: messages per trial",
    )
    campaign_run.add_argument(
        "--num-faults", type=int, default=None,
        help="latency campaigns: faults of every trial scenario",
    )
    campaign_run.add_argument(
        "--arrival", choices=("poisson", "bursty"), default=None,
        help="latency campaigns: arrival process",
    )
    campaign_run.add_argument(
        "--cycles", type=int, default=None,
        help="latency campaigns: injection-window length",
    )
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_resume = campaign_verbs.add_parser(
        "resume",
        help="resume the campaign recorded in a store directory "
        "(kind/axis flags come from the store, not the command line)",
    )
    _add_campaign_runner_arguments(campaign_resume)
    campaign_resume.set_defaults(func=cmd_campaign_resume)

    campaign_status_parser = campaign_verbs.add_parser(
        "status", help="per-point completion report of a store directory"
    )
    campaign_status_parser.add_argument("dir", help="campaign store directory")
    campaign_status_parser.add_argument(
        "--json", action="store_true", help="print the status dict as JSON"
    )
    campaign_status_parser.set_defaults(func=cmd_campaign_status)

    campaign_reduce = campaign_verbs.add_parser(
        "reduce",
        help="stream the store through the Welford reducers and print "
        "per-point means with 95%% confidence intervals",
    )
    campaign_reduce.add_argument("dir", help="campaign store directory")
    campaign_reduce.add_argument(
        "--metric", default=None,
        help="only print stored columns whose name contains this substring",
    )
    campaign_reduce.add_argument(
        "--json", action="store_true", help="print the reduced points as JSON"
    )
    campaign_reduce.set_defaults(func=cmd_campaign_reduce)

    campaign_worker = campaign_verbs.add_parser(
        "worker", help="serve trials to a tcp-transport campaign run"
    )
    campaign_worker.add_argument(
        "address", metavar="HOST:PORT", help="address the run is listening on"
    )
    campaign_worker.add_argument(
        "--max-tasks", type=int, default=None,
        help="disconnect after serving N tasks",
    )
    campaign_worker.set_defaults(func=cmd_campaign_worker)

    verify = subparsers.add_parser(
        "verify", help="run the construction verification suite"
    )
    _add_scenario_arguments(verify)
    verify.set_defaults(func=cmd_verify)

    experiments = subparsers.add_parser(
        "experiments", help="list the paper's figures and their bench targets"
    )
    experiments.add_argument(
        "key", nargs="?", default=None,
        help="experiment key (e.g. fig9a); omit to list everything",
    )
    experiments.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
