"""Deterministic fault injection for the serving stack: a chaos TCP proxy.

:class:`ChaosTransport` is a line-oriented TCP relay (in the spirit of
toxiproxy) that sits between a :class:`~repro.serve.client.ServeClient`
and a :class:`~repro.serve.daemon.RouteDaemon` and injects transport
faults decided by a *seeded* RNG:

* **drop** -- a request or response line silently vanishes;
* **delay** -- a line is held for a bounded random interval before
  forwarding;
* **partial write** -- a strict prefix of a line is forwarded, then the
  connection is torn down (the reader sees a truncated line);
* **disconnect** -- both directions of the proxied connection are
  closed mid-conversation.

Faults are rolled per *line*, in the order lines traverse the proxy, from
one shared ``random.Random(seed)`` -- so a sequential single-client
workload replays the same fault pattern for the same seed.  What the
resilience differential actually asserts is stronger than timing
determinism, though: a retrying client driven through this proxy must
produce *bit-identical* route outcomes and a bit-identical final session
fingerprint to the same workload run fault-free, because every injected
fault is survivable (drops and truncations trigger retries, idempotency
ids make retried mutations apply exactly once, and routes are pure
queries of the session state).

The proxy never rewrites payload bytes: a forwarded line is forwarded
verbatim, so no fault can silently corrupt a response into a different
*valid* one.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.serve.protocol import MAX_LINE_BYTES


@dataclass(frozen=True)
class ChaosConfig:
    """Per-line fault probabilities for a :class:`ChaosTransport`.

    Rates are independent probabilities in ``[0, 1]``, checked in the
    order drop -> disconnect -> partial write -> delay (at most one
    fault fires per line; a dropped line cannot also be delayed).
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    #: Upper bound of an injected delay, seconds (uniform in [0, max]).
    max_delay: float = 0.01
    disconnect_rate: float = 0.0
    partial_write_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "delay_rate", "disconnect_rate", "partial_write_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate!r}")
        if self.max_delay < 0:
            raise ValueError("max_delay must be >= 0")


class ChaosTransport:
    """A fault-injecting TCP proxy in front of a routing daemon.

    Parameters
    ----------
    target_host, target_port:
        The real daemon's address.
    config:
        Fault probabilities and the RNG seed.

    Usage::

        chaos = ChaosTransport(host, port, ChaosConfig(drop_rate=0.2, seed=7))
        await chaos.start()
        client = ServeClient(*chaos.address, retry=policy, timeout=0.5)

    ``injected`` counts the faults actually fired, so tests can assert
    the run was genuinely hostile rather than accidentally fault-free.
    """

    def __init__(
        self, target_host: str, target_port: int, config: Optional[ChaosConfig] = None
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.config = config or ChaosConfig()
        self._rng = random.Random(self.config.seed)
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self.injected: Dict[str, int] = {
            "lines": 0,
            "drops": 0,
            "delays": 0,
            "partial_writes": 0,
            "disconnects": 0,
        }

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> "ChaosTransport":
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in tuple(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._conn_tasks.clear()

    async def __aenter__(self) -> "ChaosTransport":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port, limit=MAX_LINE_BYTES
            )
        except OSError:
            writer.close()
            return
        writers = (writer, up_writer)
        pumps = (
            asyncio.ensure_future(self._pump(reader, up_writer, writers)),
            asyncio.ensure_future(self._pump(up_reader, writer, writers)),
        )
        for pump in pumps:
            self._conn_tasks.add(pump)
            pump.add_done_callback(self._conn_tasks.discard)
        await asyncio.gather(*pumps, return_exceptions=True)
        for side in writers:
            _close_quietly(side)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        dest: asyncio.StreamWriter,
        writers: Tuple[asyncio.StreamWriter, asyncio.StreamWriter],
    ) -> None:
        cfg = self.config
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # Upstream EOF mid-line: forward the fragment verbatim
                    # and stop (the reader sees the same truncation).
                    dest.write(line)
                    await dest.drain()
                    break
                self.injected["lines"] += 1
                roll = self._rng.random
                if cfg.drop_rate and roll() < cfg.drop_rate:
                    self.injected["drops"] += 1
                    continue
                if cfg.disconnect_rate and roll() < cfg.disconnect_rate:
                    self.injected["disconnects"] += 1
                    for side in writers:
                        _close_quietly(side)
                    break
                if cfg.partial_write_rate and roll() < cfg.partial_write_rate:
                    self.injected["partial_writes"] += 1
                    cut = 1 + self._rng.randrange(max(len(line) - 1, 1))
                    dest.write(line[:cut])
                    await dest.drain()
                    for side in writers:
                        _close_quietly(side)
                    break
                if cfg.delay_rate and roll() < cfg.delay_rate:
                    self.injected["delays"] += 1
                    await asyncio.sleep(self._rng.uniform(0.0, cfg.max_delay))
                dest.write(line)
                await dest.drain()
        except (OSError, asyncio.CancelledError, ValueError):
            pass
        finally:
            _close_quietly(dest)


def _close_quietly(writer: asyncio.StreamWriter) -> None:
    try:
        if not writer.is_closing():
            writer.close()
    except Exception:  # pragma: no cover - transport already dead
        pass
