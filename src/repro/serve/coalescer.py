"""Micro-batching coalescer: many concurrent route requests, one kernel call.

The batch engine's lockstep kernel amortises its per-call setup (jump-table
lookups, frontier bookkeeping, array allocation) over the whole batch, so a
daemon that routes each request's pairs individually throws that advantage
away.  :class:`RouteCoalescer` buffers the pairs of concurrent ``route``
requests and flushes them as *one* concatenated batch when either trigger
fires:

* the **window** timer expires (default 1 ms after the first pending
  request), or
* the pending pair count reaches **max_batch** (default 256), whichever
  comes first.

``max_batch=1`` degenerates to one-flush-per-request -- the uncoalesced
baseline the serving benchmark compares against.

The flush callback receives the pending :class:`PendingRoute` entries and
must resolve each entry's future with that request's slice of the batch
outcome.  Because each request's pairs occupy a contiguous slice of the
concatenated batch, and the batch engine's per-message outcomes are
bit-identical to scalar per-pair routes (the engine's own differential
contract), coalesced responses are bit-identical to individually routed
requests -- asserted end-to-end by ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: One route endpoint pair: (src_x, src_y, dst_x, dst_y).
Pair = Tuple[int, int, int, int]


@dataclass
class PendingRoute:
    """One buffered ``route`` request awaiting a batch flush."""

    pairs: Sequence[Pair]
    future: "asyncio.Future[Any]"
    #: Absolute ``loop.time()`` after which the request is worthless; the
    #: daemon's flush drops expired entries instead of routing them.
    deadline: Optional[float] = None


@dataclass
class CoalescerStats:
    """Counters describing how well requests coalesced."""

    #: ``route`` requests submitted.
    requests: int = 0
    #: Endpoint pairs submitted (>= requests; a request may carry many).
    pairs: int = 0
    #: Batch flushes executed (each is one engine call).
    flushes: int = 0
    #: Flushes that merged more than one request.
    coalesced_flushes: int = 0
    #: Flushes triggered by the window timer / by the max_batch cap.
    timer_flushes: int = 0
    size_flushes: int = 0
    #: Largest number of pairs a single flush carried.
    max_flush_pairs: int = 0

    @property
    def coalesce_ratio(self) -> float:
        """Mean requests merged per engine call (1.0 = no coalescing)."""
        return self.requests / self.flushes if self.flushes else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "pairs": self.pairs,
            "flushes": self.flushes,
            "coalesced_flushes": self.coalesced_flushes,
            "timer_flushes": self.timer_flushes,
            "size_flushes": self.size_flushes,
            "max_flush_pairs": self.max_flush_pairs,
            "coalesce_ratio": round(self.coalesce_ratio, 4),
        }


class RouteCoalescer:
    """Buffer concurrent route submissions into single batch-engine calls.

    Parameters
    ----------
    flush:
        ``flush(pending)`` routes the concatenated pairs of the pending
        requests and resolves each entry's future (with its result on
        success, or the raised exception on failure).  Called on the event
        loop; the engine call is CPU-bound, so there is nothing to await.
    window:
        Seconds to wait after the first buffered request before flushing.
    max_batch:
        Flush immediately once this many pairs are pending.  ``1`` turns
        coalescing off (every submission flushes alone).
    """

    def __init__(
        self,
        flush: Callable[[List[PendingRoute]], None],
        *,
        window: float = 0.001,
        max_batch: int = 256,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush = flush
        self.window = window
        self.max_batch = max_batch
        self.stats = CoalescerStats()
        self._pending: List[PendingRoute] = []
        self._pending_pairs = 0
        self._timer: Optional[asyncio.TimerHandle] = None

    @property
    def queue_depth(self) -> int:
        """Endpoint pairs currently buffered (the ``status`` queue depth)."""
        return self._pending_pairs

    async def submit(
        self, pairs: Sequence[Pair], *, deadline: Optional[float] = None
    ) -> Any:
        """Buffer one request's pairs; resolves with its slice of the flush.

        *deadline* is an absolute ``loop.time()``; the flush callback may
        drop entries whose deadline passed while they were buffered.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        self._pending.append(
            PendingRoute(pairs=pairs, future=future, deadline=deadline)
        )
        self._pending_pairs += len(pairs)
        self.stats.requests += 1
        self.stats.pairs += len(pairs)
        if self._pending_pairs >= self.max_batch:
            self.stats.size_flushes += 1
            self.flush_now()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._on_timer)
        return await future

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self.stats.timer_flushes += 1
            self.flush_now()

    def flush_now(self) -> None:
        """Flush the buffered requests synchronously (no-op when empty).

        The daemon calls this before applying a fault mutation, so every
        already-buffered request still routes on the pre-mutation state it
        was submitted under.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._pending_pairs = 0
        self.stats.flushes += 1
        if len(pending) > 1:
            self.stats.coalesced_flushes += 1
        flush_pairs = sum(len(entry.pairs) for entry in pending)
        self.stats.max_flush_pairs = max(self.stats.max_flush_pairs, flush_pairs)
        try:
            self._flush(pending)
        except Exception as exc:  # pragma: no cover - engine bugs only
            for entry in pending:
                if not entry.future.done():
                    entry.future.set_exception(exc)
        for entry in pending:
            if not entry.future.done():  # pragma: no cover - flush contract
                entry.future.set_exception(
                    RuntimeError("flush resolved no result for a pending request")
                )

    async def drain(self) -> None:
        """Flush whatever is buffered and wait for the results (shutdown)."""
        self.flush_now()
        # Futures resolve synchronously inside flush_now; yield once so
        # submitters scheduled behind us observe their results.
        await asyncio.sleep(0)
