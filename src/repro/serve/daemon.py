"""The asyncio routing daemon: warm session state behind an NDJSON socket.

:class:`RouteDaemon` owns one long-lived :class:`~repro.api.MeshSession`
(and through it the cached routers, ring geometry, jump tables and packed
rings of the routing facade) and serves verbs over the protocol of
:mod:`repro.serve.protocol`:

``route``
    Route endpoint pairs.  Concurrent requests are merged by the
    micro-batching coalescer (:mod:`repro.serve.coalescer`) into single
    batch-engine calls; per-pair outcomes are bit-identical to routing
    each pair alone.
``add_faults`` / ``repair`` / ``add_link_faults``
    Stream fault churn into the session.  Buffered route requests are
    flushed first (they route on the state they were submitted under),
    then the mutation lands; the next flush's router is delta-patched
    from its predecessor (``REPRO_ENGINE_DELTAS``) instead of rebuilt.
``status``
    Health and statistics: uptime, queue depth, coalescer counters
    (including the coalesce ratio), session ``cache_info``, the
    effective engine/backend, and the mesh shape.
``simulate``
    One open-loop contention simulation on the warm
    :class:`~repro.netsim.NetSimSession` (scalar summary fields only).
``ping`` / ``shutdown``
    Liveness probe; graceful drain-and-stop.

The daemon is fully usable in-process (``await daemon.handle(request)``,
or the :class:`~repro.serve.client.InProcessClient` wrapper) -- the TCP
layer is only engaged by :meth:`start`.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import _array_ops
from repro.api.session import MeshSession
from repro.faults.scenario import FaultScenario
from repro.routing.engine import (
    REASONS,
    engine_deltas_enabled,
    resolve_engine,
    route_batch,
)
from repro.routing.traffic import TrafficBatch
from repro.serve.coalescer import Pair, PendingRoute, RouteCoalescer
from repro.serve.protocol import (
    E_BAD_LINKS,
    E_BAD_NODES,
    E_BAD_PAIR,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_SHUTTING_DOWN,
    E_UNKNOWN_OP,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.types import Coord


def _coerce_coord(value: Any, code: str) -> Coord:
    try:
        x, y = value
        return (int(x), int(y))
    except (TypeError, ValueError):
        raise ProtocolError(code, f"not an (x, y) coordinate: {value!r}")


class RouteDaemon:
    """One warm mesh session served over verbs (in-process or TCP).

    Parameters
    ----------
    session:
        The session to serve (built from *scenario* when omitted, or an
        empty default 32x32 mesh when both are omitted).
    scenario:
        A :class:`~repro.faults.scenario.FaultScenario` to preload.
    construction, router, engine:
        Registry keys of the served construction / router, and the engine
        selection passed to :func:`~repro.routing.engine.resolve_engine`
        per flush (``None`` = the ambient ``REPRO_ROUTE_ENGINE`` rule).
    window, max_batch:
        Coalescer knobs (seconds, pairs); ``max_batch=1`` disables
        coalescing.
    host, port:
        TCP bind address used by :meth:`start` (``port=0`` picks a free
        port, readable from :attr:`address`).
    """

    def __init__(
        self,
        session: Optional[MeshSession] = None,
        *,
        scenario: Optional[FaultScenario] = None,
        construction: str = "mfp",
        router: str = "extended-ecube",
        engine: Optional[str] = None,
        window: float = 0.001,
        max_batch: int = 256,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if session is None:
            if scenario is not None:
                session = MeshSession.from_scenario(scenario)
            else:
                session = MeshSession(width=32)
        self.session = session
        # Warm the routing facade eagerly: the daemon exists to own warm
        # state, and this also seeds the engine counters in cache_info.
        session.routing
        self.construction = construction
        self.router = router
        self.engine = engine
        self.host = host
        self.port = port
        self.coalescer = RouteCoalescer(
            self._flush_routes, window=window, max_batch=max_batch
        )
        self.op_counts: "Counter[str]" = Counter()
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._closing = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_at: Optional[float] = None
        self._last_engine = ""

    # -- routing ---------------------------------------------------------------------

    def _flush_routes(self, pending: List[PendingRoute]) -> None:
        """Route the concatenated pairs of one coalesced flush.

        Runs synchronously on the event loop (the kernel is CPU-bound).
        Each request's pairs occupy a contiguous slice of the batch, so
        fanning outcomes back is pure slicing.
        """
        pairs = np.asarray(
            [pair for entry in pending for pair in entry.pairs], dtype=np.int64
        ).reshape(-1, 4)
        batch = TrafficBatch(
            src_x=pairs[:, 0].copy(),
            src_y=pairs[:, 1].copy(),
            dst_x=pairs[:, 2].copy(),
            dst_y=pairs[:, 3].copy(),
        )
        router_obj = self.session.routing.router(self.router, self.construction)
        spec = resolve_engine(router_obj, self.engine, False)
        self._last_engine = spec.key
        routes: List[Dict[str, Any]]
        if spec.key == "batch":
            outcome = route_batch(router_obj, batch)
            delivered = outcome.status == 1
            routes = [
                {
                    "delivered": bool(delivered[i]),
                    "reason": REASONS[int(outcome.status[i])],
                    "hops": int(outcome.hops[i]),
                    "abnormal_hops": int(outcome.abnormal_hops[i]),
                    "minimal_hops": int(outcome.minimal_hops[i]),
                }
                for i in range(len(outcome))
            ]
        else:
            routes = []
            for source, destination in batch.pairs():
                result = router_obj.route(source, destination)
                routes.append(
                    {
                        "delivered": result.delivered,
                        "reason": result.reason,
                        "hops": result.hops,
                        "abnormal_hops": result.abnormal_hops,
                        # hops - detour == the fault-free Manhattan distance.
                        "minimal_hops": result.hops - result.detour,
                    }
                )
        version = self.session.version
        offset = 0
        for entry in pending:
            count = len(entry.pairs)
            entry.future.set_result(
                {
                    "routes": routes[offset : offset + count],
                    "version": version,
                    "engine": spec.key,
                }
            )
            offset += count

    def _parse_pairs(self, payload: Dict[str, Any]) -> List[Pair]:
        if "pairs" in payload:
            raw = payload["pairs"]
        elif "src" in payload and "dst" in payload:
            raw = [[*payload["src"], *payload["dst"]]]
        else:
            raise ProtocolError(E_BAD_PAIR, "route needs 'pairs' or 'src'/'dst'")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_PAIR, "'pairs' must be a non-empty list")
        topology = self.session.topology
        width, height = topology.width, topology.height
        pairs: List[Pair] = []
        for item in raw:
            try:
                sx, sy, dx, dy = (int(v) for v in item)
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_BAD_PAIR, f"not a [sx, sy, dx, dy] pair: {item!r}"
                )
            for x, y in ((sx, sy), (dx, dy)):
                if not (0 <= x < width and 0 <= y < height):
                    raise ProtocolError(
                        E_BAD_PAIR,
                        f"endpoint {(x, y)} outside the {width}x{height} mesh",
                    )
            pairs.append((sx, sy, dx, dy))
        return pairs

    def _parse_nodes(self, payload: Dict[str, Any]) -> List[Coord]:
        raw = payload.get("nodes")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_NODES, "'nodes' must be a non-empty list")
        nodes = [_coerce_coord(item, E_BAD_NODES) for item in raw]
        topology = self.session.topology
        for node in nodes:
            try:
                topology.validate(node)
            except ValueError as exc:
                raise ProtocolError(E_BAD_NODES, str(exc))
        return nodes

    def _parse_links(
        self, payload: Dict[str, Any]
    ) -> List[Tuple[Coord, Coord]]:
        raw = payload.get("links")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_LINKS, "'links' must be a non-empty list")
        links: List[Tuple[Coord, Coord]] = []
        for item in raw:
            try:
                a, b = item
            except (TypeError, ValueError):
                raise ProtocolError(E_BAD_LINKS, f"not an [a, b] link: {item!r}")
            links.append(
                (_coerce_coord(a, E_BAD_LINKS), _coerce_coord(b, E_BAD_LINKS))
            )
        return links

    # -- verb handlers ---------------------------------------------------------------

    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; always returns a response dict."""
        request_id = request.get("id")
        op = request.get("op")
        if not isinstance(op, str):
            return error_response(E_BAD_REQUEST, "missing 'op' verb", request_id)
        self.op_counts[op] += 1
        if self._closing and op not in ("status", "ping"):
            return error_response(
                E_SHUTTING_DOWN, "daemon is draining", request_id
            )
        try:
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                return error_response(E_UNKNOWN_OP, f"unknown op {op!r}", request_id)
            payload = await handler(request)
            return ok_response(payload, request_id)
        except ProtocolError as exc:
            return error_response(exc.code, str(exc), request_id)
        except Exception as exc:  # noqa: BLE001 - daemon must not die on a verb
            return error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}", request_id)

    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    async def _op_route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        pairs = self._parse_pairs(request)
        return await self.coalescer.submit(pairs)

    def _mutation_payload(self, changed: List[Coord], key: str) -> Dict[str, Any]:
        return {
            key: [list(node) for node in changed],
            "version": self.session.version,
            "num_faults": self.session.num_faults,
        }

    async def _op_add_faults(self, request: Dict[str, Any]) -> Dict[str, Any]:
        nodes = self._parse_nodes(request)
        # Buffered routes were submitted before this mutation: flush them
        # against the pre-mutation state first.
        self.coalescer.flush_now()
        return self._mutation_payload(self.session.add_faults(nodes), "added")

    async def _op_repair(self, request: Dict[str, Any]) -> Dict[str, Any]:
        nodes = self._parse_nodes(request)
        self.coalescer.flush_now()
        return self._mutation_payload(self.session.remove_faults(nodes), "removed")

    async def _op_add_link_faults(self, request: Dict[str, Any]) -> Dict[str, Any]:
        links = self._parse_links(request)
        self.coalescer.flush_now()
        try:
            added = self.session.add_link_faults(
                links, prefer_lower=bool(request.get("prefer_lower", True))
            )
        except ValueError as exc:
            raise ProtocolError(E_BAD_LINKS, str(exc))
        return self._mutation_payload(added, "added")

    async def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        session = self.session
        topology = session.topology
        uptime = (
            loop.time() - self._started_at if self._started_at is not None else 0.0
        )
        return {
            "uptime": round(uptime, 6),
            "serving": not self._closing,
            "queue_depth": self.coalescer.queue_depth,
            "coalescer": self.coalescer.stats.as_dict(),
            "requests": dict(self.op_counts),
            "mesh": {
                "width": topology.width,
                "height": topology.height,
                "torus": type(topology).__name__ == "Torus2D",
                "faults": session.num_faults,
                "components": len(session.components()),
            },
            "construction": self.construction,
            "router": self.router,
            "engine": self._last_engine or (self.engine or "auto"),
            "engine_deltas": engine_deltas_enabled(),
            "backend": _array_ops.active_backend_key(),
            "cache_info": dict(session.cache_info),
            "version": session.version,
        }

    async def _op_simulate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.coalescer.flush_now()
        stats = self.session.simulate(
            request.get("construction", self.construction),
            traffic=request.get("traffic", "uniform"),
            load=float(request.get("load", 0.05)),
            cycles=int(request.get("cycles", 256)),
            seed=int(request.get("seed", 0)),
            router=request.get("router", self.router),
        )
        return {
            "attempted": stats.attempted,
            "delivered": stats.delivered,
            "unroutable": stats.unroutable,
            "in_flight": stats.in_flight,
            "cycles_run": stats.cycles_run,
            "total_latency": int(stats.total_latency),
            "deadlocked": stats.deadlocked,
            "sim": stats.sim,
            "version": self.session.version,
        }

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        asyncio.get_running_loop().create_task(self.stop())
        return {"stopping": True}

    # -- TCP layer -------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not listening")
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def start(self) -> Tuple[str, int]:
        """Bind the TCP listener; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._stopped = asyncio.Event()
        self._started_at = asyncio.get_running_loop().time()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request) completes."""
        if self._stopped is None:
            raise RuntimeError("call start() first")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: flush buffered routes, then close the listener."""
        if self._closing:
            return
        self._closing = True
        await self.coalescer.drain()
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in tuple(self._writers):
            writer.close()
        if self._stopped is not None:
            self._stopped.set()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with write_lock:
                        writer.write(
                            encode(error_response(E_BAD_REQUEST, "request line too long"))
                        )
                        await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            request = decode_line(line)
        except ProtocolError as exc:
            response = error_response(exc.code, str(exc))
        else:
            response = await self.handle(request)
        async with write_lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except ConnectionError:  # pragma: no cover - client went away
                pass
