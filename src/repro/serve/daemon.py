"""The asyncio routing daemon: warm session state behind an NDJSON socket.

:class:`RouteDaemon` owns one long-lived :class:`~repro.api.MeshSession`
(and through it the cached routers, ring geometry, jump tables and packed
rings of the routing facade) and serves verbs over the protocol of
:mod:`repro.serve.protocol`:

``route``
    Route endpoint pairs.  Concurrent requests are merged by the
    micro-batching coalescer (:mod:`repro.serve.coalescer`) into single
    batch-engine calls; per-pair outcomes are bit-identical to routing
    each pair alone.
``add_faults`` / ``repair`` / ``add_link_faults``
    Stream fault churn into the session.  Buffered route requests are
    flushed first (they route on the state they were submitted under),
    then the mutation lands; the next flush's router is delta-patched
    from its predecessor (``REPRO_ENGINE_DELTAS``) instead of rebuilt.
``status``
    Health and statistics: uptime, queue depth, coalescer counters
    (including the coalesce ratio), session ``cache_info``, the
    effective engine/backend, and the mesh shape.
``simulate``
    One open-loop contention simulation on the warm
    :class:`~repro.netsim.NetSimSession` (scalar summary fields only).
``ping`` / ``shutdown``
    Liveness probe; graceful drain-and-stop.

The daemon is fully usable in-process (``await daemon.handle(request)``,
or the :class:`~repro.serve.client.InProcessClient` wrapper) -- the TCP
layer is only engaged by :meth:`start`.

Resilience (see also :mod:`repro.serve.journal` and
:mod:`repro.serve.retry`):

* **Admission control** -- route requests beyond ``max_pending``
  buffered pairs are shed with ``overloaded`` plus a ``retry_after``
  backoff hint instead of queueing unboundedly, and each TCP connection
  is limited to ``max_inflight`` concurrently-served requests (the
  reader stops consuming lines until one finishes -- transport-level
  backpressure).
* **Deadline propagation** -- a ``route`` request may carry
  ``deadline_ms``; entries whose deadline passes while buffered are
  dropped at flush time with ``deadline-exceeded`` instead of wasting
  engine work on an answer nobody is waiting for.
* **Exactly-once mutations** -- mutating verbs may carry a
  client-supplied ``idem`` id; duplicates (a retry whose original
  response was lost) replay the journaled payload without re-applying.
* **Graceful degradation** -- an engine exception inside a coalesced
  flush falls back to re-routing the batch on the scalar engine
  (``degraded_flushes`` counts the events in ``status``).
* **Crash recovery** -- with a ``journal``, every applied mutation is
  appended to an NDJSON event log (snapshot every ``snapshot_every``
  events); :meth:`recover` rebuilds the exact session state of a killed
  daemon and keeps appending to the same file.
"""

from __future__ import annotations

import asyncio
from collections import Counter, OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import _array_ops
from repro.api.session import MeshSession
from repro.faults.scenario import FaultScenario
from repro.routing.engine import (
    REASONS,
    engine_deltas_enabled,
    resolve_engine,
    route_batch,
)
from repro.routing.traffic import TrafficBatch
from repro.serve.coalescer import Pair, PendingRoute, RouteCoalescer
from repro.serve.journal import (
    IDEM_CACHE_SIZE,
    Journal,
    load_journal,
    replay_events,
)
from repro.serve.protocol import (
    E_BAD_LINKS,
    E_BAD_NODES,
    E_BAD_PAIR,
    E_BAD_REQUEST,
    E_DEADLINE,
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_UNKNOWN_OP,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.types import Coord


def _coerce_coord(value: Any, code: str) -> Coord:
    try:
        x, y = value
        return (int(x), int(y))
    except (TypeError, ValueError):
        raise ProtocolError(code, f"not an (x, y) coordinate: {value!r}")


class RouteDaemon:
    """One warm mesh session served over verbs (in-process or TCP).

    Parameters
    ----------
    session:
        The session to serve (built from *scenario* when omitted, or an
        empty default 32x32 mesh when both are omitted).
    scenario:
        A :class:`~repro.faults.scenario.FaultScenario` to preload.
    construction, router, engine:
        Registry keys of the served construction / router, and the engine
        selection passed to :func:`~repro.routing.engine.resolve_engine`
        per flush (``None`` = the ambient ``REPRO_ROUTE_ENGINE`` rule).
    window, max_batch:
        Coalescer knobs (seconds, pairs); ``max_batch=1`` disables
        coalescing.
    host, port:
        TCP bind address used by :meth:`start` (``port=0`` picks a free
        port, readable from :attr:`address`).
    max_pending:
        Admission-control cap on buffered route pairs: a ``route``
        request that would push the coalescer queue past this is shed
        with ``overloaded`` + ``retry_after`` instead of queueing.
    max_inflight:
        Per-TCP-connection cap on concurrently-served requests; the
        connection's reader stops consuming lines (transport
        backpressure) until one completes.
    journal:
        Path (or open :class:`~repro.serve.journal.Journal`) of the
        append-only mutation log.  A fresh file is seeded with a
        snapshot of the current session; a path that already holds
        records is refused -- use :meth:`recover` for those.
    snapshot_every:
        Journal a fresh state snapshot after this many events, bounding
        the replay tail of a recovery.
    journal_max_bytes:
        Rotate the journal (compact to a single fresh snapshot via an
        atomic file swap) whenever it outgrows this many bytes; ``None``
        lets it grow unbounded.
    """

    def __init__(
        self,
        session: Optional[MeshSession] = None,
        *,
        scenario: Optional[FaultScenario] = None,
        construction: str = "mfp",
        router: str = "extended-ecube",
        engine: Optional[str] = None,
        window: float = 0.001,
        max_batch: int = 256,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending: int = 4096,
        max_inflight: int = 64,
        journal: Optional[Union[str, Path, Journal]] = None,
        snapshot_every: int = 64,
        journal_max_bytes: Optional[int] = None,
    ) -> None:
        if session is None:
            if scenario is not None:
                session = MeshSession.from_scenario(scenario)
            else:
                session = MeshSession(width=32)
        self.session = session
        # Warm the routing facade eagerly: the daemon exists to own warm
        # state, and this also seeds the engine counters in cache_info.
        session.routing
        self.construction = construction
        self.router = router
        self.engine = engine
        self.host = host
        self.port = port
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.snapshot_every = snapshot_every
        self.coalescer = RouteCoalescer(
            self._flush_routes, window=window, max_batch=max_batch
        )
        self.op_counts: "Counter[str]" = Counter()
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._closing = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_at: Optional[float] = None
        self._last_engine = ""
        # Resilience counters surfaced by the status verb.
        self.shed_requests = 0
        self.expired_routes = 0
        self.degraded_flushes = 0
        # Idempotency cache: client id -> the mutation payload it produced.
        self._idem: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._events_since_snapshot = 0
        self.recovered: Optional[Dict[str, Any]] = None
        if journal is None:
            self.journal: Optional[Journal] = None
        elif isinstance(journal, Journal):
            self.journal = journal
        else:
            self.journal = Journal(journal)
            if self.journal.had_records:
                raise ValueError(
                    f"journal {journal} already holds records; use "
                    "RouteDaemon.recover() to resume from it"
                )
        if self.journal is not None and journal_max_bytes is not None:
            self.journal.max_bytes = journal_max_bytes
        if self.journal is not None and not self.journal.had_records:
            self.journal.append_snapshot(session.state())

    # -- routing ---------------------------------------------------------------------

    @staticmethod
    def _batch_outcomes(router_obj, batch: TrafficBatch) -> List[Dict[str, Any]]:
        outcome = route_batch(router_obj, batch)
        delivered = outcome.status == 1
        return [
            {
                "delivered": bool(delivered[i]),
                "reason": REASONS[int(outcome.status[i])],
                "hops": int(outcome.hops[i]),
                "abnormal_hops": int(outcome.abnormal_hops[i]),
                "minimal_hops": int(outcome.minimal_hops[i]),
            }
            for i in range(len(outcome))
        ]

    @staticmethod
    def _scalar_outcomes(router_obj, batch: TrafficBatch) -> List[Dict[str, Any]]:
        routes = []
        for source, destination in batch.pairs():
            result = router_obj.route(source, destination)
            routes.append(
                {
                    "delivered": result.delivered,
                    "reason": result.reason,
                    "hops": result.hops,
                    "abnormal_hops": result.abnormal_hops,
                    # hops - detour == the fault-free Manhattan distance.
                    "minimal_hops": result.hops - result.detour,
                }
            )
        return routes

    def _flush_routes(self, pending: List[PendingRoute]) -> None:
        """Route the concatenated pairs of one coalesced flush.

        Runs synchronously on the event loop (the kernel is CPU-bound).
        Each request's pairs occupy a contiguous slice of the batch, so
        fanning outcomes back is pure slicing.  Entries whose
        ``deadline`` passed while buffered are dropped up front (no
        engine work for answers nobody is waiting for), and an engine
        exception degrades the flush to the scalar router instead of
        failing every buffered request.
        """
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:  # pragma: no cover - flush outside a loop
            now = None
        live: List[PendingRoute] = []
        for entry in pending:
            if (
                entry.deadline is not None
                and now is not None
                and now >= entry.deadline
            ):
                self.expired_routes += 1
                entry.future.set_exception(
                    ProtocolError(
                        E_DEADLINE, "deadline expired while the request was buffered"
                    )
                )
            else:
                live.append(entry)
        if not live:
            return
        pairs = np.asarray(
            [pair for entry in live for pair in entry.pairs], dtype=np.int64
        ).reshape(-1, 4)
        batch = TrafficBatch(
            src_x=pairs[:, 0].copy(),
            src_y=pairs[:, 1].copy(),
            dst_x=pairs[:, 2].copy(),
            dst_y=pairs[:, 3].copy(),
        )
        router_obj = self.session.routing.router(self.router, self.construction)
        spec = resolve_engine(router_obj, self.engine, False)
        engine_key = spec.key
        routes: List[Dict[str, Any]]
        try:
            if engine_key == "batch":
                routes = self._batch_outcomes(router_obj, batch)
            else:
                routes = self._scalar_outcomes(router_obj, batch)
        except Exception:
            # Graceful degradation: the batch kernel (or a custom engine)
            # blew up mid-flush; re-run the whole batch on the scalar
            # router, which shares none of the vectorized state.  A
            # scalar failure still propagates to the coalescer, which
            # fails the buffered futures individually.
            self.degraded_flushes += 1
            engine_key = "scalar"
            routes = self._scalar_outcomes(router_obj, batch)
        self._last_engine = engine_key
        version = self.session.version
        offset = 0
        for entry in live:
            count = len(entry.pairs)
            entry.future.set_result(
                {
                    "routes": routes[offset : offset + count],
                    "version": version,
                    "engine": engine_key,
                }
            )
            offset += count

    def _parse_pairs(self, payload: Dict[str, Any]) -> List[Pair]:
        if "pairs" in payload:
            raw = payload["pairs"]
        elif "src" in payload and "dst" in payload:
            raw = [[*payload["src"], *payload["dst"]]]
        else:
            raise ProtocolError(E_BAD_PAIR, "route needs 'pairs' or 'src'/'dst'")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_PAIR, "'pairs' must be a non-empty list")
        topology = self.session.topology
        width, height = topology.width, topology.height
        pairs: List[Pair] = []
        for item in raw:
            try:
                sx, sy, dx, dy = (int(v) for v in item)
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_BAD_PAIR, f"not a [sx, sy, dx, dy] pair: {item!r}"
                )
            for x, y in ((sx, sy), (dx, dy)):
                if not (0 <= x < width and 0 <= y < height):
                    raise ProtocolError(
                        E_BAD_PAIR,
                        f"endpoint {(x, y)} outside the {width}x{height} mesh",
                    )
            pairs.append((sx, sy, dx, dy))
        return pairs

    def _parse_nodes(self, payload: Dict[str, Any]) -> List[Coord]:
        raw = payload.get("nodes")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_NODES, "'nodes' must be a non-empty list")
        nodes = [_coerce_coord(item, E_BAD_NODES) for item in raw]
        topology = self.session.topology
        for node in nodes:
            try:
                topology.validate(node)
            except ValueError as exc:
                raise ProtocolError(E_BAD_NODES, str(exc))
        return nodes

    def _parse_links(
        self, payload: Dict[str, Any]
    ) -> List[Tuple[Coord, Coord]]:
        raw = payload.get("links")
        if not isinstance(raw, (list, tuple)) or not raw:
            raise ProtocolError(E_BAD_LINKS, "'links' must be a non-empty list")
        links: List[Tuple[Coord, Coord]] = []
        for item in raw:
            try:
                a, b = item
            except (TypeError, ValueError):
                raise ProtocolError(E_BAD_LINKS, f"not an [a, b] link: {item!r}")
            links.append(
                (_coerce_coord(a, E_BAD_LINKS), _coerce_coord(b, E_BAD_LINKS))
            )
        return links

    # -- verb handlers ---------------------------------------------------------------

    async def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one request dict; always returns a response dict."""
        request_id = request.get("id")
        op = request.get("op")
        if not isinstance(op, str):
            return error_response(E_BAD_REQUEST, "missing 'op' verb", request_id)
        self.op_counts[op] += 1
        if self._closing and op not in ("status", "ping"):
            return error_response(
                E_SHUTTING_DOWN, "daemon is draining", request_id
            )
        try:
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                return error_response(E_UNKNOWN_OP, f"unknown op {op!r}", request_id)
            payload = await handler(request)
            return ok_response(payload, request_id)
        except ProtocolError as exc:
            return error_response(exc.code, str(exc), request_id, **exc.extra)
        except Exception as exc:  # noqa: BLE001 - daemon must not die on a verb
            return error_response(E_INTERNAL, f"{type(exc).__name__}: {exc}", request_id)

    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True}

    def _retry_after(self) -> float:
        """Backoff hint attached to an ``overloaded`` shed: roughly the
        time for the current backlog to flush (a few coalescer windows)."""
        return round(max(self.coalescer.window * 4, 0.005), 6)

    async def _op_route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        pairs = self._parse_pairs(request)
        if self.coalescer.queue_depth + len(pairs) > self.max_pending:
            self.shed_requests += 1
            raise ProtocolError(
                E_OVERLOADED,
                f"route queue is full ({self.coalescer.queue_depth} pairs "
                f"buffered, cap {self.max_pending})",
                retry_after=self._retry_after(),
            )
        deadline = None
        if "deadline_ms" in request:
            try:
                deadline_ms = float(request["deadline_ms"])
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"deadline_ms must be a number: {request['deadline_ms']!r}",
                )
            deadline = (
                asyncio.get_running_loop().time() + max(deadline_ms, 0.0) / 1000.0
            )
        return await self.coalescer.submit(pairs, deadline=deadline)

    def _mutation_payload(self, changed: List[Coord], key: str) -> Dict[str, Any]:
        return {
            key: [list(node) for node in changed],
            "version": self.session.version,
            "num_faults": self.session.num_faults,
        }

    def _apply_mutation(self, op: str, request: Dict[str, Any], apply) -> Dict[str, Any]:
        """Exactly-once mutation plumbing shared by every mutating verb.

        A duplicate ``idem`` id (a client retry whose original response
        was lost in transit) replays the cached payload without touching
        the session; a fresh mutation flushes buffered routes (they were
        submitted under the pre-mutation state), applies, journals the
        resolved payload, and snapshots periodically.
        """
        idem = request.get("idem")
        if idem is not None:
            cached = self._idem.get(idem)
            if cached is not None:
                self._idem.move_to_end(idem)
                return {**cached, "idempotent_replay": True}
        self.coalescer.flush_now()
        payload = apply()
        if idem is not None:
            self._idem[idem] = payload
            while len(self._idem) > IDEM_CACHE_SIZE:
                self._idem.popitem(last=False)
        if self.journal is not None:
            self.journal.append_event(op, payload, idem)
            self._events_since_snapshot += 1
            if self._events_since_snapshot >= self.snapshot_every:
                self.journal.append_snapshot(
                    self.session.state(), dict(self._idem)
                )
                self._events_since_snapshot = 0
            if self.journal.should_compact():
                self.journal.compact(self.session.state(), dict(self._idem))
                self._events_since_snapshot = 0
        return payload

    async def _op_add_faults(self, request: Dict[str, Any]) -> Dict[str, Any]:
        nodes = self._parse_nodes(request)
        return self._apply_mutation(
            "add_faults",
            request,
            lambda: self._mutation_payload(self.session.add_faults(nodes), "added"),
        )

    async def _op_repair(self, request: Dict[str, Any]) -> Dict[str, Any]:
        nodes = self._parse_nodes(request)
        return self._apply_mutation(
            "repair",
            request,
            lambda: self._mutation_payload(
                self.session.remove_faults(nodes), "removed"
            ),
        )

    async def _op_add_link_faults(self, request: Dict[str, Any]) -> Dict[str, Any]:
        links = self._parse_links(request)

        def apply() -> Dict[str, Any]:
            try:
                added = self.session.add_link_faults(
                    links, prefer_lower=bool(request.get("prefer_lower", True))
                )
            except ValueError as exc:
                raise ProtocolError(E_BAD_LINKS, str(exc))
            return self._mutation_payload(added, "added")

        return self._apply_mutation("add_link_faults", request, apply)

    async def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        session = self.session
        topology = session.topology
        uptime = (
            loop.time() - self._started_at if self._started_at is not None else 0.0
        )
        return {
            "uptime": round(uptime, 6),
            "serving": not self._closing,
            "queue_depth": self.coalescer.queue_depth,
            "coalescer": self.coalescer.stats.as_dict(),
            "requests": dict(self.op_counts),
            "admission": {
                "max_pending": self.max_pending,
                "max_inflight": self.max_inflight,
                "shed_requests": self.shed_requests,
                "expired_routes": self.expired_routes,
            },
            "degraded_flushes": self.degraded_flushes,
            "journal": (
                None if self.journal is None else self.journal.info()
            ),
            "recovered": self.recovered,
            "fingerprint": session.fingerprint(),
            "mesh": {
                "width": topology.width,
                "height": topology.height,
                "torus": type(topology).__name__ == "Torus2D",
                "faults": session.num_faults,
                "components": len(session.components()),
            },
            "construction": self.construction,
            "router": self.router,
            "engine": self._last_engine or (self.engine or "auto"),
            "engine_deltas": engine_deltas_enabled(),
            "backend": _array_ops.active_backend_key(),
            "cache_info": dict(session.cache_info),
            "version": session.version,
        }

    async def _op_simulate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.coalescer.flush_now()
        stats = self.session.simulate(
            request.get("construction", self.construction),
            traffic=request.get("traffic", "uniform"),
            load=float(request.get("load", 0.05)),
            cycles=int(request.get("cycles", 256)),
            seed=int(request.get("seed", 0)),
            router=request.get("router", self.router),
        )
        return {
            "attempted": stats.attempted,
            "delivered": stats.delivered,
            "unroutable": stats.unroutable,
            "in_flight": stats.in_flight,
            "cycles_run": stats.cycles_run,
            "total_latency": int(stats.total_latency),
            "deadlocked": stats.deadlocked,
            "sim": stats.sim,
            "version": self.session.version,
        }

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        asyncio.get_running_loop().create_task(self.stop())
        return {"stopping": True}

    # -- crash recovery --------------------------------------------------------------

    @classmethod
    def recover(cls, journal: Union[str, Path], **kwargs: Any) -> "RouteDaemon":
        """Rebuild a daemon from its journal and keep appending to it.

        Loads the newest intact snapshot, replays the event tail through
        the same session mutations the crashed daemon applied (verifying
        the journaled post-versions along the way), restores the
        idempotency cache, and returns a daemon whose session state --
        witnessed by :meth:`MeshSession.fingerprint` -- is bit-identical
        to the state at the last journaled mutation.  ``kwargs`` are the
        usual constructor knobs (construction, router, window, ports,
        admission caps, ...); ``session``/``scenario``/``journal`` are
        owned by the recovery.
        """
        for owned in ("session", "scenario", "journal"):
            if owned in kwargs:
                raise TypeError(f"recover() owns the {owned!r} argument")
        path = Path(journal)
        loaded = load_journal(path)
        session = MeshSession.from_state(loaded.state)
        replayed = replay_events(session, loaded.events)
        journal_obj = Journal(path)
        journal_obj.seq = loaded.seq
        daemon = cls(session, journal=journal_obj, **kwargs)
        daemon._idem = OrderedDict(loaded.idem)
        daemon.recovered = {
            "events_replayed": replayed,
            "snapshot_version": int(loaded.state["version"]),
            "truncated_lines": loaded.truncated_lines,
            "records": loaded.records,
        }
        return daemon

    # -- TCP layer -------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not listening")
        name = self._server.sockets[0].getsockname()
        return (name[0], name[1])

    async def start(self) -> Tuple[str, int]:
        """Bind the TCP listener; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._stopped = asyncio.Event()
        self._started_at = asyncio.get_running_loop().time()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` request) completes."""
        if self._stopped is None:
            raise RuntimeError("call start() first")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: flush buffered routes, then close the listener."""
        if self._closing:
            return
        self._closing = True
        await self.coalescer.drain()
        if self._conn_tasks:
            await asyncio.gather(*tuple(self._conn_tasks), return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in tuple(self._writers):
            writer.close()
        if self.journal is not None:
            self.journal.close()
        if self._stopped is not None:
            self._stopped.set()

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with write_lock:
                        writer.write(
                            encode(error_response(E_BAD_REQUEST, "request line too long"))
                        )
                        await writer.drain()
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Per-connection in-flight cap: stop consuming lines until
                # a served request completes.  The unread bytes back up
                # the socket -- transport-level backpressure, so one
                # flooding connection cannot queue unbounded work.
                while len(tasks) >= self.max_inflight:
                    await asyncio.wait(
                        tuple(tasks), return_when=asyncio.FIRST_COMPLETED
                    )
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        try:
            request = decode_line(line)
        except ProtocolError as exc:
            response = error_response(exc.code, str(exc))
        else:
            response = await self.handle(request)
        async with write_lock:
            try:
                writer.write(encode(response))
                await writer.drain()
            except ConnectionError:  # pragma: no cover - client went away
                pass
