"""Clients of the routing daemon: TCP and in-process, one verb surface.

:class:`ServeClient` speaks the NDJSON protocol over an asyncio TCP
connection (the transport ``repro-mesh query`` uses);
:class:`InProcessClient` exchanges the same request/response dicts with a
:class:`~repro.serve.daemon.RouteDaemon` directly, skipping the byte
layer -- the harness the tests and the serving benchmark drive, so every
differential assertion exercises exactly the daemon's dispatch and
coalescing logic without socket noise.

Both raise :class:`ServeError` (carrying the protocol error ``code``) on
``ok: false`` responses; the raw response dict is available for verbs
that want the envelope.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.serve.protocol import MAX_LINE_BYTES, decode_line, encode
from repro.types import Coord


class ServeError(RuntimeError):
    """An ``ok: false`` daemon response, carrying its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def _unwrap(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ServeError(
            error.get("code", "internal"), error.get("message", "unknown error")
        )
    return response


class _Verbs:
    """The shared verb surface; subclasses implement ``request``."""

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def ping(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "ping"}))

    async def route(
        self, pairs: Sequence[Sequence[int]], request_id: Optional[Any] = None
    ) -> Dict[str, Any]:
        """Route ``[sx, sy, dx, dy]`` pairs; returns the routes payload."""
        message: Dict[str, Any] = {"op": "route", "pairs": [list(p) for p in pairs]}
        if request_id is not None:
            message["id"] = request_id
        return _unwrap(await self.request(message))

    async def route_one(self, source: Coord, destination: Coord) -> Dict[str, Any]:
        """Route a single pair; returns its outcome dict."""
        response = await self.route([[*source, *destination]])
        return response["routes"][0]

    async def add_faults(self, nodes: Iterable[Coord]) -> Dict[str, Any]:
        return _unwrap(
            await self.request(
                {"op": "add_faults", "nodes": [list(n) for n in nodes]}
            )
        )

    async def repair(self, nodes: Iterable[Coord]) -> Dict[str, Any]:
        return _unwrap(
            await self.request({"op": "repair", "nodes": [list(n) for n in nodes]})
        )

    async def add_link_faults(
        self, links: Iterable[Tuple[Coord, Coord]], prefer_lower: bool = True
    ) -> Dict[str, Any]:
        return _unwrap(
            await self.request(
                {
                    "op": "add_link_faults",
                    "links": [[list(a), list(b)] for a, b in links],
                    "prefer_lower": prefer_lower,
                }
            )
        )

    async def status(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "status"}))

    async def simulate(self, **params: Any) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "simulate", **params}))

    async def shutdown(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "shutdown"}))


class InProcessClient(_Verbs):
    """Drive a :class:`RouteDaemon` directly, no sockets involved."""

    def __init__(self, daemon: Any) -> None:
        self.daemon = daemon

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return await self.daemon.handle(message)


class ServeClient(_Verbs):
    """NDJSON TCP client of a running routing daemon.

    One request is in flight per client at a time (requests are matched
    to responses by arrival order on the connection); open several
    clients for concurrency, as the benchmark does.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "ServeClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:  # pragma: no cover - already gone
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected")
        async with self._lock:
            self._writer.write(encode(message))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_line(line)
