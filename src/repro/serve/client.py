"""Clients of the routing daemon: TCP and in-process, one verb surface.

:class:`ServeClient` speaks the NDJSON protocol over an asyncio TCP
connection (the transport ``repro-mesh query`` uses);
:class:`InProcessClient` exchanges the same request/response dicts with a
:class:`~repro.serve.daemon.RouteDaemon` directly, skipping the byte
layer -- the harness the tests and the serving benchmark drive, so every
differential assertion exercises exactly the daemon's dispatch and
coalescing logic without socket noise.

Both raise :class:`ServeError` (carrying the protocol error ``code``) on
``ok: false`` responses; the raw response dict is available for verbs
that want the envelope.

:class:`ServeClient` resilience (all opt-in, see
:mod:`repro.serve.retry`):

* a **per-request timeout** (constructor default or per call) bounds
  the wait for a response; route requests stamped with a timeout carry
  it to the daemon as ``deadline_ms`` so expired buffered work is shed
  server-side too;
* a **poisoned connection is never reused**: any failure between the
  request write and the response read (timeout, overlong response,
  cancellation, connection loss) closes the connection, so the next
  request cannot read a stale response that belongs to an earlier one;
* with a :class:`~repro.serve.retry.RetryPolicy`, transient failures
  (connect errors, timeouts, dropped connections, ``overloaded`` sheds
  -- honouring the daemon's ``retry_after`` hint) are retried with
  exponential backoff, reconnecting as needed;
* retried **mutating verbs apply exactly once**: the client stamps each
  mutation with an idempotency id (``idem``), and the daemon journals
  and replays the original payload for duplicates.
"""

from __future__ import annotations

import asyncio
import itertools
import uuid
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.serve.protocol import MAX_LINE_BYTES, ProtocolError, decode_line, encode
from repro.serve.retry import RetryPolicy
from repro.types import Coord

#: Verbs that mutate daemon state; retried instances carry an ``idem`` id.
MUTATING_OPS = frozenset({"add_faults", "repair", "add_link_faults"})

#: Transport-level failures a retry policy treats as transient.  Bare
#: ``ValueError`` appears because an overlong response line surfaces as
#: one from ``StreamReader.readline``; :class:`ProtocolError` (a
#: ``ValueError`` subclass meaning a *parsed but malformed* response) is
#: explicitly re-raised, not retried.
RETRYABLE_EXCEPTIONS = (
    OSError,
    asyncio.TimeoutError,
    TimeoutError,
    asyncio.IncompleteReadError,
    ValueError,
)


class ServeError(RuntimeError):
    """An ``ok: false`` daemon response, carrying its protocol code."""

    def __init__(
        self, code: str, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        #: Backoff hint attached to ``overloaded`` sheds (seconds).
        self.retry_after = retry_after


def _unwrap(response: Dict[str, Any]) -> Dict[str, Any]:
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ServeError(
            error.get("code", "internal"),
            error.get("message", "unknown error"),
            retry_after=error.get("retry_after"),
        )
    return response


class _Verbs:
    """The shared verb surface; subclasses implement ``request``."""

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        raise NotImplementedError

    async def ping(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "ping"}))

    async def route(
        self, pairs: Sequence[Sequence[int]], request_id: Optional[Any] = None
    ) -> Dict[str, Any]:
        """Route ``[sx, sy, dx, dy]`` pairs; returns the routes payload."""
        message: Dict[str, Any] = {"op": "route", "pairs": [list(p) for p in pairs]}
        if request_id is not None:
            message["id"] = request_id
        return _unwrap(await self.request(message))

    async def route_one(self, source: Coord, destination: Coord) -> Dict[str, Any]:
        """Route a single pair; returns its outcome dict."""
        response = await self.route([[*source, *destination]])
        return response["routes"][0]

    async def add_faults(self, nodes: Iterable[Coord]) -> Dict[str, Any]:
        return _unwrap(
            await self.request(
                {"op": "add_faults", "nodes": [list(n) for n in nodes]}
            )
        )

    async def repair(self, nodes: Iterable[Coord]) -> Dict[str, Any]:
        return _unwrap(
            await self.request({"op": "repair", "nodes": [list(n) for n in nodes]})
        )

    async def add_link_faults(
        self, links: Iterable[Tuple[Coord, Coord]], prefer_lower: bool = True
    ) -> Dict[str, Any]:
        return _unwrap(
            await self.request(
                {
                    "op": "add_link_faults",
                    "links": [[list(a), list(b)] for a, b in links],
                    "prefer_lower": prefer_lower,
                }
            )
        )

    async def status(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "status"}))

    async def simulate(self, **params: Any) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "simulate", **params}))

    async def shutdown(self) -> Dict[str, Any]:
        return _unwrap(await self.request({"op": "shutdown"}))


class InProcessClient(_Verbs):
    """Drive a :class:`RouteDaemon` directly, no sockets involved."""

    def __init__(self, daemon: Any) -> None:
        self.daemon = daemon

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return await self.daemon.handle(message)


class ServeClient(_Verbs):
    """NDJSON TCP client of a running routing daemon.

    One request is in flight per client at a time (requests are matched
    to responses by arrival order on the connection); open several
    clients for concurrency, as the benchmark does.

    Parameters
    ----------
    host, port:
        The daemon's TCP address.
    retry:
        Optional :class:`~repro.serve.retry.RetryPolicy` governing
        request retries, reconnects and ``overloaded`` backoff.  Without
        one, every failure surfaces immediately (the pre-resilience
        behaviour).
    timeout:
        Default per-request timeout in seconds (``None`` = wait
        forever); ``route`` requests also carry it to the daemon as
        ``deadline_ms``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retry: Optional[RetryPolicy] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.retry = retry
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        # Idempotency ids: unique per client instance and request.
        self._idem_token = uuid.uuid4().hex[:12]
        self._idem_counter = itertools.count()

    @property
    def connected(self) -> bool:
        """Whether a (believed-healthy) connection is held."""
        return self._writer is not None

    async def connect(
        self, *, retry: Optional[RetryPolicy] = None
    ) -> "ServeClient":
        """Open the TCP connection, optionally retrying connect errors.

        *retry* overrides the client's policy for this call (``repro-mesh
        query --wait`` passes a deadline-bounded unbounded-attempt policy
        here as its daemon start-up grace).
        """
        policy = self.retry if retry is None else retry
        if policy is None:
            await self._connect_once()
            return self
        schedule = policy.schedule()
        while True:
            try:
                await self._connect_once()
                return self
            except OSError:
                delay = schedule.next_delay()
                if delay is None:
                    raise
                await asyncio.sleep(delay)

    async def _connect_once(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )

    def _poison(self) -> None:
        """Drop the connection so no later request can read stale bytes."""
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already dead
                pass

    async def close(self) -> None:
        writer = self._writer
        self._reader = self._writer = None
        if writer is None:
            return
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:  # transport already gone (reset, mid-handshake, ...)
            pass

    async def __aenter__(self) -> "ServeClient":
        return await self.connect()

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _attempt(
        self, message: Dict[str, Any], timeout: Optional[float]
    ) -> Dict[str, Any]:
        """One request/response exchange; poisons the connection on ANY
        failure between the write and the completed read."""
        if self._writer is None:
            await self._connect_once()
        reader, writer = self._reader, self._writer
        try:
            writer.write(encode(message))
            await writer.drain()
            if timeout is not None:
                line = await asyncio.wait_for(reader.readline(), timeout)
            else:
                line = await reader.readline()
        except BaseException:
            # Timeout, cancellation, overlong-response ValueError,
            # connection loss: the response (if any) is unread or
            # partially read, so the stream is desynced -- poison it.
            self._poison()
            raise
        if not line:
            self._poison()
            raise ConnectionError("daemon closed the connection")
        if not line.endswith(b"\n"):
            # A truncated line can only mean EOF mid-response.
            self._poison()
            raise ConnectionError("daemon connection lost mid-response")
        return decode_line(line)

    async def request(
        self, message: Dict[str, Any], *, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        policy = self.retry
        timeout = self.timeout if timeout is None else timeout
        op = message.get("op")
        if policy is not None and op in MUTATING_OPS and "idem" not in message:
            # Stamp once, before the first attempt: every retry reuses the
            # id, so the daemon applies the mutation exactly once.
            message = {
                **message,
                "idem": f"{self._idem_token}-{next(self._idem_counter)}",
            }
        if timeout is not None and op == "route" and "deadline_ms" not in message:
            message = {**message, "deadline_ms": int(timeout * 1000)}
        async with self._lock:
            if policy is None:
                return await self._attempt(message, timeout)
            schedule = policy.schedule()
            while True:
                try:
                    response = await self._attempt(message, timeout)
                except RETRYABLE_EXCEPTIONS as exc:
                    if isinstance(exc, ProtocolError):
                        raise  # parsed-but-malformed response: not transient
                    delay = schedule.next_delay()
                    if delay is None:
                        raise
                    await asyncio.sleep(delay)
                    continue
                if not response.get("ok"):
                    error = response.get("error") or {}
                    if error.get("code") in policy.retry_codes:
                        delay = schedule.next_delay()
                        if delay is not None:
                            await asyncio.sleep(
                                max(delay, float(error.get("retry_after") or 0.0))
                            )
                            continue
                return response
