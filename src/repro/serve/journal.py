"""Crash-recoverable daemon state: NDJSON event journal plus snapshots.

The daemon's session state is a pure function of its topology and the
ordered mutation history, so durability does not need a database: an
append-only file of newline-delimited JSON records -- one snapshot of
the session state up front, one *event* record per applied mutation
(``add_faults`` / ``repair`` / ``add_link_faults``), and a fresh
snapshot every ``snapshot_every`` events so recovery never replays an
unbounded tail -- is enough to rebuild the exact session a crashed
daemon was serving.

Record shapes (one JSON object per line)::

    {"t": "snapshot", "seq": 12, "state": {...}, "idem": {...}}
    {"t": "event", "seq": 13, "op": "add_faults", "idem": "c3f1-0",
     "payload": {"added": [[4, 4]], "version": 3, "num_faults": 9}}

Events record the *resolved* mutation -- the nodes actually added or
removed -- not the raw request, so replay applies exactly what the
original daemon applied (link faults replay the endpoint nodes the
mapping chose at the time, idempotent duplicates replay as no-ops).
Snapshots carry the daemon's idempotency cache, so a retried mutating
request keeps deduplicating across a crash.

Appends are flushed per record: a ``kill -9`` loses at most the line
being written, and :func:`load_journal` tolerates exactly that -- an
undecodable *final* line is dropped (counted in ``truncated_lines``);
garbage anywhere else raises :class:`JournalError`, because a
mid-journal hole would silently desync the replay.

A journal otherwise grows without bound under a long-lived daemon, so
``max_bytes`` arms rotation: once the file exceeds the cap,
:meth:`Journal.compact` rewrites it as a single fresh snapshot via a
temp file plus :func:`os.replace` -- the swap is atomic, so a crash at
any instant leaves either the full old journal or the complete
compacted one, never a torn mixture.

:meth:`RouteDaemon.recover(path) <repro.serve.daemon.RouteDaemon.recover>`
is the consumer: load the last snapshot, replay the events after it,
verify every event's recorded post-version matches the replayed
session's, and keep appending to the same file.  The recovered session's
:meth:`~repro.api.session.MeshSession.fingerprint` is bit-identical to
an uninterrupted oracle's -- the differential ``tests/
test_serve_resilience.py`` asserts.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

SCHEMA = "repro.serve.journal/v1"

#: Idempotency entries retained in memory and in snapshots (LRU).
IDEM_CACHE_SIZE = 1024


class JournalError(RuntimeError):
    """An unusable journal: mid-file corruption or an inconsistent replay."""


def _encode_record(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, separators=(",", ":")).encode("utf-8") + b"\n"


class Journal:
    """Append-only NDJSON journal of daemon mutations and snapshots.

    Opening a path appends to whatever is already there (recovery hands
    the loaded file straight back for continued writing); whether the
    file held records at open time is exposed as :attr:`had_records`, so
    the daemon knows to seed a fresh journal with an initial snapshot.

    ``max_bytes`` arms size-triggered rotation: :meth:`should_compact`
    turns true once the file exceeds the cap, and the owner is expected
    to call :meth:`compact` with its current state.  The journal never
    compacts on its own -- only the daemon knows the authoritative
    state to snapshot.
    """

    def __init__(
        self, path: Union[str, Path], max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.had_records = self.path.exists() and self.path.stat().st_size > 0
        self._file = open(self.path, "ab")
        self.seq = 0
        self.events_written = 0
        self.snapshots_written = 0
        self.max_bytes = max_bytes
        self.rotations = 0
        self._closed = False

    def append_event(
        self, op: str, payload: Dict[str, Any], idem: Optional[str] = None
    ) -> None:
        """Journal one applied mutation (flushed before returning)."""
        self.seq += 1
        record: Dict[str, Any] = {"t": "event", "seq": self.seq, "op": op}
        if idem is not None:
            record["idem"] = idem
        record["payload"] = payload
        self._write(record)
        self.events_written += 1

    def append_snapshot(
        self, state: Dict[str, Any], idem: Optional[Dict[str, Any]] = None
    ) -> None:
        """Journal a full state snapshot (future recoveries replay from here)."""
        self.seq += 1
        record: Dict[str, Any] = {
            "t": "snapshot",
            "seq": self.seq,
            "schema": SCHEMA,
            "state": state,
        }
        if idem:
            record["idem"] = dict(idem)
        self._write(record)
        self.snapshots_written += 1

    def _write(self, record: Dict[str, Any]) -> None:
        if self._closed:
            raise JournalError("journal is closed")
        self._file.write(_encode_record(record))
        # One flush per record: a killed process loses at most the line
        # being written (load_journal drops a truncated tail).
        self._file.flush()

    def size_bytes(self) -> int:
        """Current byte size of the journal file (post-flush, so exact)."""
        return self._file.tell() if not self._closed else self.path.stat().st_size

    def should_compact(self) -> bool:
        """True when ``max_bytes`` is set and the file has outgrown it."""
        return (
            self.max_bytes is not None
            and not self._closed
            and self.size_bytes() > self.max_bytes
        )

    def compact(
        self, state: Dict[str, Any], idem: Optional[Dict[str, Any]] = None
    ) -> None:
        """Rewrite the journal as one fresh snapshot of *state*.

        The replacement is written to a sibling temp file, fsynced and
        atomically swapped in with :func:`os.replace`; sequence numbers
        keep climbing across the rotation so replay-divergence checks
        stay monotonic.
        """
        if self._closed:
            raise JournalError("journal is closed")
        self.seq += 1
        record: Dict[str, Any] = {
            "t": "snapshot",
            "seq": self.seq,
            "schema": SCHEMA,
            "state": state,
        }
        if idem:
            record["idem"] = dict(idem)
        tmp_path = self.path.with_name(self.path.name + ".compact")
        with open(tmp_path, "wb") as tmp:
            tmp.write(_encode_record(record))
            tmp.flush()
            os.fsync(tmp.fileno())
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "ab")
        self.snapshots_written += 1
        self.rotations += 1

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()

    def info(self) -> Dict[str, Any]:
        """Counters for the daemon's ``status`` payload."""
        return {
            "path": str(self.path),
            "seq": self.seq,
            "events_written": self.events_written,
            "snapshots_written": self.snapshots_written,
            "size_bytes": self.size_bytes(),
            "max_bytes": self.max_bytes,
            "rotations": self.rotations,
        }


@dataclass
class LoadedJournal:
    """The replayable content of a journal file."""

    #: Session state of the newest intact snapshot.
    state: Dict[str, Any]
    #: Event records after that snapshot, in append order.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Idempotency cache: snapshot entries plus post-snapshot events.
    idem: "OrderedDict[str, Dict[str, Any]]" = field(default_factory=OrderedDict)
    #: Highest sequence number seen (appends continue above it).
    seq: int = 0
    #: Undecodable trailing lines dropped (0 or 1: a torn final write).
    truncated_lines: int = 0
    #: Total records parsed, snapshots included.
    records: int = 0


def load_journal(path: Union[str, Path]) -> LoadedJournal:
    """Parse a journal file into its newest snapshot plus the event tail.

    Raises :class:`JournalError` when the file is empty, starts with
    something other than a snapshot, or is corrupt anywhere but the
    final line (a torn final write is dropped and counted).
    """
    path = Path(path)
    raw_lines = path.read_bytes().split(b"\n")
    if raw_lines and raw_lines[-1] == b"":
        raw_lines.pop()
    records: List[Dict[str, Any]] = []
    truncated = 0
    for index, line in enumerate(raw_lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "t" not in record:
                raise ValueError("not a journal record")
        except (UnicodeDecodeError, ValueError) as exc:
            if index == len(raw_lines) - 1:
                truncated += 1
                break
            raise JournalError(
                f"corrupt journal record at line {index + 1} of {path}: {exc}"
            )
        records.append(record)
    if not records:
        raise JournalError(f"journal {path} holds no intact records")

    snapshot_at: Optional[int] = None
    for index, record in enumerate(records):
        if record["t"] == "snapshot":
            snapshot_at = index
    if snapshot_at is None:
        raise JournalError(f"journal {path} holds no snapshot record")

    snapshot = records[snapshot_at]
    loaded = LoadedJournal(
        state=snapshot["state"],
        seq=max(int(record.get("seq", 0)) for record in records),
        truncated_lines=truncated,
        records=len(records),
    )
    for key, payload in (snapshot.get("idem") or {}).items():
        loaded.idem[key] = payload
    for record in records[snapshot_at + 1 :]:
        if record["t"] != "event":
            continue
        loaded.events.append(record)
        idem = record.get("idem")
        if idem is not None:
            loaded.idem[idem] = record["payload"]
            while len(loaded.idem) > IDEM_CACHE_SIZE:
                loaded.idem.popitem(last=False)
    return loaded


def replay_events(session, events: List[Dict[str, Any]]) -> int:
    """Apply journal *events* to *session*, verifying version agreement.

    Events carry the resolved node lists, so replay is transport- and
    mapping-independent: ``repair`` removes the recorded ``removed``
    nodes, everything else adds the recorded ``added`` nodes.  After
    each event the session's version must equal the version the original
    daemon journaled -- a mismatch means the journal and the replay
    diverged, which is unrecoverable, so :class:`JournalError` is raised
    rather than serving silently wrong state.  Returns the number of
    events applied.
    """
    for event in events:
        payload = event["payload"]
        if event["op"] == "repair":
            session.remove_faults(
                (int(x), int(y)) for x, y in payload.get("removed", ())
            )
        else:
            session.add_faults(
                (int(x), int(y)) for x, y in payload.get("added", ())
            )
        expected = payload.get("version")
        if expected is not None and session.version != expected:
            raise JournalError(
                f"replay diverged at seq {event.get('seq')}: session version "
                f"{session.version} != journaled {expected}"
            )
    return len(events)
