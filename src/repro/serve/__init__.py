"""repro.serve -- the long-lived routing service over warm session state.

The batch scripts of the experiment harness pay a full session round-trip
per query and a full router rebuild per fault update.  This package keeps
one :class:`~repro.api.MeshSession` warm inside an asyncio daemon and
serves it over a newline-delimited-JSON protocol:

* :mod:`repro.serve.protocol` -- the NDJSON message shapes and error codes.
* :mod:`repro.serve.coalescer` -- the micro-batching coalescer merging
  concurrent ``route`` requests into single batch-engine calls
  (window / max-batch triggers, per-request fan-out, coalesce-ratio
  stats).
* :mod:`repro.serve.daemon` -- :class:`RouteDaemon`: verb dispatch
  (``route`` / ``add_faults`` / ``repair`` / ``add_link_faults`` /
  ``status`` / ``simulate`` / ``ping`` / ``shutdown``), the TCP listener,
  admission control (bounded pending queue, per-connection in-flight
  caps, ``deadline_ms`` shedding), journaling and graceful drain.
* :mod:`repro.serve.client` -- :class:`ServeClient` (TCP; per-request
  timeouts, poison-on-desync, policy-driven retries with idempotent
  mutations) and :class:`InProcessClient` (same verbs, no sockets).
* :mod:`repro.serve.retry` -- :class:`RetryPolicy`: exponential backoff
  with deterministic seeded jitter and deadline caps.
* :mod:`repro.serve.journal` -- the append-only NDJSON mutation journal
  plus snapshots behind :meth:`RouteDaemon.recover`.
* :mod:`repro.serve.chaos` -- :class:`ChaosTransport`: the seeded
  fault-injecting TCP proxy of the resilience differential.

Fault churn streamed through the daemon delta-patches the warm routers'
jump tables and packed rings (:func:`repro.routing.engine.
transplant_engine_state`, toggled by ``REPRO_ENGINE_DELTAS``) instead of
rebuilding them; coalesced route outcomes are bit-identical to routing
each request alone.  ``repro-mesh serve`` / ``repro-mesh query`` are the
CLI faces of this package.
"""

from repro.serve.chaos import ChaosConfig, ChaosTransport
from repro.serve.client import InProcessClient, ServeClient, ServeError
from repro.serve.coalescer import CoalescerStats, PendingRoute, RouteCoalescer
from repro.serve.daemon import RouteDaemon
from repro.serve.journal import (
    IDEM_CACHE_SIZE,
    Journal,
    JournalError,
    LoadedJournal,
    load_journal,
    replay_events,
)
from repro.serve.protocol import (
    E_DEADLINE,
    E_OVERLOADED,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.serve.retry import RetryPolicy, RetrySchedule

__all__ = [
    "RouteDaemon",
    "RouteCoalescer",
    "CoalescerStats",
    "PendingRoute",
    "ServeClient",
    "InProcessClient",
    "ServeError",
    "RetryPolicy",
    "RetrySchedule",
    "Journal",
    "JournalError",
    "LoadedJournal",
    "load_journal",
    "replay_events",
    "IDEM_CACHE_SIZE",
    "ChaosConfig",
    "ChaosTransport",
    "ProtocolError",
    "encode",
    "decode_line",
    "error_response",
    "ok_response",
    "MAX_LINE_BYTES",
    "E_OVERLOADED",
    "E_DEADLINE",
]
