"""The newline-delimited-JSON wire protocol of the routing daemon.

One request per line, one response per line, UTF-8 JSON with no embedded
newlines.  Requests are objects with an ``op`` verb and optional ``id``
(echoed verbatim on the response, so pipelined requests can be matched
out of order)::

    {"op": "route", "id": 7, "pairs": [[0, 0, 9, 9], [3, 1, 3, 8]]}
    {"op": "add_faults", "nodes": [[4, 4], [4, 5]]}
    {"op": "status"}

Responses carry ``ok`` plus either the verb's payload or an ``error``
object with a stable ``code`` and a human-readable ``message``::

    {"id": 7, "ok": true, "routes": [...], "version": 3}
    {"ok": false, "error": {"code": "bad-pair", "message": "..."}}

The module is transport-agnostic: :class:`repro.serve.daemon.RouteDaemon`
uses it over asyncio TCP streams, the in-process client skips the byte
layer entirely and exchanges the same dict shapes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Protocol error codes (stable strings, matched by clients and tests).
E_BAD_REQUEST = "bad-request"  #: unparseable line / not a JSON object
E_UNKNOWN_OP = "unknown-op"  #: unrecognised ``op`` verb
E_BAD_PAIR = "bad-pair"  #: malformed or out-of-bounds route endpoints
E_BAD_NODES = "bad-nodes"  #: malformed fault / repair coordinates
E_BAD_LINKS = "bad-links"  #: malformed or non-adjacent link endpoints
E_SHUTTING_DOWN = "shutting-down"  #: request arrived after drain began
E_INTERNAL = "internal"  #: unexpected server-side failure
E_OVERLOADED = "overloaded"  #: admission control shed the request (see ``retry_after``)
E_DEADLINE = "deadline-exceeded"  #: the request's ``deadline_ms`` passed before routing

#: Hard cap on one request line; a line longer than this is rejected
#: instead of buffered (protects the daemon from unbounded payloads).
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A rejected request, carrying its protocol error ``code``.

    ``extra`` keys (e.g. the ``retry_after`` hint of an ``overloaded``
    shed) are merged into the response's ``error`` object.
    """

    def __init__(self, code: str, message: str, **extra: Any) -> None:
        super().__init__(message)
        self.code = code
        self.extra = extra


def encode(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to a single NDJSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a dict, or raise :class:`ProtocolError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_BAD_REQUEST, f"unparseable request line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(E_BAD_REQUEST, "request must be a JSON object")
    return message


def error_response(
    code: str, message: str, request_id: Optional[Any] = None, **extra: Any
) -> Dict[str, Any]:
    """Build the standard error-response shape.

    ``extra`` keys land inside the ``error`` object (e.g. the
    ``retry_after`` backoff hint accompanying an ``overloaded`` shed).
    """
    error: Dict[str, Any] = {"code": code, "message": message}
    error.update(extra)
    response: Dict[str, Any] = {"ok": False, "error": error}
    if request_id is not None:
        response["id"] = request_id
    return response


def ok_response(payload: Dict[str, Any], request_id: Optional[Any] = None) -> Dict[str, Any]:
    """Build a success response around a verb payload."""
    response: Dict[str, Any] = {"ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(payload)
    return response
