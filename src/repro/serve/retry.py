"""Retry policies: exponential backoff with deterministic seeded jitter.

:class:`RetryPolicy` is the one backoff description shared by every
retrying code path of the serving layer -- :class:`~repro.serve.client.
ServeClient` request retries and reconnects, the ``repro-mesh query
--wait`` connection grace, and the chaos differential tests.  A policy is
an immutable description; each request materialises it into a
:class:`RetrySchedule`, which owns the attempt counter, the deadline
clock and the seeded jitter RNG, so two schedules built from the same
seeded policy produce *identical* delay sequences (the determinism the
fault-injection differentials rely on).

The delay before attempt ``n+1`` is::

    min(max_delay, base_delay * multiplier ** (n - 1)) * (1 - jitter * U)

with ``U`` drawn from ``random.Random(seed)`` -- jitter only ever
*shortens* a delay, so ``max_delay`` and the ``deadline`` cap are hard
bounds.  ``max_attempts=None`` means attempts are unbounded and only the
``deadline`` (total seconds across all attempts) ends the schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Optional

#: Protocol error codes a retrying client treats as transient by default:
#: the daemon shed the request under overload and said to come back.
DEFAULT_RETRY_CODES: FrozenSet[str] = frozenset({"overloaded"})


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and hard caps.

    Parameters
    ----------
    max_attempts:
        Total attempts (the first try included); ``None`` = unbounded,
        in which case *deadline* must be set.
    base_delay, multiplier, max_delay:
        The exponential schedule: the n-th retry waits
        ``min(max_delay, base_delay * multiplier**(n-1))`` seconds.
    deadline:
        Hard cap on the total seconds a schedule may spend, measured
        from its creation; a delay is clipped to the remaining budget
        and the schedule ends once the budget is spent.
    jitter:
        Fraction of each delay randomised away (0 = none, 1 = anywhere
        in ``(0, delay]``).  Jitter only shortens delays.
    seed:
        Seed of the jitter RNG; schedules built from the same seeded
        policy produce identical delay sequences.  ``None`` = OS
        entropy.
    retry_codes:
        Protocol error codes the client additionally retries on
        (``ok: false`` responses are otherwise terminal).
    """

    max_attempts: Optional[int] = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: Optional[float] = None
    jitter: float = 0.5
    seed: Optional[int] = None
    retry_codes: FrozenSet[str] = field(default=DEFAULT_RETRY_CODES)

    def __post_init__(self) -> None:
        if self.max_attempts is None and self.deadline is None:
            raise ValueError("max_attempts=None requires a deadline")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        object.__setattr__(self, "retry_codes", frozenset(self.retry_codes))

    def schedule(self, clock: Callable[[], float] = time.monotonic) -> "RetrySchedule":
        """Materialise one request's attempt schedule (clock injectable)."""
        return RetrySchedule(self, clock=clock)


class RetrySchedule:
    """One request's pass through a :class:`RetryPolicy`.

    ``next_delay()`` returns the seconds to sleep before the next
    attempt, or ``None`` once the policy is exhausted (attempt budget
    spent or deadline passed).  :attr:`attempt` counts the attempts
    already made (1 after the first try).
    """

    def __init__(
        self, policy: RetryPolicy, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        self.policy = policy
        self.attempt = 1
        self._clock = clock
        self._started = clock()
        self._rng = random.Random(policy.seed)

    @property
    def elapsed(self) -> float:
        """Seconds since the schedule was created."""
        return self._clock() - self._started

    def next_delay(self) -> Optional[float]:
        """Delay before the next attempt, or ``None`` to give up."""
        policy = self.policy
        if policy.max_attempts is not None and self.attempt >= policy.max_attempts:
            return None
        delay = min(
            policy.max_delay,
            policy.base_delay * policy.multiplier ** (self.attempt - 1),
        )
        if policy.jitter:
            delay *= 1.0 - policy.jitter * self._rng.random()
        if policy.deadline is not None:
            remaining = policy.deadline - self.elapsed
            if remaining <= 0:
                return None
            delay = min(delay, remaining)
        self.attempt += 1
        return delay
