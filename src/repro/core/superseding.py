"""The superseding rule for piling per-component construction results.

The centralized minimum-faulty-polygon solution runs independently on every
faulty component and then "piles" the per-component diagrams on top of each
other.  When the same node receives different statuses from different
components, the paper's superseding rule resolves the conflict:

    black nodes overwrite gray and white nodes, and gray nodes overwrite
    white nodes.

i.e. faulty > disabled (non-faulty inside a polygon) > enabled.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.types import Coord, NodeKind


def supersede(current: NodeKind, incoming: NodeKind) -> NodeKind:
    """Combine two statuses for the same node under the superseding rule."""
    return current if current >= incoming else incoming


def pile_statuses(layers: Iterable[Mapping[Coord, NodeKind]]) -> Dict[Coord, NodeKind]:
    """Pile several per-component status layers into a single final diagram.

    Each *layer* maps node positions to the status assigned by one
    component's construction (nodes not mentioned default to white/enabled).
    The result contains every node mentioned by at least one layer, with
    conflicts resolved by :func:`supersede`.
    """
    final: Dict[Coord, NodeKind] = {}
    for layer in layers:
        for node, status in layer.items():
            previous = final.get(node, NodeKind.ENABLED)
            final[node] = supersede(previous, status)
    return final


def disabled_nodes(piled: Mapping[Coord, NodeKind]) -> set:
    """Return every node that is part of a fault region after piling."""
    return {
        node
        for node, status in piled.items()
        if status in (NodeKind.FAULTY, NodeKind.DISABLED)
    }
