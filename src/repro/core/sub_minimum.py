"""The sub-minimum faulty polygon model (FP) -- Wu's IPDPS 2001 baseline.

The construction has two phases run over the whole network:

1. labelling scheme 1 grows the faults into rectangular faulty blocks;
2. labelling scheme 2 shrinks each block by re-enabling unsafe non-faulty
   nodes that have two or more enabled neighbours.

The resulting regions are orthogonal convex polygons that cover all faults
of their block, but a region built from a block containing several separate
fault clusters may still be larger than necessary -- hence *sub-minimum*.
The paper's contribution (:mod:`repro.core.mfp`) removes that gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


from repro.core.labelling import (
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    faults_to_mask,
)
from repro.core.regions import FaultRegion, extract_regions_and_index
from repro.geometry import masks
from repro.faults.scenario import FaultScenario
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord, FaultRegionModel


@dataclass
class SubMinimumConstruction:
    """Result of the sub-minimum faulty polygon construction."""

    grid: StatusGrid
    regions: List[FaultRegion]
    rounds_scheme1: int
    rounds_scheme2: int
    model: FaultRegionModel = FaultRegionModel.SUB_MINIMUM_FAULTY_POLYGON
    #: Cell -> region-index grid (``-1`` outside every region).
    region_index: "np.ndarray | None" = field(default=None, compare=False, repr=False)

    @property
    def rounds(self) -> int:
        """Total rounds of neighbour information exchange (Figure 11).

        The FP model pays the scheme-1 rounds (identical to FB) plus the
        extra scheme-2 rounds, which is why the paper reports FP needing
        *more* rounds than FB.
        """
        return self.rounds_scheme1 + self.rounds_scheme2

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the polygons (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average polygon size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    @property
    def polygons(self) -> List[FaultRegion]:
        """Alias for :attr:`regions` using the paper's terminology."""
        return self.regions

    def all_orthogonal_convex(self) -> bool:
        """Whether every polygon satisfies Definition 1 (sanity invariant)."""
        return all(region.is_orthogonal_convex for region in self.regions)


def build_sub_minimum_polygons(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
) -> SubMinimumConstruction:
    """Construct sub-minimum faulty polygons from a fault set."""
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    fault_mask = faults_to_mask(faults, topology.width, topology.height)
    scheme1 = apply_labelling_scheme_1(fault_mask, topology)
    scheme2 = apply_labelling_scheme_2(fault_mask, scheme1.labels, topology)

    grid = StatusGrid(topology, faults)
    grid.unsafe = scheme1.labels.copy()
    grid.disabled = scheme2.labels.copy()

    regions, region_index = extract_regions_and_index(
        grid.disabled, grid.faulty, build_index=masks.kernel_enabled()
    )
    return SubMinimumConstruction(
        grid=grid,
        regions=regions,
        rounds_scheme1=scheme1.rounds,
        rounds_scheme2=scheme2.rounds,
        region_index=region_index,
    )


def build_sub_minimum_for_scenario(scenario: FaultScenario) -> SubMinimumConstruction:
    """Construct sub-minimum faulty polygons for a :class:`FaultScenario`."""
    return build_sub_minimum_polygons(scenario.faults, topology=scenario.topology())
