"""Extraction of disjoint fault regions and per-region statistics.

Every construction (FB, FP, MFP) ends with a set of *disabled* nodes; the
maximal 4-connected groups of disabled nodes are the disjoint fault regions
the routing layer must steer around.  The evaluation needs, per region, the
number of faulty and non-faulty nodes it contains (Figures 9 and 10) and
its shape properties (rectangularity for FB, orthogonal convexity for FP
and MFP -- both are asserted by the test suite).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry import masks
from repro.geometry.orthogonal import is_orthogonal_convex, orthogonal_convex_hull
from repro.geometry.rectangle import Rectangle, bounding_rectangle
from repro.types import Coord


@dataclass(frozen=True)
class FaultRegion:
    """One disjoint fault region produced by a construction."""

    index: int
    nodes: FrozenSet[Coord]
    faulty_nodes: FrozenSet[Coord]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a fault region cannot be empty")
        if not self.faulty_nodes <= self.nodes:
            raise ValueError("faulty nodes must be a subset of the region nodes")

    @property
    def size(self) -> int:
        """Total number of nodes (faulty + disabled non-faulty) in the region.

        This is the quantity averaged in the paper's Figure 10.
        """
        return len(self.nodes)

    @property
    def num_faulty(self) -> int:
        """Number of actually faulty nodes covered by the region."""
        return len(self.faulty_nodes)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Number of non-faulty nodes the region disables."""
        return self.size - self.num_faulty

    @property
    def bounding_box(self) -> Rectangle:
        """Bounding rectangle of the region."""
        return bounding_rectangle(self.nodes)

    @property
    def is_rectangle(self) -> bool:
        """Whether the region fills its bounding box exactly."""
        return self.size == self.bounding_box.area

    @property
    def is_orthogonal_convex(self) -> bool:
        """Whether the region satisfies the paper's Definition 1."""
        return is_orthogonal_convex(self.nodes)

    def __contains__(self, node: Coord) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(sorted(self.nodes))


def extract_regions(
    disabled: Iterable[Coord],
    faults: Iterable[Coord],
) -> List[FaultRegion]:
    """Split the disabled node set into maximal 4-connected fault regions.

    Regions are returned in deterministic order (sorted seed node).  Note
    that region extraction uses the physical link adjacency (4-neighbours):
    two regions touching only diagonally are distinct regions, which matches
    how the routing layer perceives them.
    """
    disabled_set: Set[Coord] = set(disabled)
    fault_set: Set[Coord] = set(faults)
    unvisited = set(disabled_set)
    regions: List[FaultRegion] = []
    for seed in sorted(disabled_set):
        if seed not in unvisited:
            continue
        queue = deque([seed])
        unvisited.discard(seed)
        members: Set[Coord] = {seed}
        while queue:
            x, y = queue.popleft()
            for neighbour in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                if neighbour in unvisited:
                    unvisited.discard(neighbour)
                    members.add(neighbour)
                    queue.append(neighbour)
        regions.append(
            FaultRegion(
                index=len(regions),
                nodes=frozenset(members),
                faulty_nodes=frozenset(members & fault_set),
            )
        )
    return regions


def regions_from_masks(disabled: np.ndarray, faulty: np.ndarray) -> List[FaultRegion]:
    """Extract regions from boolean ``[x, y]`` masks.

    Uses the vectorized 4-connected labelling of
    :mod:`repro.geometry.masks`; falls back to the set-based
    :func:`extract_regions` oracle when the kernel is switched off.  Both
    produce bit-identical region lists.
    """
    regions, _ = extract_regions_and_index(disabled, faulty, build_index=False)
    return regions


def _regions_from_labels(
    labels: np.ndarray, count: int, faulty: np.ndarray
) -> List[FaultRegion]:
    """Build the :class:`FaultRegion` list from a canonical label grid."""
    xs, ys = np.nonzero(labels)
    lab = labels[xs, ys]
    order = np.argsort(lab, kind="stable")  # keeps (x, y) order per label
    xs, ys, lab = xs[order], ys[order], lab[order]
    xl, yl = xs.tolist(), ys.tolist()
    bounds = np.searchsorted(lab, np.arange(1, count + 2)).tolist()
    is_fault = faulty[xs, ys]
    fault_lab = lab[is_fault]
    fxl = xs[is_fault].tolist()
    fyl = ys[is_fault].tolist()
    fault_bounds = np.searchsorted(fault_lab, np.arange(1, count + 2)).tolist()
    regions: List[FaultRegion] = []
    for index in range(count):
        start, end = bounds[index], bounds[index + 1]
        fstart, fend = fault_bounds[index], fault_bounds[index + 1]
        regions.append(
            FaultRegion(
                index=index,
                nodes=frozenset(zip(xl[start:end], yl[start:end])),
                faulty_nodes=frozenset(zip(fxl[fstart:fend], fyl[fstart:fend])),
            )
        )
    return regions


def extract_regions_and_index(
    disabled: np.ndarray,
    faulty: np.ndarray,
    build_index: bool = True,
) -> Tuple[List[FaultRegion], "np.ndarray | None"]:
    """Extract regions from masks plus the region-index grid.

    The region-index grid maps every cell to the index of the region that
    contains it (``-1`` outside every region); it gives the routing layer
    O(1) region membership without rebuilding a node->region dict per
    router instantiation.  Pass ``build_index=False`` to skip it when only
    the region list is needed.
    """
    if masks.kernel_enabled():
        labels, count = masks.label_mask(disabled, connectivity=4)
        regions = _regions_from_labels(labels, count, faulty)
        index_grid = (labels.astype(np.int32) - 1) if build_index else None
        return regions, index_grid
    disabled_nodes = {(int(x), int(y)) for x, y in zip(*np.nonzero(disabled))}
    fault_nodes = {(int(x), int(y)) for x, y in zip(*np.nonzero(faulty))}
    regions = extract_regions(disabled_nodes, fault_nodes)
    index_grid = None
    if build_index:
        index_grid = np.full(disabled.shape, -1, dtype=np.int32)
        for region in regions:
            pts = np.asarray(sorted(region.nodes))
            index_grid[pts[:, 0], pts[:, 1]] = region.index
    return regions, index_grid


def convexify_regions(grid, return_index: bool = False):
    """Extract regions from *grid*, filling merged regions to convexity.

    Piling independently constructed per-component polygons (the MFP/DMFP
    superseding step) can produce touching or overlapping polygons whose
    merged region is *not* orthogonal convex -- e.g. a singleton fault
    8-adjacent to another component's hull.  The routing layer requires
    convex regions, so any non-convex merged region is filled to its
    orthogonal convex hull; filling can make further regions touch, hence
    the fixpoint loop (it terminates because the disabled set only grows
    and is bounded by the mesh).  In the common non-overlapping case this
    is a single extraction with no extra work.

    With ``return_index=True`` the result is ``(regions, region_index)``
    where the index grid maps cells to region indices (see
    :func:`extract_regions_and_index`).
    """
    if masks.kernel_enabled():
        while True:
            labels, count = masks.label_mask(grid.disabled, connectivity=4)
            dirty_labels = masks.nonconvex_labels(labels, count)
            if dirty_labels.size == 0:
                # Only the final, convex partition is materialised as
                # FaultRegion objects; intermediate fixpoint iterations
                # stay entirely in array land.
                regions = _regions_from_labels(labels, count, grid.faulty)
                if return_index:
                    return regions, labels.astype(np.int32) - 1
                return regions
            for label in dirty_labels.tolist():
                cells = labels == label
                xs, ys = np.nonzero(cells)
                x0, x1 = int(xs.min()), int(xs.max())
                y0, y1 = int(ys.min()), int(ys.max())
                hull = masks.hull_mask(cells[x0 : x1 + 1, y0 : y1 + 1])
                grid.disabled[x0 : x1 + 1, y0 : y1 + 1] |= hull
                grid.unsafe[x0 : x1 + 1, y0 : y1 + 1] |= hull
    while True:
        regions, index_grid = extract_regions_and_index(
            grid.disabled, grid.faulty, build_index=return_index
        )
        dirty = [r for r in regions if not r.is_orthogonal_convex]
        if not dirty:
            return (regions, index_grid) if return_index else regions
        for region in dirty:
            for node in orthogonal_convex_hull(region.nodes):
                if grid.topology.contains(node) and not grid.disabled[node]:
                    grid.mark_disabled(node)
                    grid.mark_unsafe(node)


def region_statistics(regions: Sequence[FaultRegion]) -> Dict[str, float]:
    """Aggregate statistics over a region list.

    ``mean_size`` is the Figure 10 quantity (average number of faulty and
    non-faulty nodes per region); ``total_disabled_nonfaulty`` is the
    Figure 9 quantity (non-faulty but disabled nodes in the whole network).
    """
    if not regions:
        return {
            "count": 0,
            "mean_size": 0.0,
            "max_size": 0,
            "total_disabled_nonfaulty": 0,
            "total_faulty": 0,
            "convex_fraction": 1.0,
        }
    sizes = [r.size for r in regions]
    return {
        "count": len(regions),
        "mean_size": sum(sizes) / len(sizes),
        "max_size": max(sizes),
        "total_disabled_nonfaulty": sum(r.num_disabled_nonfaulty for r in regions),
        "total_faulty": sum(r.num_faulty for r in regions),
        "convex_fraction": sum(r.is_orthogonal_convex for r in regions) / len(regions),
    }
