"""Extraction of disjoint fault regions and per-region statistics.

Every construction (FB, FP, MFP) ends with a set of *disabled* nodes; the
maximal 4-connected groups of disabled nodes are the disjoint fault regions
the routing layer must steer around.  The evaluation needs, per region, the
number of faulty and non-faulty nodes it contains (Figures 9 and 10) and
its shape properties (rectangularity for FB, orthogonal convexity for FP
and MFP -- both are asserted by the test suite).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry.orthogonal import is_orthogonal_convex, orthogonal_convex_hull
from repro.geometry.rectangle import Rectangle, bounding_rectangle
from repro.types import Coord


@dataclass(frozen=True)
class FaultRegion:
    """One disjoint fault region produced by a construction."""

    index: int
    nodes: FrozenSet[Coord]
    faulty_nodes: FrozenSet[Coord]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a fault region cannot be empty")
        if not self.faulty_nodes <= self.nodes:
            raise ValueError("faulty nodes must be a subset of the region nodes")

    @property
    def size(self) -> int:
        """Total number of nodes (faulty + disabled non-faulty) in the region.

        This is the quantity averaged in the paper's Figure 10.
        """
        return len(self.nodes)

    @property
    def num_faulty(self) -> int:
        """Number of actually faulty nodes covered by the region."""
        return len(self.faulty_nodes)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Number of non-faulty nodes the region disables."""
        return self.size - self.num_faulty

    @property
    def bounding_box(self) -> Rectangle:
        """Bounding rectangle of the region."""
        return bounding_rectangle(self.nodes)

    @property
    def is_rectangle(self) -> bool:
        """Whether the region fills its bounding box exactly."""
        return self.size == self.bounding_box.area

    @property
    def is_orthogonal_convex(self) -> bool:
        """Whether the region satisfies the paper's Definition 1."""
        return is_orthogonal_convex(self.nodes)

    def __contains__(self, node: Coord) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return self.size

    def __iter__(self):
        return iter(sorted(self.nodes))


def extract_regions(
    disabled: Iterable[Coord],
    faults: Iterable[Coord],
) -> List[FaultRegion]:
    """Split the disabled node set into maximal 4-connected fault regions.

    Regions are returned in deterministic order (sorted seed node).  Note
    that region extraction uses the physical link adjacency (4-neighbours):
    two regions touching only diagonally are distinct regions, which matches
    how the routing layer perceives them.
    """
    disabled_set: Set[Coord] = set(disabled)
    fault_set: Set[Coord] = set(faults)
    unvisited = set(disabled_set)
    regions: List[FaultRegion] = []
    for seed in sorted(disabled_set):
        if seed not in unvisited:
            continue
        queue = deque([seed])
        unvisited.discard(seed)
        members: Set[Coord] = {seed}
        while queue:
            x, y = queue.popleft()
            for neighbour in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
                if neighbour in unvisited:
                    unvisited.discard(neighbour)
                    members.add(neighbour)
                    queue.append(neighbour)
        regions.append(
            FaultRegion(
                index=len(regions),
                nodes=frozenset(members),
                faulty_nodes=frozenset(members & fault_set),
            )
        )
    return regions


def regions_from_masks(disabled: np.ndarray, faulty: np.ndarray) -> List[FaultRegion]:
    """Convenience wrapper extracting regions from boolean ``[x, y]`` masks."""
    disabled_nodes = {(int(x), int(y)) for x, y in zip(*np.nonzero(disabled))}
    fault_nodes = {(int(x), int(y)) for x, y in zip(*np.nonzero(faulty))}
    return extract_regions(disabled_nodes, fault_nodes)


def convexify_regions(grid) -> List[FaultRegion]:
    """Extract regions from *grid*, filling merged regions to convexity.

    Piling independently constructed per-component polygons (the MFP/DMFP
    superseding step) can produce touching or overlapping polygons whose
    merged region is *not* orthogonal convex -- e.g. a singleton fault
    8-adjacent to another component's hull.  The routing layer requires
    convex regions, so any non-convex merged region is filled to its
    orthogonal convex hull; filling can make further regions touch, hence
    the fixpoint loop (it terminates because the disabled set only grows
    and is bounded by the mesh).  In the common non-overlapping case this
    is a single extraction with no extra work.
    """
    while True:
        regions = regions_from_masks(grid.disabled, grid.faulty)
        dirty = [r for r in regions if not r.is_orthogonal_convex]
        if not dirty:
            return regions
        for region in dirty:
            for node in orthogonal_convex_hull(region.nodes):
                if grid.topology.contains(node) and not grid.disabled[node]:
                    grid.mark_disabled(node)
                    grid.mark_unsafe(node)


def region_statistics(regions: Sequence[FaultRegion]) -> Dict[str, float]:
    """Aggregate statistics over a region list.

    ``mean_size`` is the Figure 10 quantity (average number of faulty and
    non-faulty nodes per region); ``total_disabled_nonfaulty`` is the
    Figure 9 quantity (non-faulty but disabled nodes in the whole network).
    """
    if not regions:
        return {
            "count": 0,
            "mean_size": 0.0,
            "max_size": 0,
            "total_disabled_nonfaulty": 0,
            "total_faulty": 0,
            "convex_fraction": 1.0,
        }
    sizes = [r.size for r in regions]
    return {
        "count": len(regions),
        "mean_size": sum(sizes) / len(sizes),
        "max_size": max(sizes),
        "total_disabled_nonfaulty": sum(r.num_disabled_nonfaulty for r in regions),
        "total_faulty": sum(r.num_faulty for r in regions),
        "convex_fraction": sum(r.is_orthogonal_convex for r in regions) / len(regions),
    }
