"""Labelling schemes 1 and 2 as synchronous fixed-point iterations.

The two labelling schemes of the paper (Section 2.3, originally from Wu's
IPDPS 2001 sub-minimum faulty polygon construction) drive both baseline
fault models and the centralized minimum-faulty-polygon emulation:

* **Labelling scheme 1** (growing phase): all faulty nodes are *unsafe* and
  all non-faulty nodes are *safe* initially.  A non-faulty node changes to
  unsafe if it has a faulty or unsafe neighbour in **both** dimensions;
  otherwise it remains safe.  At the fixed point the connected unsafe
  regions are rectangular faulty blocks.
* **Labelling scheme 2** (shrinking phase): faulty nodes are *disabled*,
  safe nodes are *enabled*; an unsafe non-faulty node starts disabled and
  becomes enabled once it has two or more enabled neighbours.  At the fixed
  point the disabled regions are orthogonal convex polygons.

Each node only ever inspects its neighbours, so a synchronous sweep of the
whole grid corresponds to one *round* of neighbour information exchange in
the distributed system -- this is exactly the quantity reported in the
paper's Figure 11.  The implementation below performs the sweeps as whole-
array numpy operations (one shift per direction), which makes the 100x100
evaluation sweeps fast while producing the same label trajectory as the
per-node message-passing protocol in :mod:`repro.distributed.labelling_protocol`
(the equivalence is asserted by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.mesh.topology import Topology, Torus2D


@dataclass(frozen=True)
class LabellingResult:
    """Outcome of running one labelling scheme to its fixed point.

    ``labels`` is a boolean array indexed ``[x, y]``; its meaning depends on
    the scheme (``True`` = unsafe for scheme 1, ``True`` = disabled for
    scheme 2).  ``rounds`` is the number of synchronous update rounds in
    which at least one node changed its label; the fixed point is reached
    after exactly this many rounds of neighbour information exchange.
    """

    labels: np.ndarray
    rounds: int


def _shift(mask: np.ndarray, dx: int, dy: int, wrap: bool, fill=None) -> np.ndarray:
    """Return *mask* shifted by ``(dx, dy)`` with zero/*fill* (or wrap) fill.

    ``shifted[x, y] == mask[x - dx, y - dy]``: the value each node sees from
    its neighbour at offset ``(-dx, -dy)``.  On a mesh, positions outside the
    grid contribute ``False`` (a missing neighbour is never unsafe/enabled),
    or *fill* when given -- integer label arrays shifted by the mask kernel
    in :mod:`repro.geometry.masks` use a sentinel fill; on a torus the array
    wraps around.
    """
    if wrap:
        return np.roll(mask, shift=(dx, dy), axis=(0, 1))
    if fill is None:
        result = np.zeros_like(mask)
    else:
        result = np.full_like(mask, fill)
    width, height = mask.shape
    src_x = slice(max(0, -dx), width - max(0, dx))
    dst_x = slice(max(0, dx), width - max(0, -dx))
    src_y = slice(max(0, -dy), height - max(0, dy))
    dst_y = slice(max(0, dy), height - max(0, -dy))
    result[dst_x, dst_y] = mask[src_x, src_y]
    return result


def _neighbour_views(
    mask: np.ndarray, wrap: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return what every node sees of *mask* at its W, E, S, N neighbours."""
    west = _shift(mask, +1, 0, wrap)   # value of the neighbour at x-1
    east = _shift(mask, -1, 0, wrap)   # value of the neighbour at x+1
    south = _shift(mask, 0, +1, wrap)  # value of the neighbour at y-1
    north = _shift(mask, 0, -1, wrap)  # value of the neighbour at y+1
    return west, east, south, north


def apply_labelling_scheme_1(
    faulty: np.ndarray,
    topology: Optional[Topology] = None,
    max_rounds: Optional[int] = None,
) -> LabellingResult:
    """Run labelling scheme 1 (growing) to its fixed point.

    Parameters
    ----------
    faulty:
        Boolean array ``[x, y]`` of injected faults.
    topology:
        Optional topology; only used to decide whether neighbourhoods wrap
        (torus) or not (mesh, the default).
    max_rounds:
        Optional safety cap; the fixed point is always reached in at most
        ``width + height`` rounds, so the default cap is generous.

    Returns
    -------
    LabellingResult
        ``labels`` is the unsafe mask (faulty nodes included); ``rounds`` is
        the number of rounds in which some node newly became unsafe.
    """
    wrap = isinstance(topology, Torus2D)
    unsafe = faulty.copy()
    width, height = unsafe.shape
    cap = max_rounds if max_rounds is not None else 2 * (width + height)
    rounds = 0
    for _ in range(cap):
        west, east, south, north = _neighbour_views(unsafe, wrap)
        x_threat = west | east
        y_threat = south | north
        new_unsafe = unsafe | (x_threat & y_threat)
        if np.array_equal(new_unsafe, unsafe):
            break
        unsafe = new_unsafe
        rounds += 1
    else:  # pragma: no cover - the cap is never hit for valid inputs
        raise RuntimeError("labelling scheme 1 did not converge")
    return LabellingResult(labels=unsafe, rounds=rounds)


def apply_labelling_scheme_2(
    faulty: np.ndarray,
    unsafe: np.ndarray,
    topology: Optional[Topology] = None,
    max_rounds: Optional[int] = None,
    missing_neighbours_enabled: bool = False,
) -> LabellingResult:
    """Run labelling scheme 2 (shrinking) to its fixed point.

    Parameters
    ----------
    faulty:
        Boolean fault mask; these nodes stay disabled forever.
    unsafe:
        Output of labelling scheme 1; non-faulty unsafe nodes start disabled
        and may be re-enabled.
    topology:
        Optional topology (wrap behaviour on a torus).
    max_rounds:
        Optional safety cap on the number of rounds.
    missing_neighbours_enabled:
        On a mesh, whether a neighbour position that falls outside the grid
        counts as an *enabled* neighbour.  The physical network has no such
        node, so the faithful baseline behaviour (used for the FB/FP models)
        is ``False``.  The per-component emulation of the centralized
        minimum-faulty-polygon solution sets it to ``True`` so that mesh
        borders do not artificially pin non-faulty nodes inside a polygon;
        see ``repro.core.mfp`` for the discussion.

    Returns
    -------
    LabellingResult
        ``labels`` is the disabled mask; ``rounds`` counts the rounds in
        which some node became enabled.
    """
    if faulty.shape != unsafe.shape:
        raise ValueError("faulty and unsafe masks must have the same shape")
    wrap = isinstance(topology, Torus2D)
    disabled = unsafe.copy()
    disabled |= faulty  # faulty nodes are disabled by definition
    width, height = disabled.shape
    cap = max_rounds if max_rounds is not None else 4 * (width + height)
    rounds = 0
    if wrap and missing_neighbours_enabled:
        # A torus has no missing neighbours; the flag is meaningless there.
        missing_neighbours_enabled = False
    for _ in range(cap):
        enabled = ~disabled
        west, east, south, north = _neighbour_views(enabled, wrap)
        if missing_neighbours_enabled and not wrap:
            # Positions beyond the mesh border behave as permanently enabled
            # virtual nodes: patch the shifted views on the border slices.
            west[0, :] = True
            east[-1, :] = True
            south[:, 0] = True
            north[:, -1] = True
        enabled_neighbours = (
            west.astype(np.int8)
            + east.astype(np.int8)
            + south.astype(np.int8)
            + north.astype(np.int8)
        )
        newly_enabled = disabled & ~faulty & (enabled_neighbours >= 2)
        if not newly_enabled.any():
            break
        disabled = disabled & ~newly_enabled
        rounds += 1
    else:  # pragma: no cover - the cap is never hit for valid inputs
        raise RuntimeError("labelling scheme 2 did not converge")
    return LabellingResult(labels=disabled, rounds=rounds)


def faults_to_mask(faults, width: int, height: int) -> np.ndarray:
    """Build a boolean ``[x, y]`` fault mask from a coordinate collection.

    The whole collection is validated and written with one fancy-index
    assignment; an out-of-grid fault raises ``ValueError`` naming the first
    offending coordinate (in iteration order).
    """
    from repro.geometry.masks import validated_coords

    mask = np.zeros((width, height), dtype=bool)
    coords = validated_coords(faults, width, height, kind="fault", where="grid")
    if coords.size:
        mask[coords[:, 0], coords[:, 1]] = True
    return mask
