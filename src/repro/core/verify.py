"""Verification utilities for fault-region constructions.

These checks encode, as executable predicates, the properties the paper
proves or assumes about each fault-region model:

* every injected fault is covered by some region;
* regions are pairwise disjoint;
* faulty-block regions are filled rectangles;
* faulty-polygon regions are orthogonal convex (Definition 1);
* a minimum-polygon construction is *minimal*: every region equals the
  union of the minimum orthogonal convex hulls of the fault components it
  covers, so no region can be replaced by polygons containing fewer
  non-faulty nodes (the paper's Theorem in Section 3.1).

They are used by the test suite, but they are also part of the public API
so downstream users can validate constructions produced by their own
variants of the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set

from repro.core.components import find_components
from repro.core.regions import FaultRegion, extract_regions
from repro.geometry.orthogonal import orthogonal_convex_hull
from repro.types import Coord


@dataclass
class VerificationReport:
    """Outcome of verifying one construction."""

    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every check passed."""
        return not self.failures

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        """Register one check result."""
        self.checks.append(name)
        if not passed:
            message = name if not detail else f"{name}: {detail}"
            self.failures.append(message)

    def summary(self) -> str:
        """Human-readable one-line summary."""
        status = "OK" if self.ok else "FAILED"
        return (
            f"{status}: {len(self.checks) - len(self.failures)}/{len(self.checks)} "
            f"checks passed"
            + ("" if self.ok else f" ({'; '.join(self.failures)})")
        )


def _region_list(construction_or_regions) -> List[FaultRegion]:
    if hasattr(construction_or_regions, "regions"):
        return list(construction_or_regions.regions)
    return list(construction_or_regions)


def verify_coverage(
    regions: Sequence[FaultRegion] | object, faults: Iterable[Coord]
) -> VerificationReport:
    """Check that the regions cover every fault and nothing overlaps."""
    regions = _region_list(regions)
    report = VerificationReport()
    fault_set = set(faults)
    covered: Set[Coord] = set()
    overlap = False
    for region in regions:
        if covered & region.nodes:
            overlap = True
        covered |= region.nodes
    report.record("all faults covered", fault_set <= covered,
                  f"missing {sorted(fault_set - covered)[:5]}")
    report.record("regions are disjoint", not overlap)
    report.record(
        "regions contain only faults and disabled nodes",
        all(region.faulty_nodes <= fault_set for region in regions),
    )
    return report


def verify_faulty_blocks(construction, faults: Iterable[Coord]) -> VerificationReport:
    """Check the rectangular faulty block invariants (FB model)."""
    regions = _region_list(construction)
    report = verify_coverage(regions, faults)
    report.record(
        "every block is a filled rectangle",
        all(region.is_rectangle for region in regions),
    )
    return report


def verify_orthogonal_convexity(construction, faults: Iterable[Coord]) -> VerificationReport:
    """Check that every region is an orthogonal convex polygon (FP/MFP)."""
    regions = _region_list(construction)
    report = verify_coverage(regions, faults)
    not_convex = [r.index for r in regions if not r.is_orthogonal_convex]
    report.record(
        "every region is orthogonal convex", not not_convex,
        f"regions {not_convex[:5]}",
    )
    return report


def _merge_fill(disabled: Set[Coord], fault_set: Set[Coord]) -> Set[Coord]:
    """Close a disabled set under the merged-region convexity fill.

    Mirrors :func:`repro.core.regions.convexify_regions`: piled component
    hulls that touch or overlap merge into one region, and a merged region
    that is not orthogonal convex is filled to its hull (to a fixpoint).
    Hulls never leave the bounding box of their nodes, so no topology
    clipping is needed here.
    """
    expected = set(disabled)
    while True:
        regions = extract_regions(expected, fault_set)
        dirty = [r for r in regions if not r.is_orthogonal_convex]
        if not dirty:
            return expected
        for region in dirty:
            expected |= orthogonal_convex_hull(region.nodes)


def verify_minimality(construction, faults: Iterable[Coord]) -> VerificationReport:
    """Check the minimum faulty polygon optimality property.

    The disabled set of a minimum construction must equal the union of the
    faults and the minimum orthogonal convex hulls of the fault components
    -- closed under the merged-region convexity fill the assembles apply
    when independently built polygons touch or overlap.  No orthogonal
    convex covering can use fewer non-faulty nodes (the hull of each
    component is contained in every orthogonal convex superset of that
    component).
    """
    regions = _region_list(construction)
    report = verify_orthogonal_convexity(regions, faults)
    fault_set = set(faults)
    expected: Set[Coord] = set(fault_set)
    for component in find_components(fault_set):
        expected |= orthogonal_convex_hull(component.nodes)
    expected = _merge_fill(expected, fault_set)
    actual: Set[Coord] = set()
    for region in regions:
        actual |= region.nodes
    report.record(
        "disabled set equals the union of component hulls",
        actual == expected,
        f"extra {sorted(actual - expected)[:5]}, missing {sorted(expected - actual)[:5]}",
    )
    return report


def compare_constructions_report(
    fb_construction, fp_construction, mfp_construction, faults: Iterable[Coord]
) -> VerificationReport:
    """Cross-model consistency: the FB ⊇ FP ⊇ MFP containment chain."""
    report = VerificationReport()
    fb = fb_construction.grid.disabled_set()
    fp = fp_construction.grid.disabled_set()
    mfp = mfp_construction.grid.disabled_set()
    fault_set = set(faults)
    report.record(
        "faults in every model",
        fault_set <= mfp and fault_set <= fp and fault_set <= fb,
    )
    report.record("FP never disables a node FB keeps", fp <= fb)
    report.record("MFP never disables a node FP keeps", mfp <= fp)
    report.record(
        "MFP disables the fewest non-faulty nodes",
        len(mfp - fault_set) <= len(fp - fault_set) <= len(fb - fault_set),
    )
    return report
