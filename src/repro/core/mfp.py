"""The minimum faulty polygon model (MFP) -- the paper's contribution.

Both centralized solutions from Section 3.1 are implemented:

* **Solution A** (``build_minimum_polygons_via_labelling``): for every
  faulty component, emulate labelling scheme 1 to grow the component into
  its *virtual faulty block* (the bounding box) and labelling scheme 2 to
  shrink the block back to an orthogonal convex polygon; pile the
  per-component diagrams with the superseding rule.
* **Solution B** (``build_minimum_polygons``): for every faulty component,
  directly disable all nodes in its concave row and column sections, i.e.
  take the minimum orthogonal convex hull of the component; pile with the
  superseding rule.  This is the default because the hull fill is the
  provably minimum construction and is cheaper to compute.

Both produce the same disabled set (asserted by the test suite) except for
one documented boundary effect: labelling scheme 2 can never re-enable a
non-faulty node whose enabled neighbours fall outside the physical mesh
(e.g. a mesh corner wedged between two faults), while the hull does not need
that node.  Solution A therefore runs scheme 2 with virtual enabled
neighbours beyond the mesh border (``missing_neighbours_enabled=True``) so
that the two solutions agree everywhere; the flag and its rationale are
described in :func:`repro.core.labelling.apply_labelling_scheme_2`.

The number of rounds reported for the centralized solution (CMFP in
Figure 11) is the number of synchronous neighbour-exchange rounds of the
per-component labelling emulation; components are processed in parallel in
the network, so the network-wide figure is the maximum over components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.components import FaultComponent, find_components
from repro.core.labelling import apply_labelling_scheme_1, apply_labelling_scheme_2
from repro.core.regions import FaultRegion, convexify_regions
from repro.core.superseding import pile_statuses
from repro.faults.scenario import FaultScenario
from repro.geometry import masks
from repro.geometry.orthogonal import orthogonal_convex_hull_sets
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord, FaultRegionModel, NodeKind

#: Bounding-box area below which the per-component hull fill runs on plain
#: sets: under ~8x8 cells the numpy call overhead exceeds the interpreted
#: loop cost (measured crossover; both paths are bit-identical).
_SET_HULL_AREA = 64


@dataclass(frozen=True)
class ComponentPolygon:
    """The minimum faulty polygon of a single component.

    ``polygon`` contains the component nodes plus the non-faulty nodes the
    polygon disables (the concave row/column sections); ``rounds_scheme1``
    and ``rounds_scheme2`` are the per-component emulation round counts
    (zero for the direct hull construction).

    ``polygon_coords`` optionally carries the polygon as an ``(n, 2)``
    coordinate array (present when the mask kernel built the polygon).  It
    is redundant with ``polygon`` -- it exists so the network-wide assembly
    and the session caches can concatenate whole arrays instead of
    iterating coordinate sets; it is excluded from equality/hashing.
    """

    component: FaultComponent
    polygon: frozenset
    rounds_scheme1: int = 0
    rounds_scheme2: int = 0
    polygon_coords: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @property
    def added_nodes(self) -> frozenset:
        """Non-faulty nodes the polygon disables for this component."""
        return frozenset(self.polygon - self.component.nodes)

    @property
    def rounds(self) -> int:
        """Rounds of the per-component labelling emulation."""
        return self.rounds_scheme1 + self.rounds_scheme2


@dataclass
class MinimumPolygonConstruction:
    """Result of the centralized minimum faulty polygon construction."""

    grid: StatusGrid
    regions: List[FaultRegion]
    components: List[FaultComponent]
    component_polygons: List[ComponentPolygon]
    rounds: int
    model: FaultRegionModel = FaultRegionModel.MINIMUM_FAULTY_POLYGON
    #: Grid mapping every cell to the index of the region containing it
    #: (-1 outside every region); the routing layer's O(1) membership test.
    region_index: Optional[np.ndarray] = field(default=None, compare=False, repr=False)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the polygons (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average polygon size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    @property
    def polygons(self) -> List[FaultRegion]:
        """Alias for :attr:`regions` using the paper's terminology."""
        return self.regions

    def all_orthogonal_convex(self) -> bool:
        """Whether every final region satisfies Definition 1."""
        return all(region.is_orthogonal_convex for region in self.regions)


def component_minimum_polygon(component: FaultComponent) -> ComponentPolygon:
    """Return the minimum faulty polygon of one component (hull fill).

    This is centralized Solution B restricted to a single component: the
    concave row and column sections are filled until the region is
    orthogonal convex, yielding the minimum orthogonal convex polygon that
    covers every fault of the component.
    """
    if masks.kernel_enabled():
        nodes = component.nodes
        box = component.bounding_box
        min_x, min_y = box.min_x, box.min_y
        width, height = box.width, box.height
        if width * height == len(nodes):
            # The component already fills its bounding box (singletons and
            # solid blocks, the overwhelming majority in random fault
            # patterns): it is its own hull, no rasterisation needed; the
            # assembly batches the coordinates of all such polygons into a
            # single array.
            return ComponentPolygon(component=component, polygon=nodes)
        if _SET_HULL_AREA < width * height <= masks.MAX_LOCAL_AREA:
            pts = np.asarray(list(nodes))
            mask = np.zeros((width, height), dtype=bool)
            mask[pts[:, 0] - min_x, pts[:, 1] - min_y] = True
            hull = masks.hull_mask(mask)
            hull_xs, hull_ys = np.nonzero(hull)
            hull_xs = hull_xs + min_x
            hull_ys = hull_ys + min_y
            coords = np.empty((hull_xs.size, 2), dtype=hull_xs.dtype)
            coords[:, 0] = hull_xs
            coords[:, 1] = hull_ys
            return ComponentPolygon(
                component=component,
                polygon=frozenset(zip(hull_xs.tolist(), hull_ys.tolist())),
                polygon_coords=coords,
            )
        # Below the crossover the interpreted set fill beats the numpy call
        # overhead on a tiny array; results are identical either way.
    hull = orthogonal_convex_hull_sets(component.nodes)
    return ComponentPolygon(component=component, polygon=frozenset(hull))


def component_polygon_via_labelling(
    component: FaultComponent,
) -> ComponentPolygon:
    """Return the component's polygon via the labelling-scheme emulation.

    This is centralized Solution A restricted to a single component: scheme
    1 grows the component into its virtual faulty block (bounding box) and
    scheme 2 shrinks the block back.  The round counts of both phases are
    recorded; they are what the CMFP curve of Figure 11 measures.
    """
    box = component.bounding_box
    width, height = box.width, box.height
    local_faults = np.zeros((width, height), dtype=bool)
    for x, y in component.nodes:
        local_faults[x - box.min_x, y - box.min_y] = True

    scheme1 = apply_labelling_scheme_1(local_faults)
    # The virtual faulty block is the full bounding box; for a connected
    # component scheme 1 always grows to the full box, which the test suite
    # asserts.  Using the box directly keeps the construction faithful to
    # the paper's step 2 even in the degenerate single-node case.
    virtual_block = np.ones((width, height), dtype=bool)
    scheme2 = apply_labelling_scheme_2(
        local_faults,
        virtual_block,
        missing_neighbours_enabled=True,
    )
    polygon = {
        (box.min_x + int(x), box.min_y + int(y))
        for x, y in zip(*np.nonzero(scheme2.labels))
    }
    poly_xs, poly_ys = np.nonzero(scheme2.labels)
    return ComponentPolygon(
        component=component,
        polygon=frozenset(polygon),
        rounds_scheme1=scheme1.rounds,
        rounds_scheme2=scheme2.rounds,
        polygon_coords=np.column_stack((poly_xs + box.min_x, poly_ys + box.min_y)),
    )


def _shift3(stack: np.ndarray, dx: int, dy: int, fill: int = 0) -> np.ndarray:
    """Shift a ``[component, x, y]`` stack by ``(dx, dy)`` on the grid axes.

    3-D counterpart of :func:`repro.core.labelling._shift` (zero/*fill*
    beyond the canvas), applied to every stacked component at once.
    """
    out = np.full_like(stack, fill) if fill else np.zeros_like(stack)
    width, height = stack.shape[1], stack.shape[2]
    src_x = slice(max(0, -dx), width - max(0, dx))
    dst_x = slice(max(0, dx), width - max(0, -dx))
    src_y = slice(max(0, -dy), height - max(0, dy))
    dst_y = slice(max(0, dy), height - max(0, -dy))
    out[:, dst_x, dst_y] = stack[:, src_x, src_y]
    return out


def _batched_scheme1_rounds(faulty: np.ndarray) -> np.ndarray:
    """Per-component scheme-1 round counts over a ``[component, x, y]`` stack.

    Each slice evolves exactly as an isolated
    :func:`repro.core.labelling.apply_labelling_scheme_1` run on its own
    local grid (cells beyond a component's bounding box stay safe, matching
    the zero fill of the 2-D sweep), so the per-slice count of changing
    iterations equals the per-component ``rounds`` bit for bit.
    """
    unsafe = faulty.copy()
    rounds = np.zeros(faulty.shape[0], dtype=np.int64)
    alive = np.arange(faulty.shape[0])
    iteration = 0
    while alive.size:
        x_threat = _shift3(unsafe, 1, 0) | _shift3(unsafe, -1, 0)
        y_threat = _shift3(unsafe, 0, 1) | _shift3(unsafe, 0, -1)
        growth = x_threat & y_threat & ~unsafe
        changed = growth.any(axis=(1, 2))
        iteration += 1
        rounds[alive[changed]] = iteration
        unsafe |= growth
        # Both labelling schemes are monotone, so a slice that did not
        # change is at its fixed point forever: drop it from the stack.
        if not changed.all():
            unsafe = unsafe[changed]
            alive = alive[changed]
    return rounds


def _batched_scheme2_rounds(faulty: np.ndarray, virtual_block: np.ndarray) -> np.ndarray:
    """Per-component scheme-2 round counts (``missing_neighbours_enabled``).

    Mirrors :func:`repro.core.labelling.apply_labelling_scheme_2` with
    virtual enabled neighbours beyond the canvas border; cells outside a
    component's bounding box are enabled real cells, which is exactly what
    the flag provides at the border of a tight local grid.
    """
    disabled = virtual_block | faulty
    rounds = np.zeros(faulty.shape[0], dtype=np.int64)
    alive = np.arange(faulty.shape[0])
    iteration = 0
    while alive.size:
        enabled = (~disabled).astype(np.int8)
        count = _shift3(enabled, 1, 0, fill=1)
        count += _shift3(enabled, -1, 0, fill=1)
        count += _shift3(enabled, 0, 1, fill=1)
        count += _shift3(enabled, 0, -1, fill=1)
        newly_enabled = disabled & ~faulty & (count >= 2)
        changed = newly_enabled.any(axis=(1, 2))
        iteration += 1
        rounds[alive[changed]] = iteration
        disabled &= ~newly_enabled
        # Monotone shrinking: unchanged slices are done, drop them.
        if not changed.all():
            disabled = disabled[changed]
            faulty = faulty[changed]
            alive = alive[changed]
    return rounds


#: Upper bound on cells per batched-emulation chunk (bool arrays; a few MB).
_EMULATION_CHUNK_CELLS = 1 << 22


def emulate_rounds_each(components: Sequence[FaultComponent]) -> List[int]:
    """Per-component labelling-emulation round counts, computed batched.

    Components that fill their bounding box (singletons, solid blocks) need
    zero rounds -- scheme 1 starts at its fixed point and scheme 2 has
    nothing to re-enable -- and are skipped outright.  The remaining
    components are padded to shared canvas sizes, stacked along a leading
    axis and emulated together: one whole-stack array sweep advances every
    component's labelling by one round, with per-slice change tracking
    recovering the individual round counts.  Results are identical to
    looping :func:`component_polygon_via_labelling` (property-tested).
    """
    rounds = [0] * len(components)
    pending: List[Tuple[int, int, int, FaultComponent]] = []
    for position, component in enumerate(components):
        box = component.bounding_box
        if box.width * box.height == component.size:
            continue  # already its own fixed point: zero rounds
        # Canvases are padded to power-of-two sizes so that many components
        # share one stacked batch; the padding cells stay safe in scheme 1
        # and enabled in scheme 2, so they never influence a component.
        # Large components keep their exact bounding box -- they rarely
        # share a batch, and the pow-2 padding would only add dead cells
        # to every one of their (many) sweep iterations.
        if box.width * box.height > 4096:
            canvas_w, canvas_h = box.width, box.height
        else:
            canvas_w = 1 << (box.width - 1).bit_length()
            canvas_h = 1 << (box.height - 1).bit_length()
        pending.append((canvas_w, canvas_h, position, component))
    pending.sort(key=lambda item: (item[0], item[1], item[2]))
    start = 0
    while start < len(pending):
        canvas_w, canvas_h = pending[start][0], pending[start][1]
        limit = max(1, _EMULATION_CHUNK_CELLS // (canvas_w * canvas_h))
        chunk = [
            item
            for item in pending[start : start + limit]
            if (item[0], item[1]) == (canvas_w, canvas_h)
        ]
        start += len(chunk)
        faulty = np.zeros((len(chunk), canvas_w, canvas_h), dtype=bool)
        virtual_block = np.zeros_like(faulty)
        for slot, (_, _, _, component) in enumerate(chunk):
            box = component.bounding_box
            for x, y in component.nodes:
                faulty[slot, x - box.min_x, y - box.min_y] = True
            virtual_block[slot, : box.width, : box.height] = True
        scheme1 = _batched_scheme1_rounds(faulty)
        scheme2 = _batched_scheme2_rounds(faulty, virtual_block)
        for slot, (_, _, position, _) in enumerate(chunk):
            rounds[position] = int(scheme1[slot] + scheme2[slot])
    return rounds


def emulate_rounds(components: Sequence[FaultComponent]) -> int:
    """Maximum per-component labelling-emulation rounds (see
    :func:`emulate_rounds_each`)."""
    return max(emulate_rounds_each(components), default=0)


def assemble_minimum_polygons(
    faults: Sequence[Coord],
    topology: Topology,
    component_polygons: List[ComponentPolygon],
    rounds: int,
    components: List[FaultComponent],
) -> MinimumPolygonConstruction:
    """Pile per-component polygons into a network-wide construction result.

    Exposed so that callers that maintain the component partition and the
    per-component polygons themselves (notably the incremental
    :class:`repro.api.MeshSession`) can reuse the piling/superseding step
    without recomputing every polygon.

    With the mask kernel enabled the piling is a whole-array OR of the
    per-component polygon masks; the superseding rule (faulty > disabled >
    enabled) holds trivially because the injected faults are already marked
    faulty/disabled on the grid.  The set-based piling below it is the
    oracle path (``repro.geometry.masks.use_kernel(False)``).
    """
    grid = StatusGrid(topology, faults)
    if masks.kernel_enabled():
        arrays: List[np.ndarray] = []
        loose: List[Coord] = []
        for entry in component_polygons:
            if entry.polygon_coords is not None:
                arrays.append(entry.polygon_coords)
            else:
                loose.extend(entry.polygon)
        if loose:
            arrays.append(np.asarray(loose))
        if arrays:
            pts = np.concatenate(arrays, axis=0)
            width, height = grid.disabled.shape
            keep = (
                (pts[:, 0] >= 0)
                & (pts[:, 0] < width)
                & (pts[:, 1] >= 0)
                & (pts[:, 1] < height)
            )
            pts = pts[keep]
            grid.disabled[pts[:, 0], pts[:, 1]] = True
            grid.unsafe[pts[:, 0], pts[:, 1]] = True
    else:
        fault_set = set(faults)
        layers = []
        for entry in component_polygons:
            layer: Dict[Coord, NodeKind] = {}
            for node in entry.polygon:
                if node in fault_set:
                    layer[node] = NodeKind.FAULTY
                else:
                    layer[node] = NodeKind.DISABLED
            layers.append(layer)
        piled = pile_statuses(layers)
        for node, status in piled.items():
            if status == NodeKind.DISABLED and topology.contains(node):
                grid.mark_disabled(node)
                grid.mark_unsafe(node)
    # Overlapping per-component polygons can merge into a non-convex region;
    # fill such regions to their hulls so every final region satisfies
    # Definition 1 (which the extended e-cube router depends on).  The
    # region-index grid is only produced on the kernel path, where the
    # labelling yields it for free; the oracle path mirrors the original
    # set-based construction exactly.
    if masks.kernel_enabled():
        regions, region_index = convexify_regions(grid, return_index=True)
    else:
        regions, region_index = convexify_regions(grid), None
    return MinimumPolygonConstruction(
        grid=grid,
        regions=regions,
        components=components,
        component_polygons=component_polygons,
        rounds=rounds,
        region_index=region_index,
    )


def build_minimum_polygons(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
    compute_rounds: bool = True,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons (centralized Solution B, default).

    Phase 1 groups the faults into 8-adjacent components; phase 2 fills each
    component's concave row and column sections; the superseding rule piles
    the per-component results.  The reported ``rounds`` is the CMFP
    emulation cost, i.e. the maximum per-component labelling rounds, which
    the paper uses for the CMFP curve of Figure 11 (the hull fill itself is
    a centralized computation and exchanges no messages).  Pass
    ``compute_rounds=False`` to skip the emulation when only the node
    statuses are needed (Figures 9 and 10).
    """
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    components = find_components(faults)
    component_polygons = [component_minimum_polygon(c) for c in components]
    rounds = 0
    if compute_rounds:
        # Round accounting follows the labelling emulation (Solution A).
        if masks.kernel_enabled():
            rounds = emulate_rounds(components)
        else:
            for component in components:
                emulated = component_polygon_via_labelling(component)
                rounds = max(rounds, emulated.rounds)
    return assemble_minimum_polygons(faults, topology, component_polygons, rounds, components)


def build_minimum_polygons_via_labelling(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons via the labelling emulation
    (centralized Solution A)."""
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    components = find_components(faults)
    component_polygons = [component_polygon_via_labelling(c) for c in components]
    rounds = max((entry.rounds for entry in component_polygons), default=0)
    return assemble_minimum_polygons(faults, topology, component_polygons, rounds, components)


def build_minimum_polygons_for_scenario(
    scenario: FaultScenario,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons for a :class:`FaultScenario`."""
    return build_minimum_polygons(scenario.faults, topology=scenario.topology())
