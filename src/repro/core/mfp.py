"""The minimum faulty polygon model (MFP) -- the paper's contribution.

Both centralized solutions from Section 3.1 are implemented:

* **Solution A** (``build_minimum_polygons_via_labelling``): for every
  faulty component, emulate labelling scheme 1 to grow the component into
  its *virtual faulty block* (the bounding box) and labelling scheme 2 to
  shrink the block back to an orthogonal convex polygon; pile the
  per-component diagrams with the superseding rule.
* **Solution B** (``build_minimum_polygons``): for every faulty component,
  directly disable all nodes in its concave row and column sections, i.e.
  take the minimum orthogonal convex hull of the component; pile with the
  superseding rule.  This is the default because the hull fill is the
  provably minimum construction and is cheaper to compute.

Both produce the same disabled set (asserted by the test suite) except for
one documented boundary effect: labelling scheme 2 can never re-enable a
non-faulty node whose enabled neighbours fall outside the physical mesh
(e.g. a mesh corner wedged between two faults), while the hull does not need
that node.  Solution A therefore runs scheme 2 with virtual enabled
neighbours beyond the mesh border (``missing_neighbours_enabled=True``) so
that the two solutions agree everywhere; the flag and its rationale are
described in :func:`repro.core.labelling.apply_labelling_scheme_2`.

The number of rounds reported for the centralized solution (CMFP in
Figure 11) is the number of synchronous neighbour-exchange rounds of the
per-component labelling emulation; components are processed in parallel in
the network, so the network-wide figure is the maximum over components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.components import FaultComponent, find_components
from repro.core.labelling import (
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
    faults_to_mask,
)
from repro.core.regions import FaultRegion, convexify_regions
from repro.core.superseding import pile_statuses
from repro.faults.scenario import FaultScenario
from repro.geometry.orthogonal import orthogonal_convex_hull
from repro.geometry.rectangle import Rectangle
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord, FaultRegionModel, NodeKind


@dataclass(frozen=True)
class ComponentPolygon:
    """The minimum faulty polygon of a single component.

    ``polygon`` contains the component nodes plus the non-faulty nodes the
    polygon disables (the concave row/column sections); ``rounds_scheme1``
    and ``rounds_scheme2`` are the per-component emulation round counts
    (zero for the direct hull construction).
    """

    component: FaultComponent
    polygon: frozenset
    rounds_scheme1: int = 0
    rounds_scheme2: int = 0

    @property
    def added_nodes(self) -> frozenset:
        """Non-faulty nodes the polygon disables for this component."""
        return frozenset(self.polygon - self.component.nodes)

    @property
    def rounds(self) -> int:
        """Rounds of the per-component labelling emulation."""
        return self.rounds_scheme1 + self.rounds_scheme2


@dataclass
class MinimumPolygonConstruction:
    """Result of the centralized minimum faulty polygon construction."""

    grid: StatusGrid
    regions: List[FaultRegion]
    components: List[FaultComponent]
    component_polygons: List[ComponentPolygon]
    rounds: int
    model: FaultRegionModel = FaultRegionModel.MINIMUM_FAULTY_POLYGON

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the polygons (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average polygon size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    @property
    def polygons(self) -> List[FaultRegion]:
        """Alias for :attr:`regions` using the paper's terminology."""
        return self.regions

    def all_orthogonal_convex(self) -> bool:
        """Whether every final region satisfies Definition 1."""
        return all(region.is_orthogonal_convex for region in self.regions)


def component_minimum_polygon(component: FaultComponent) -> ComponentPolygon:
    """Return the minimum faulty polygon of one component (hull fill).

    This is centralized Solution B restricted to a single component: the
    concave row and column sections are filled until the region is
    orthogonal convex, yielding the minimum orthogonal convex polygon that
    covers every fault of the component.
    """
    hull = orthogonal_convex_hull(component.nodes)
    return ComponentPolygon(component=component, polygon=frozenset(hull))


def component_polygon_via_labelling(
    component: FaultComponent,
) -> ComponentPolygon:
    """Return the component's polygon via the labelling-scheme emulation.

    This is centralized Solution A restricted to a single component: scheme
    1 grows the component into its virtual faulty block (bounding box) and
    scheme 2 shrinks the block back.  The round counts of both phases are
    recorded; they are what the CMFP curve of Figure 11 measures.
    """
    box = component.bounding_box
    width, height = box.width, box.height
    local_faults = np.zeros((width, height), dtype=bool)
    for x, y in component.nodes:
        local_faults[x - box.min_x, y - box.min_y] = True

    scheme1 = apply_labelling_scheme_1(local_faults)
    # The virtual faulty block is the full bounding box; for a connected
    # component scheme 1 always grows to the full box, which the test suite
    # asserts.  Using the box directly keeps the construction faithful to
    # the paper's step 2 even in the degenerate single-node case.
    virtual_block = np.ones((width, height), dtype=bool)
    scheme2 = apply_labelling_scheme_2(
        local_faults,
        virtual_block,
        missing_neighbours_enabled=True,
    )
    polygon = {
        (box.min_x + int(x), box.min_y + int(y))
        for x, y in zip(*np.nonzero(scheme2.labels))
    }
    return ComponentPolygon(
        component=component,
        polygon=frozenset(polygon),
        rounds_scheme1=scheme1.rounds,
        rounds_scheme2=scheme2.rounds,
    )


def assemble_minimum_polygons(
    faults: Sequence[Coord],
    topology: Topology,
    component_polygons: List[ComponentPolygon],
    rounds: int,
    components: List[FaultComponent],
) -> MinimumPolygonConstruction:
    """Pile per-component polygons into a network-wide construction result.

    Exposed so that callers that maintain the component partition and the
    per-component polygons themselves (notably the incremental
    :class:`repro.api.MeshSession`) can reuse the piling/superseding step
    without recomputing every polygon.
    """
    fault_set = set(faults)
    layers = []
    for entry in component_polygons:
        layer: Dict[Coord, NodeKind] = {}
        for node in entry.polygon:
            if node in fault_set:
                layer[node] = NodeKind.FAULTY
            else:
                layer[node] = NodeKind.DISABLED
        layers.append(layer)
    piled = pile_statuses(layers)

    grid = StatusGrid(topology, faults)
    for node, status in piled.items():
        if status == NodeKind.DISABLED and topology.contains(node):
            grid.mark_disabled(node)
            grid.mark_unsafe(node)
    # Overlapping per-component polygons can merge into a non-convex region;
    # fill such regions to their hulls so every final region satisfies
    # Definition 1 (which the extended e-cube router depends on).
    regions = convexify_regions(grid)
    return MinimumPolygonConstruction(
        grid=grid,
        regions=regions,
        components=components,
        component_polygons=component_polygons,
        rounds=rounds,
    )


def build_minimum_polygons(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
    compute_rounds: bool = True,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons (centralized Solution B, default).

    Phase 1 groups the faults into 8-adjacent components; phase 2 fills each
    component's concave row and column sections; the superseding rule piles
    the per-component results.  The reported ``rounds`` is the CMFP
    emulation cost, i.e. the maximum per-component labelling rounds, which
    the paper uses for the CMFP curve of Figure 11 (the hull fill itself is
    a centralized computation and exchanges no messages).  Pass
    ``compute_rounds=False`` to skip the emulation when only the node
    statuses are needed (Figures 9 and 10).
    """
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    components = find_components(faults)
    component_polygons = [component_minimum_polygon(c) for c in components]
    rounds = 0
    if compute_rounds:
        # Round accounting follows the labelling emulation (Solution A).
        for component in components:
            emulated = component_polygon_via_labelling(component)
            rounds = max(rounds, emulated.rounds)
    return assemble_minimum_polygons(faults, topology, component_polygons, rounds, components)


def build_minimum_polygons_via_labelling(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons via the labelling emulation
    (centralized Solution A)."""
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    components = find_components(faults)
    component_polygons = [component_polygon_via_labelling(c) for c in components]
    rounds = max((entry.rounds for entry in component_polygons), default=0)
    return assemble_minimum_polygons(faults, topology, component_polygons, rounds, components)


def build_minimum_polygons_for_scenario(
    scenario: FaultScenario,
) -> MinimumPolygonConstruction:
    """Construct minimum faulty polygons for a :class:`FaultScenario`."""
    return build_minimum_polygons(scenario.faults, topology=scenario.topology())
