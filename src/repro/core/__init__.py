"""The paper's fault-region constructions.

This subpackage contains the three fault-region models compared in the
paper's evaluation and the machinery shared between them:

* :mod:`repro.core.labelling` -- labelling scheme 1 (growing) and labelling
  scheme 2 (shrinking) as synchronous fixed-point iterations with round
  counting.
* :mod:`repro.core.faulty_block` -- the classic rectangular faulty block
  model (FB).
* :mod:`repro.core.sub_minimum` -- Wu's sub-minimum faulty polygon model
  (FP) [IPDPS 2001].
* :mod:`repro.core.components` -- the merge process grouping faults into
  8-adjacent components (phase 1 of the paper's solution).
* :mod:`repro.core.mfp` -- the minimum faulty polygon model (MFP): both
  centralized solutions from Section 3.1 and the superseding rule.
* :mod:`repro.core.regions` -- extraction of disjoint fault regions and the
  per-region statistics used by the evaluation figures.
"""

from repro.core.labelling import (
    LabellingResult,
    apply_labelling_scheme_1,
    apply_labelling_scheme_2,
)
from repro.core.components import FaultComponent, find_components
from repro.core.faulty_block import FaultyBlockConstruction, build_faulty_blocks
from repro.core.sub_minimum import SubMinimumConstruction, build_sub_minimum_polygons
from repro.core.mfp import (
    MinimumPolygonConstruction,
    build_minimum_polygons,
    build_minimum_polygons_via_labelling,
    component_minimum_polygon,
)
from repro.core.regions import FaultRegion, extract_regions
from repro.core.superseding import pile_statuses
from repro.core.verify import (
    VerificationReport,
    compare_constructions_report,
    verify_coverage,
    verify_faulty_blocks,
    verify_minimality,
    verify_orthogonal_convexity,
)

__all__ = [
    "VerificationReport",
    "verify_coverage",
    "verify_faulty_blocks",
    "verify_orthogonal_convexity",
    "verify_minimality",
    "compare_constructions_report",
    "LabellingResult",
    "apply_labelling_scheme_1",
    "apply_labelling_scheme_2",
    "FaultComponent",
    "find_components",
    "FaultyBlockConstruction",
    "build_faulty_blocks",
    "SubMinimumConstruction",
    "build_sub_minimum_polygons",
    "MinimumPolygonConstruction",
    "build_minimum_polygons",
    "build_minimum_polygons_via_labelling",
    "component_minimum_polygon",
    "FaultRegion",
    "extract_regions",
    "pile_statuses",
]
