"""Phase 1 of the minimum-faulty-polygon construction: the merge process.

Faulty nodes are grouped into *components*: maximal sets of faults that are
pairwise connected through the adjacency of Definition 2 (the eight
surrounding nodes, i.e. diagonal contacts count).  Each component maintains
the minimum and maximum coordinates of its nodes along both dimensions --
the bounding box that becomes the *virtual faulty block* in the centralized
solution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

import numpy as np

from repro.geometry import masks
from repro.geometry.rectangle import Rectangle, bounding_rectangle
from repro.geometry.boundary import eight_neighbours, region_perimeter
from repro.types import Coord


@dataclass(frozen=True)
class FaultComponent:
    """A maximal 8-connected group of faulty nodes.

    ``index`` is a stable identifier assigned in discovery order (components
    are discovered scanning faults in sorted coordinate order, so the index
    is deterministic for a given fault set).
    """

    index: int
    nodes: FrozenSet[Coord]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a fault component cannot be empty")

    @property
    def size(self) -> int:
        """Number of faulty nodes in the component."""
        return len(self.nodes)

    @property
    def bounding_box(self) -> Rectangle:
        """The virtual faulty block of the component (its bounding box)."""
        return bounding_rectangle(self.nodes)

    @property
    def min_x(self) -> int:
        """Smallest X coordinate of any node in the component."""
        return self.bounding_box.min_x

    @property
    def min_y(self) -> int:
        """Smallest Y coordinate of any node in the component."""
        return self.bounding_box.min_y

    @property
    def max_x(self) -> int:
        """Largest X coordinate of any node in the component."""
        return self.bounding_box.max_x

    @property
    def max_y(self) -> int:
        """Largest Y coordinate of any node in the component."""
        return self.bounding_box.max_y

    @property
    def extent(self) -> int:
        """Maximum of the bounding-box width and height.

        The number of rounds the per-component labelling emulation needs is
        bounded by the extent, which is why the paper argues CMFP needs far
        fewer rounds than the whole-network labelling of FB/FP.
        """
        box = self.bounding_box
        return max(box.width, box.height)

    @property
    def perimeter(self) -> int:
        """Length of the component outline in grid-edge units."""
        return region_perimeter(self.nodes)

    def __contains__(self, node: Coord) -> bool:
        return node in self.nodes

    def __iter__(self):
        return iter(sorted(self.nodes))

    def __len__(self) -> int:
        return self.size

    def is_adjacent(self, node: Coord) -> bool:
        """Return ``True`` when *node* touches the component (8-adjacency)."""
        if node in self.nodes:
            return False
        return any(n in self.nodes for n in eight_neighbours(node))


def find_components(
    faults: Iterable[Coord],
    diagonal: bool = True,
) -> List[FaultComponent]:
    """Group *faults* into components using the merge process.

    Dispatches to the vectorized labelling of :mod:`repro.geometry.masks`
    (the faults are rasterised into their bounding box and labelled with
    whole-array operations); :func:`find_components_bfs` is the set-based
    oracle and the fallback for pathologically sparse fault sets.  Both
    return bit-identical component lists.

    Parameters
    ----------
    faults:
        The injected fault positions.
    diagonal:
        Whether diagonal contact joins two faults into one component.  The
        paper's Definition 2 includes the diagonals (``True``); the flag
        exists for ablation studies on the adjacency notion.

    Returns
    -------
    list[FaultComponent]
        Components in deterministic discovery order (sorted seed nodes).
    """
    fault_set: Set[Coord] = set(faults)
    if masks.kernel_enabled():
        local = masks.try_local_mask(fault_set)
        if local is not None:
            mask, (min_x, min_y) = local
            labels, count = masks.label_mask(mask, connectivity=8 if diagonal else 4)
            xs, ys = np.nonzero(labels)
            lab = labels[xs, ys]
            order = np.argsort(lab, kind="stable")  # keeps (x, y) order per label
            xl = (xs[order] + min_x).tolist()
            yl = (ys[order] + min_y).tolist()
            bounds = np.searchsorted(lab[order], np.arange(1, count + 2)).tolist()
            return [
                FaultComponent(
                    index=index,
                    nodes=frozenset(
                        zip(
                            xl[bounds[index] : bounds[index + 1]],
                            yl[bounds[index] : bounds[index + 1]],
                        )
                    ),
                )
                for index in range(count)
            ]
    return find_components_bfs(fault_set, diagonal)


def find_components_bfs(
    faults: Iterable[Coord],
    diagonal: bool = True,
) -> List[FaultComponent]:
    """Set-based BFS oracle for :func:`find_components` (same output)."""
    fault_set: Set[Coord] = set(faults)
    unvisited = set(fault_set)
    components: List[FaultComponent] = []
    for seed in sorted(fault_set):
        if seed not in unvisited:
            continue
        queue = deque([seed])
        unvisited.discard(seed)
        members: Set[Coord] = {seed}
        while queue:
            node = queue.popleft()
            if diagonal:
                neighbours = eight_neighbours(node)
            else:
                x, y = node
                neighbours = [(x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)]
            for neighbour in neighbours:
                if neighbour in unvisited:
                    unvisited.discard(neighbour)
                    members.add(neighbour)
                    queue.append(neighbour)
        components.append(FaultComponent(index=len(components), nodes=frozenset(members)))
    return components


def component_of(components: Sequence[FaultComponent], node: Coord) -> FaultComponent | None:
    """Return the component containing *node*, or ``None``."""
    for component in components:
        if node in component:
            return component
    return None


def largest_component(components: Sequence[FaultComponent]) -> FaultComponent | None:
    """Return the component with the most faults (``None`` when empty)."""
    if not components:
        return None
    return max(components, key=lambda c: (c.size, -c.index))


def component_statistics(components: Sequence[FaultComponent]) -> Dict[str, float]:
    """Summary statistics over a component list (used by experiment logs)."""
    if not components:
        return {
            "count": 0,
            "mean_size": 0.0,
            "max_size": 0,
            "mean_extent": 0.0,
            "max_extent": 0,
        }
    sizes = [c.size for c in components]
    extents = [c.extent for c in components]
    return {
        "count": len(components),
        "mean_size": sum(sizes) / len(sizes),
        "max_size": max(sizes),
        "mean_extent": sum(extents) / len(extents),
        "max_extent": max(extents),
    }
