"""The rectangular faulty block model (FB) -- the classic baseline.

A faulty block is built by running labelling scheme 1 on the whole network:
connected groups of unsafe nodes form disjoint rectangles.  Every unsafe
node (faulty or not) is disabled, i.e. excluded from routing.  This is the
most commonly used fault model and the reference point both baselines and
the paper's contribution are measured against in Figures 9-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


from repro.core.labelling import apply_labelling_scheme_1, faults_to_mask
from repro.core.regions import FaultRegion, extract_regions_and_index
from repro.geometry import masks
from repro.faults.scenario import FaultScenario
from repro.mesh.status import StatusGrid
from repro.mesh.topology import Mesh2D, Topology
from repro.types import Coord, FaultRegionModel


@dataclass
class FaultyBlockConstruction:
    """Result of constructing rectangular faulty blocks for one fault set."""

    grid: StatusGrid
    regions: List[FaultRegion]
    rounds: int
    model: FaultRegionModel = FaultRegionModel.FAULTY_BLOCK
    #: Cell -> region-index grid (``-1`` outside every region).
    region_index: "np.ndarray | None" = field(default=None, compare=False, repr=False)

    @property
    def num_disabled_nonfaulty(self) -> int:
        """Non-faulty nodes disabled by the blocks (Figure 9 quantity)."""
        return self.grid.num_disabled_nonfaulty

    @property
    def mean_region_size(self) -> float:
        """Average block size in nodes (Figure 10 quantity)."""
        if not self.regions:
            return 0.0
        return sum(r.size for r in self.regions) / len(self.regions)

    @property
    def blocks(self) -> List[FaultRegion]:
        """Alias for :attr:`regions` using the paper's terminology."""
        return self.regions

    def all_rectangular(self) -> bool:
        """Whether every block is a filled rectangle (sanity invariant)."""
        return all(region.is_rectangle for region in self.regions)


def build_faulty_blocks(
    faults: Sequence[Coord],
    topology: Optional[Topology] = None,
    width: int = 100,
    height: Optional[int] = None,
) -> FaultyBlockConstruction:
    """Construct rectangular faulty blocks from a fault set.

    Either pass an explicit *topology* or a *width*/*height* pair (a square
    ``width x width`` mesh by default, matching the paper's setup).
    """
    if topology is None:
        topology = Mesh2D(width, height if height is not None else width)
    fault_mask = faults_to_mask(faults, topology.width, topology.height)
    scheme1 = apply_labelling_scheme_1(fault_mask, topology)

    grid = StatusGrid(topology, faults)
    grid.unsafe = scheme1.labels.copy()
    # Under the faulty block model every unsafe node is disabled.
    grid.disabled = scheme1.labels.copy()

    regions, region_index = extract_regions_and_index(
        grid.disabled, grid.faulty, build_index=masks.kernel_enabled()
    )
    return FaultyBlockConstruction(
        grid=grid, regions=regions, rounds=scheme1.rounds, region_index=region_index
    )


def build_faulty_blocks_for_scenario(scenario: FaultScenario) -> FaultyBlockConstruction:
    """Construct faulty blocks for a generated :class:`FaultScenario`."""
    return build_faulty_blocks(scenario.faults, topology=scenario.topology())
